"""Declarative fault specifications: *what* goes wrong, *where*, and *when*.

A :class:`FaultSpec` is a JSON-loadable list of timed fault epochs.  Each
:class:`FaultEvent` names a fault class (the failure mode), a sim-time
window ``[start_ms, end_ms)``, a magnitude, and a deterministic target
selector (explicit server ids / a stable-hash server fraction / ISP orgs /
client prefixes / client OS platforms).  Everything is a pure value: no
RNG, no wall clock, no process identity — so the same spec produces the
same fault schedule on the serial event loop and on every shard worker
(the determinism contract of docs/PARALLEL.md extends to faults, see
docs/FAULTS.md).

Fault classes and the layer they strike:

* ``server-degraded``   — CDN server latency multiplies (slow disks, CPU
  contention): D_wait/D_open/D_read scale by ``magnitude``;
* ``server-overload``   — accept-queue wait grows: ``magnitude`` ms added
  to D_wait;
* ``cache-brownout``    — the cache stack is bypassed entirely: every
  lookup misses and pays the backend (deploys, cache-process restarts);
* ``origin-slowdown``   — backend/origin first-byte latency multiplies
  (D_BE × ``magnitude``), felt only on misses;
* ``network-latency``   — matching client paths see RTT × ``magnitude``;
* ``network-loss``      — matching client paths add ``magnitude`` to the
  per-segment loss probability (and halve their bandwidth share);
* ``client-render``     — matching software-rendered players drop an extra
  ``magnitude`` fraction of frames while visible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from ..workload.randomness import stable_hash64

__all__ = [
    "FAULT_CLASSES",
    "SERVER_CLASSES",
    "NETWORK_CLASSES",
    "CLIENT_CLASSES",
    "FaultEvent",
    "FaultSpec",
]

#: Every legal ``fault_class`` value, grouped by the layer it strikes.
SERVER_CLASSES: Tuple[str, ...] = (
    "server-degraded",
    "server-overload",
    "cache-brownout",
    "origin-slowdown",
)
NETWORK_CLASSES: Tuple[str, ...] = ("network-latency", "network-loss")
CLIENT_CLASSES: Tuple[str, ...] = ("client-render",)
FAULT_CLASSES: Tuple[str, ...] = SERVER_CLASSES + NETWORK_CLASSES + CLIENT_CLASSES

#: resolution of the stable-hash server_fraction selector
_FRACTION_BUCKETS = 10_000


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault epoch.

    Targeting is deterministic: ``servers`` pins explicit server ids,
    ``server_fraction`` selects a stable-hash slice of the fleet (keyed by
    ``(fault_id, server_id)``, so two events with different ids degrade
    different slices), ``orgs``/``prefixes`` match client paths and
    ``platforms`` match client OS names.  Empty selectors mean "all".
    """

    fault_id: str
    fault_class: str
    start_ms: float
    end_ms: float
    magnitude: float = 1.0
    servers: Tuple[str, ...] = ()
    server_fraction: float = 1.0
    orgs: Tuple[str, ...] = ()
    prefixes: Tuple[str, ...] = ()
    platforms: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("servers", "orgs", "prefixes", "platforms"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.fault_id:
            raise ValueError("fault_id must be non-empty")
        if self.fault_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault_class {self.fault_class!r}; "
                f"choose from {FAULT_CLASSES}"
            )
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"fault {self.fault_id!r}: end_ms ({self.end_ms}) must be "
                f"after start_ms ({self.start_ms})"
            )
        if self.magnitude <= 0:
            raise ValueError(f"fault {self.fault_id!r}: magnitude must be positive")
        if not 0.0 < self.server_fraction <= 1.0:
            raise ValueError(
                f"fault {self.fault_id!r}: server_fraction must be in (0, 1]"
            )
        if self.fault_class in ("network-loss",) and self.magnitude >= 1.0:
            raise ValueError(
                f"fault {self.fault_id!r}: network-loss magnitude is a "
                "probability and must be < 1"
            )
        if self.fault_class in CLIENT_CLASSES and self.magnitude > 1.0:
            raise ValueError(
                f"fault {self.fault_id!r}: client-render magnitude is a "
                "dropped-frame fraction and must be <= 1"
            )

    # -- schedule -----------------------------------------------------------

    def active_at(self, t_ms: float) -> bool:
        """Is this epoch in effect at sim time *t_ms*?"""
        return self.start_ms <= t_ms < self.end_ms

    @property
    def label(self) -> str:
        """The ground-truth label stamped into telemetry: ``class:id``."""
        return f"{self.fault_class}:{self.fault_id}"

    # -- deterministic targeting -------------------------------------------

    def targets_server(self, server_id: str) -> bool:
        """Does this (server-layer) event strike *server_id*?"""
        if self.fault_class not in SERVER_CLASSES:
            return False
        if self.servers:
            return server_id in self.servers
        if self.server_fraction >= 1.0:
            return True
        bucket = stable_hash64(f"fault|{self.fault_id}|{server_id}") % _FRACTION_BUCKETS
        return bucket < int(self.server_fraction * _FRACTION_BUCKETS)

    def targets_path(self, org: str, prefix_id: str) -> bool:
        """Does this (network-layer) event strike the client path?"""
        if self.fault_class not in NETWORK_CLASSES:
            return False
        if self.orgs and org not in self.orgs:
            return False
        if self.prefixes and prefix_id not in self.prefixes:
            return False
        return True

    def targets_platform(self, os_name: str) -> bool:
        """Does this (client-layer) event strike hosts running *os_name*?"""
        if self.fault_class not in CLIENT_CLASSES:
            return False
        return not self.platforms or os_name in self.platforms


@dataclass(frozen=True)
class FaultSpec:
    """A named, ordered collection of fault epochs (JSON-loadable)."""

    name: str = "faults"
    description: str = ""
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        seen = set()
        for event in self.events:
            if event.fault_id in seen:
                raise ValueError(f"duplicate fault_id {event.fault_id!r}")
            seen.add(event.fault_id)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        """Build a spec from a plain dict (the JSON schema of docs/FAULTS.md).

        Event keys accept the short JSON names ``id``/``class`` as well as
        the dataclass field names ``fault_id``/``fault_class``.
        """
        events = []
        for raw in payload.get("events", ()):
            entry = dict(raw)
            if "id" in entry:
                entry["fault_id"] = entry.pop("id")
            if "class" in entry:
                entry["fault_class"] = entry.pop("class")
            for name in ("servers", "orgs", "prefixes", "platforms"):
                if name in entry:
                    entry[name] = tuple(entry[name])
            events.append(FaultEvent(**entry))
        return cls(
            name=payload.get("name", "faults"),
            description=payload.get("description", ""),
            events=tuple(events),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-schema dict (inverse of :meth:`from_dict`)."""
        events = []
        for event in self.events:
            entry: Dict[str, Any] = {
                "id": event.fault_id,
                "class": event.fault_class,
                "start_ms": event.start_ms,
                "end_ms": event.end_ms,
                "magnitude": event.magnitude,
            }
            if event.servers:
                entry["servers"] = list(event.servers)
            if event.server_fraction < 1.0:
                entry["server_fraction"] = event.server_fraction
            if event.orgs:
                entry["orgs"] = list(event.orgs)
            if event.prefixes:
                entry["prefixes"] = list(event.prefixes)
            if event.platforms:
                entry["platforms"] = list(event.platforms)
            events.append(entry)
        return {"name": self.name, "description": self.description, "events": events}

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSpec":
        """Load a spec from a JSON file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise FileNotFoundError(f"fault spec not found: {path}") from None
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: invalid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path
