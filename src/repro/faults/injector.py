"""The fault injector: turns a :class:`FaultSpec` into per-call effects.

The injector is stateless and deterministic: every query is a pure
function of ``(spec, stable ids, sim time)``.  That is what lets the
sharded runner inject faults without breaking the record-identity
contract — each shard rebuilds the same injector from the pickled config
and asks it the same questions at the same sim times, so serial and
sharded runs apply byte-identical fault schedules (docs/FAULTS.md).

Three query surfaces, one per layer:

* :meth:`FaultInjector.server_state` — called by
  :class:`~repro.cdn.server.CdnServer` on every request (keyed by server
  id + arrival time; a server's request stream lives inside one shard);
* :meth:`FaultInjector.path_probe` — a per-session closure installed on
  the session's :class:`~repro.net.path.NetworkPath`, consulted by RTT /
  bandwidth / loss sampling (keyed by the client prefix + sample time);
* :meth:`FaultInjector.render_state` — called by the session actor before
  rendering a chunk (keyed by the client OS + completion time).

Ground-truth stamping: the session actor gathers the active labels from
the same queries that produced the effects and writes them into
:class:`~repro.telemetry.records.ChunkGroundTruth.fault_labels`, so
``repro faultscore`` can grade :mod:`repro.core.localization` verdicts
against what was actually injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .spec import CLIENT_CLASSES, NETWORK_CLASSES, SERVER_CLASSES, FaultEvent, FaultSpec

__all__ = [
    "ServerFaultState",
    "PathFaultState",
    "RenderFaultState",
    "FaultInjector",
    "merge_labels",
]


@dataclass(frozen=True)
class ServerFaultState:
    """Combined effect of every server-layer epoch active on one request."""

    latency_mult: float = 1.0
    wait_add_ms: float = 0.0
    backend_mult: float = 1.0
    bypass_cache: bool = False
    labels: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PathFaultState:
    """Combined effect of every network-layer epoch active on one sample."""

    rtt_mult: float = 1.0
    loss_add: float = 0.0
    bw_div: float = 1.0
    labels: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RenderFaultState:
    """Combined effect of every client-layer epoch active on one chunk."""

    drop_add: float = 0.0
    labels: Tuple[str, ...] = ()


def merge_labels(*groups: Tuple[str, ...]) -> str:
    """Canonical ``fault_labels`` string: sorted, deduplicated, comma-joined."""
    seen = {label for group in groups for label in group}
    return ",".join(sorted(seen))


class FaultInjector:
    """Answers "which faults strike X at time t?" for one :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._server_events: List[FaultEvent] = [
            e for e in spec.events if e.fault_class in SERVER_CLASSES
        ]
        self._network_events: List[FaultEvent] = [
            e for e in spec.events if e.fault_class in NETWORK_CLASSES
        ]
        self._client_events: List[FaultEvent] = [
            e for e in spec.events if e.fault_class in CLIENT_CLASSES
        ]

    # -- server layer --------------------------------------------------------

    def server_state(self, server_id: str, now_ms: float) -> Optional[ServerFaultState]:
        """Effects active on *server_id* for a request arriving at *now_ms*."""
        latency_mult = 1.0
        wait_add = 0.0
        backend_mult = 1.0
        bypass = False
        labels: List[str] = []
        for event in self._server_events:
            if not event.active_at(now_ms) or not event.targets_server(server_id):
                continue
            if event.fault_class == "server-degraded":
                latency_mult *= event.magnitude
            elif event.fault_class == "server-overload":
                wait_add += event.magnitude
            elif event.fault_class == "cache-brownout":
                bypass = True
            else:  # origin-slowdown
                backend_mult *= event.magnitude
            labels.append(event.label)
        if not labels:
            return None
        return ServerFaultState(
            latency_mult=latency_mult,
            wait_add_ms=wait_add,
            backend_mult=backend_mult,
            bypass_cache=bypass,
            labels=tuple(labels),
        )

    # -- network layer -------------------------------------------------------

    def path_state(
        self, org: str, prefix_id: str, now_ms: float
    ) -> Optional[PathFaultState]:
        """Effects active on the (org, prefix) path at *now_ms*."""
        rtt_mult = 1.0
        loss_add = 0.0
        bw_div = 1.0
        labels: List[str] = []
        for event in self._network_events:
            if not event.active_at(now_ms) or not event.targets_path(org, prefix_id):
                continue
            if event.fault_class == "network-latency":
                rtt_mult *= event.magnitude
            else:  # network-loss: add loss and halve our bandwidth share —
                # a lossy path is a congested path
                loss_add += event.magnitude
                bw_div = max(bw_div, 2.0)
            labels.append(event.label)
        if not labels:
            return None
        return PathFaultState(
            rtt_mult=rtt_mult,
            loss_add=min(0.9, loss_add),
            bw_div=bw_div,
            labels=tuple(labels),
        )

    def path_probe(
        self, org: str, prefix_id: str
    ) -> Optional[Callable[[float], Optional[PathFaultState]]]:
        """A per-session closure for :class:`~repro.net.path.NetworkPath`.

        Returns None when no network epoch can ever strike this path, so
        un-faulted sessions keep a branch-free hot loop.
        """
        if not any(e.targets_path(org, prefix_id) for e in self._network_events):
            return None

        def probe(now_ms: float) -> Optional[PathFaultState]:
            return self.path_state(org, prefix_id, now_ms)

        return probe

    # -- client layer --------------------------------------------------------

    def render_state(self, os_name: str, now_ms: float) -> Optional[RenderFaultState]:
        """Effects active on hosts running *os_name* at *now_ms*."""
        drop_add = 0.0
        labels: List[str] = []
        for event in self._client_events:
            if not event.active_at(now_ms) or not event.targets_platform(os_name):
                continue
            drop_add += event.magnitude
            labels.append(event.label)
        if not labels:
            return None
        return RenderFaultState(drop_add=min(0.95, drop_add), labels=tuple(labels))

    def client_targeted(self, os_name: str) -> bool:
        """Can any client-layer epoch ever strike *os_name*?"""
        return any(e.targets_platform(os_name) for e in self._client_events)
