"""repro.faults — seeded, declarative fault injection with ground truth.

The paper's deliverable is a *localizer*: given joint player/CDN
telemetry, name the layer (CDN server, network, client download stack,
client rendering) responsible for each chunk's problem.  A localizer can
only be trusted if its verdicts are scored against incidents with known
ground truth — which production traces never have.  This package closes
that loop for the simulator:

* :mod:`repro.faults.spec` — a JSON-loadable :class:`FaultSpec` of timed
  fault epochs (CDN degradation/overload, cache brownout, origin
  slowdown, per-ISP/prefix latency+loss shifts, client rendering
  regressions) with deterministic target selectors;
* :mod:`repro.faults.injector` — applies the epochs inside the event loop
  as pure functions of (stable id, sim time), preserving the sharding
  record-identity contract, and stamps ground-truth ``fault_labels`` into
  the telemetry;
* :mod:`repro.core.faultscore` — grades localization verdicts against the
  stamped labels (per-class precision/recall + confusion matrix).

See docs/FAULTS.md for the spec schema and scoring semantics.
"""

from .injector import (
    FaultInjector,
    PathFaultState,
    RenderFaultState,
    ServerFaultState,
    merge_labels,
)
from .spec import (
    CLIENT_CLASSES,
    FAULT_CLASSES,
    NETWORK_CLASSES,
    SERVER_CLASSES,
    FaultEvent,
    FaultSpec,
)

__all__ = [
    "FAULT_CLASSES",
    "SERVER_CLASSES",
    "NETWORK_CLASSES",
    "CLIENT_CLASSES",
    "FaultEvent",
    "FaultSpec",
    "FaultInjector",
    "ServerFaultState",
    "PathFaultState",
    "RenderFaultState",
    "merge_labels",
]
