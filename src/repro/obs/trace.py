"""Per-chunk causal tracing + deterministic export (the §4.1–§4.3 join).

The paper localizes problems by *joining* per-chunk instrumentation from
both sides of the delivery path with 500 ms kernel ``tcp_info`` snapshots.
The metrics registry (PR 2) aggregates; this module follows **one chunk**
end to end: request issued, accept-queue wait, cache lookup, open-read-
retry, origin fetch, TCP transfer (with evolving ``tcp_info`` samples),
first/last byte at the client, buffer append, render — every event stamped
with sim-time, (session id, chunk id), and the fault epochs active when it
happened.

Determinism contract (extends docs/PARALLEL.md to a new artifact class):

* head-based sampling keyed by a stable session-id hash
  (:func:`session_sampled`), so the sampled session *set* is a pure
  function of (session id, rate) — independent of shard layout;
* events carry sim-time only and sort canonically by
  ``(session_id, chunk_id, seq)`` where ``seq`` is the per-session
  emission counter — identical for serial and ``--workers N`` runs;
* workers ship pre-sorted event lists and the parent k-way merges them in
  sorted shard order, exactly like :meth:`Dataset.merge_all`.

Exports: JSONL (one event per line, sorted keys — byte-identical for any
worker count) and Chrome trace-event JSON (load in ``chrome://tracing`` or
https://ui.perfetto.dev).  The event-name set is a *written contract*:
:data:`TRACE_EVENT_SPECS` must mirror the "Tracing" table in
docs/OBSERVABILITY.md (enforced by tests/test_docs_contract.py).

Cost when disabled: the drivers construct no recorder and every hot-path
emitter is behind a single ``is not None`` check (verified by the
perf-smoke bench budget).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..workload.randomness import stable_hash64

__all__ = [
    "TRACE_SCHEMA",
    "TraceEventSpec",
    "TRACE_EVENT_SPECS",
    "FIRST_BYTE_STAGES",
    "TraceRecorder",
    "SessionTrace",
    "ChunkTrace",
    "session_sampled",
    "event_json_line",
    "trace_meta_line",
    "write_trace_jsonl",
    "chrome_trace_document",
    "write_chrome_trace",
    "chrome_trace_path",
    "write_trace",
    "read_trace_jsonl",
    "validate_trace",
    "chunk_ids",
    "chunk_events",
    "chunk_fault_labels",
    "stage_durations",
    "dominant_stage",
    "slowest_chunk",
]

TRACE_SCHEMA = "repro.trace/1"

#: events: (session_id, chunk_id, seq, name, t_ms, dur_ms, faults, args)
TraceEvent = Tuple[str, int, int, str, float, float, str, Dict[str, Any]]


@dataclass(frozen=True)
class TraceEventSpec:
    """Declaration of one legal trace event name (the written contract)."""

    name: str
    #: "span" (has a duration) or "instant" (a point in time)
    phase: str
    #: emitting layer: session | cdn | net | client
    layer: str
    #: first-byte decomposition stage this span contributes to, or None —
    #: the drill-down's dominant-stage analysis sums spans by stage
    stage: Optional[str]
    description: str
    paper_ref: str = "—"


def _spec(
    name: str,
    phase: str,
    layer: str,
    stage: Optional[str],
    description: str,
    paper_ref: str = "—",
) -> Tuple[str, TraceEventSpec]:
    return name, TraceEventSpec(name, phase, layer, stage, description, paper_ref)


#: Every legal event name.  docs/OBSERVABILITY.md's "Tracing" table must
#: list exactly these names (tests/test_docs_contract.py enforces both
#: directions).
TRACE_EVENT_SPECS: Dict[str, TraceEventSpec] = dict(
    [
        _spec(
            "session.request", "instant", "session", None,
            "player issues the chunk GET (bitrate, bytes chosen by ABR)",
            "§4.1 Fig. 2",
        ),
        _spec(
            "cdn.queue_wait", "span", "cdn", "queue_wait",
            "request waits in the accept queue until a worker reads it (D_wait)",
            "§4.2 D_wait",
        ),
        _spec(
            "cdn.open", "span", "cdn", "open",
            "server opens the requested object (D_open)",
            "§4.2 D_open",
        ),
        _spec(
            "cdn.cache_lookup", "instant", "cdn", None,
            "cache stack consulted; args carry hit_ram/hit_disk/miss",
            "§4.1 cache status",
        ),
        _spec(
            "cdn.retry_timer", "span", "cdn", "retry_timer",
            "ATS asynchronous open-read-retry timer before disk/backend",
            "§4.1 [4]",
        ),
        _spec(
            "cdn.read", "span", "cdn", "read",
            "object read from RAM or disk (D_read minus the retry timer)",
            "§4.2 D_read",
        ),
        _spec(
            "cdn.origin_fetch", "span", "cdn", "origin",
            "backend/origin fetch on a cache miss (D_BE)",
            "§4.2 D_BE",
        ),
        _spec(
            "net.propagation", "span", "net", "propagation",
            "request + response propagation (the chunk's rtt0)",
            "§4.2 Eq. 1",
        ),
        _spec(
            "net.transfer", "span", "net", None,
            "TCP delivers the chunk body (network D_LB; rounds/retx in args)",
            "§4.3 Fig. 13",
        ),
        _spec(
            "net.tcp_sample", "instant", "net", None,
            "500 ms tcp_info snapshot: cwnd/srtt/rttvar/rto/retx in args",
            "§2.1, §4.3",
        ),
        _spec(
            "client.stack_delay", "span", "client", "stack",
            "client download-stack delay before the first byte (D_DS)",
            "§4.3 D_DS",
        ),
        _spec(
            "client.first_byte", "instant", "client", None,
            "first byte reaches the player (ends D_FB)",
            "§4.1 D_FB",
        ),
        _spec(
            "client.last_byte", "instant", "client", None,
            "last byte reaches the player (ends D_LB)",
            "§4.1 D_LB",
        ),
        _spec(
            "client.buffer_append", "instant", "client", None,
            "chunk appended to the playback buffer (rebuffer stats in args)",
            "§4.1 bufcount/bufdur",
        ),
        _spec(
            "client.rebuffer", "span", "client", None,
            "playback stall ended by this chunk's arrival",
            "§4.1 bufdur",
        ),
        _spec(
            "client.render", "instant", "client", None,
            "chunk rendered (visibility, dropped/total frames in args)",
            "§4.4 Fig. 19",
        ),
    ]
)

#: Stages of the first-byte decomposition, in path order.  The dominant-
#: stage analysis covers D_FB only (the paper's localization target);
#: the transfer phase (network D_LB) is reported separately.
FIRST_BYTE_STAGES: Tuple[str, ...] = (
    "propagation",
    "queue_wait",
    "open",
    "retry_timer",
    "read",
    "origin",
    "stack",
)

_TWO_POW_64 = 2**64


def session_sampled(session_id: str, sample: float) -> bool:
    """Head-based sampling decision for *session_id* at rate *sample*.

    Keyed by a stable hash of the session id alone, so the decision is
    identical on every shard layout — the foundation of the byte-identical
    export contract.
    """
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    return stable_hash64(f"trace|{session_id}") < int(sample * _TWO_POW_64)


def _clean(value: Any) -> Any:
    """Coerce an event arg to a JSON-native scalar (numpy scalars included)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


class ChunkTrace:
    """Emitter handle for one chunk of one sampled session."""

    __slots__ = ("_session", "chunk_id")

    def __init__(self, session: "SessionTrace", chunk_id: int) -> None:
        self._session = session
        self.chunk_id = chunk_id

    def emit(
        self,
        name: str,
        t_ms: float,
        dur_ms: float = 0.0,
        faults: str = "",
        **args: Any,
    ) -> None:
        if name not in TRACE_EVENT_SPECS:
            raise KeyError(
                f"unregistered trace event {name!r}; add a TraceEventSpec "
                "and a docs/OBSERVABILITY.md row (the tracing contract)"
            )
        session = self._session
        session.seq += 1
        session.events.append(
            (
                session.session_id,
                self.chunk_id,
                session.seq,
                name,
                float(t_ms),
                float(dur_ms),
                faults,
                {key: _clean(value) for key, value in args.items()},
            )
        )


class SessionTrace:
    """Per-session event sink: a monotone ``seq`` counter orders emissions."""

    __slots__ = ("session_id", "events", "seq")

    def __init__(self, session_id: str, events: List[TraceEvent]) -> None:
        self.session_id = session_id
        self.events = events
        self.seq = 0

    def chunk(self, chunk_id: int) -> ChunkTrace:
        return ChunkTrace(self, chunk_id)


class TraceRecorder:
    """Collects trace events for one run (or one shard of one run)."""

    def __init__(self, sample: float = 1.0) -> None:
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]; 0 means: no recorder")
        self.sample = sample
        self._events: List[TraceEvent] = []

    def session_trace(self, session_id: str) -> Optional[SessionTrace]:
        """The session's emitter, or None if sampling excluded it."""
        if not session_sampled(session_id, self.sample):
            return None
        return SessionTrace(session_id, self._events)

    @property
    def n_events(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        """All events in canonical ``(session_id, chunk_id, seq)`` order."""
        # (session_id, chunk_id, seq) is unique per event, so tuple sort
        # never compares the trailing args dicts.
        return sorted(self._events, key=lambda ev: ev[:3])

    def adopt_sorted(self, events: List[TraceEvent]) -> None:
        """Install pre-merged canonical events (the parallel parent path)."""
        self._events = events

    @staticmethod
    def merge_sorted(event_lists: Iterable[List[TraceEvent]]) -> List[TraceEvent]:
        """K-way merge of canonically pre-sorted shard event lists."""
        return list(heapq.merge(*event_lists, key=lambda ev: ev[:3]))


# -- export ------------------------------------------------------------------


def event_json_line(event: TraceEvent) -> str:
    session_id, chunk_id, seq, name, t_ms, dur_ms, faults, args = event
    return json.dumps(
        {
            "session": session_id,
            "chunk": chunk_id,
            "seq": seq,
            "name": name,
            "t_ms": round(t_ms, 6),
            "dur_ms": round(dur_ms, 6),
            "faults": faults,
            "args": args,
        },
        sort_keys=True,
    )


def trace_meta_line(n_events: int) -> str:
    """The leading schema meta line of a JSONL export.

    Mirrors the manifest's ``schema``/``schema_version`` handling
    (docs/OBSERVABILITY.md, "Schema versioning"): readers skip it, foreign
    schemas are rejected loudly, and pre-meta exports (no such line) still
    load — their first line carries event keys, never ``schema``.
    """
    return json.dumps({"events": n_events, "schema": TRACE_SCHEMA}, sort_keys=True)


def write_trace_jsonl(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> Path:
    """Meta line, then one event per line, canonical order — byte-stable."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_meta_line(len(events)))
        handle.write("\n")
        for event in events:
            handle.write(event_json_line(event))
            handle.write("\n")
    return path


def chrome_trace_document(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Chrome trace-event JSON: sessions become threads, spans become "X".

    Thread ids are assigned by sorted session-id order at export time, so
    the document is deterministic for any shard layout.
    """
    sessions = sorted({event[0] for event in events})
    tids = {session_id: index + 1 for index, session_id in enumerate(sessions)}
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro simulation"},
        }
    ]
    for session_id in sessions:
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[session_id],
                "name": "thread_name",
                "args": {"name": f"session {session_id}"},
            }
        )
    for session_id, chunk_id, seq, name, t_ms, dur_ms, faults, args in events:
        spec = TRACE_EVENT_SPECS[name]
        entry: Dict[str, Any] = {
            "pid": 1,
            "tid": tids[session_id],
            "name": name,
            "cat": spec.layer,
            "ts": round(t_ms * 1000.0, 3),  # µs
            "args": {"chunk": chunk_id, "seq": seq, "faults": faults, **args},
        }
        if spec.phase == "span":
            entry["ph"] = "X"
            entry["dur"] = round(dur_ms * 1000.0, 3)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
        "traceEvents": trace_events,
    }


def chrome_trace_path(jsonl_path: Union[str, Path]) -> Path:
    """``trace.jsonl`` → ``trace.chrome.json`` (sibling file)."""
    jsonl_path = Path(jsonl_path)
    return jsonl_path.with_name(jsonl_path.stem + ".chrome.json")


def write_chrome_trace(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace_document(events)
    path.write_text(
        json.dumps(document, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    return path


def write_trace(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> Tuple[Path, Path]:
    """Write both export formats; returns (jsonl path, chrome path)."""
    jsonl = write_trace_jsonl(events, path)
    chrome = write_chrome_trace(events, chrome_trace_path(jsonl))
    return jsonl, chrome


# -- load + validate ---------------------------------------------------------

_REQUIRED_KEYS = frozenset(
    {"session", "chunk", "seq", "name", "t_ms", "dur_ms", "faults", "args"}
)


def read_trace_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into event dicts (validation separate).

    A leading meta line (``{"schema": "repro.trace/1", ...}``) is
    validated and skipped; a foreign schema raises so tooling fails
    loudly instead of misreading another format's lines.  Exports from
    before the meta line load unchanged.
    """
    rows: List[Dict[str, Any]] = []
    first_payload_line = True
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: not JSON: {error}") from None
            if (
                first_payload_line
                and isinstance(row, dict)
                and "schema" in row
                and "name" not in row
            ):
                if row["schema"] != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}: not a repro trace: schema {row['schema']!r} "
                        f"(expected {TRACE_SCHEMA!r})"
                    )
                first_payload_line = False
                continue  # meta line carries no event
            first_payload_line = False
            rows.append(row)
    return rows


def validate_trace(rows: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Check *rows* against the event contract; returns summary counts.

    Raises ValueError on: unknown event names, missing keys, negative
    durations, non-monotone per-session ``seq``, or a chunk lacking its
    ``session.request`` / ``client.last_byte`` bracket events.
    """
    problems: List[str] = []
    last_seq: Dict[str, int] = {}
    per_chunk_names: Dict[Tuple[str, int], List[str]] = {}
    for index, row in enumerate(rows):
        missing = _REQUIRED_KEYS - set(row)
        if missing:
            problems.append(f"event {index}: missing keys {sorted(missing)}")
            continue
        name = row["name"]
        if name not in TRACE_EVENT_SPECS:
            problems.append(f"event {index}: unregistered name {name!r}")
            continue
        if row["dur_ms"] < 0:
            problems.append(f"event {index}: negative dur_ms {row['dur_ms']}")
        session = row["session"]
        if session in last_seq and row["seq"] <= last_seq[session]:
            problems.append(
                f"event {index}: seq {row['seq']} not increasing for "
                f"session {session} (last {last_seq[session]})"
            )
        last_seq[session] = row["seq"]
        per_chunk_names.setdefault((session, row["chunk"]), []).append(name)
    for (session, chunk), names in sorted(per_chunk_names.items()):
        for required in ("session.request", "client.last_byte"):
            if names.count(required) != 1:
                problems.append(
                    f"chunk ({session}, {chunk}): expected exactly one "
                    f"{required!r} event, saw {names.count(required)}"
                )
    if problems:
        preview = "\n".join(problems[:20])
        raise ValueError(
            f"trace fails the event contract ({len(problems)} problems):\n{preview}"
        )
    return {
        "events": len(rows),
        "sessions": len(last_seq),
        "chunks": len(per_chunk_names),
    }


# -- drill-down analysis (the `repro trace` CLI) -----------------------------


def chunk_ids(rows: Sequence[Dict[str, Any]]) -> List[Tuple[str, int]]:
    """All (session, chunk) keys present, in canonical order."""
    return sorted({(row["session"], row["chunk"]) for row in rows})


def chunk_events(
    rows: Sequence[Dict[str, Any]], session: str, chunk: int
) -> List[Dict[str, Any]]:
    """One chunk's events in emission (``seq``) order."""
    selected = [
        row for row in rows if row["session"] == session and row["chunk"] == chunk
    ]
    selected.sort(key=lambda row: row["seq"])
    return selected


def chunk_fault_labels(rows: Sequence[Dict[str, Any]]) -> str:
    """Union of the per-event fault labels, canonically joined.

    Equals the chunk's ``ChunkGroundTruth.fault_labels`` because each layer
    stamps its events from the same pure fault queries that produce the
    ground truth.
    """
    labels = {
        label
        for row in rows
        if row["faults"]
        for label in row["faults"].split(",")
    }
    return ",".join(sorted(labels))


def stage_durations(rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Per-stage first-byte latency of one chunk's events (ms)."""
    totals = {stage: 0.0 for stage in FIRST_BYTE_STAGES}
    for row in rows:
        spec = TRACE_EVENT_SPECS.get(row["name"])
        if spec is not None and spec.stage is not None:
            totals[spec.stage] += row["dur_ms"]
    return totals


def dominant_stage(rows: Sequence[Dict[str, Any]]) -> Tuple[str, float]:
    """The first-byte stage with the largest total duration (name, ms)."""
    totals = stage_durations(rows)
    # deterministic tie-break: path order via FIRST_BYTE_STAGES
    best = max(FIRST_BYTE_STAGES, key=lambda stage: totals[stage])
    return best, totals[best]


def slowest_chunk(rows: Sequence[Dict[str, Any]]) -> Tuple[str, int]:
    """The (session, chunk) with the longest request→last-byte interval."""
    requests: Dict[Tuple[str, int], float] = {}
    finishes: Dict[Tuple[str, int], float] = {}
    for row in rows:
        key = (row["session"], row["chunk"])
        if row["name"] == "session.request":
            requests[key] = row["t_ms"]
        elif row["name"] == "client.last_byte":
            finishes[key] = row["t_ms"]
    if not requests:
        raise ValueError("trace holds no session.request events")
    def download_ms(key: Tuple[str, int]) -> float:
        return finishes.get(key, requests[key]) - requests[key]
    # ties broken canonically by the (session, chunk) key itself
    return max(sorted(requests), key=lambda key: (download_ms(key), key))
