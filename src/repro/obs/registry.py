"""Deterministic metrics registry: counters, gauges, fixed-bucket histograms.

The simulator is itself a measured system: the paper instruments a
production delivery path at fixed points (§4.1 player, §4.2 CDN, §4.3
kernel), and this module gives the *simulation* of that path the same
treatment.  Every hot stage increments a named metric; the full set of
legal names is the module-level contract (:data:`METRIC_SPECS`,
:data:`SPAN_SPECS`) that `docs/OBSERVABILITY.md` documents and
`tests/test_docs_contract.py` keeps in sync.

Determinism is a hard requirement, not a nicety: a serial run and a
sharded run of the same seed must serialize to byte-identical metrics
(see docs/OBSERVABILITY.md, "Determinism rules").  Three design rules
follow:

* **Counters are integers.**  Integer addition is associative, so shard
  sub-totals sum to the serial total regardless of merge order.  No
  float accumulators anywhere in the registry.
* **Histograms have fixed bucket edges** declared in the spec and store
  only integer bucket counts.  No per-histogram float sum/min/max —
  float summation order differs between the serial event loop and a
  per-shard-then-merge fold, which would break byte identity in the
  last bits.
* **Gauges merge by max.**  The only gauge on the hot path is the
  simulation clock, whose fleet-wide value *is* the max over shards
  (the same argument as the parallel runner's clock barrier).

Wall-clock timing lives in :mod:`repro.obs.spans`, deliberately outside
the deterministic snapshot.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spans import SPAN_SPECS, SpanTracer  # noqa: F401  (re-exported contract)

__all__ = [
    "MetricSpec",
    "METRIC_SPECS",
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "register_metric",
]


#: Shared latency bucket edges (ms).  Chosen to straddle the paper's
#: landmark values: ~1 ms RAM reads, the 10 ms ATS retry timer, ~2 ms hit
#: vs ~80 ms miss medians, and multi-second client-stack outliers.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0,
)


@dataclass(frozen=True)
class MetricSpec:
    """One entry of the metrics contract.

    ``paper_ref`` names the paper instrumentation point the metric
    mirrors ("§4.1 player", "§4.2 CDN", "§4.3 tcp_info", or "—" for
    simulator-internal execution metrics).  ``cardinality`` documents
    how many series the name can produce (all current metrics are
    fleet-wide scalars: cardinality 1 by design — per-server labels
    would explode the contract and add nothing the ShardReport/server
    objects don't already expose).

    ``scope`` separates the two determinism regimes (docs/TELEMETRY.md):

    * ``"workload"`` (default) — a pure function of the seeded workload,
      identical for any worker count or memory mode; serialized into the
      byte-stable metrics document by :meth:`MetricsRegistry.snapshot`;
    * ``"execution"`` — describes *how* the run was computed (spill runs
      flushed, bytes written...), legitimately different between an
      in-memory and a spilled run of the same workload.  Excluded from
      the metrics document; surfaced via
      :meth:`MetricsRegistry.execution_snapshot` in the run manifest's
      execution block, which is not byte-stable by design.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    description: str
    paper_ref: str
    cardinality: int = 1
    buckets: Optional[Tuple[float, ...]] = None  # histograms only
    scope: str = "workload"  # "workload" | "execution"


def _specs(entries: Iterable[MetricSpec]) -> Dict[str, MetricSpec]:
    table: Dict[str, MetricSpec] = {}
    for spec in entries:
        if spec.name in table:
            raise ValueError(f"duplicate metric spec {spec.name!r}")
        if spec.kind == "histogram" and not spec.buckets:
            raise ValueError(f"histogram {spec.name!r} must declare buckets")
        table[spec.name] = spec
    return table


#: The metrics contract.  Adding a metric here REQUIRES a matching row in
#: docs/OBSERVABILITY.md (tests/test_docs_contract.py enforces both ways).
METRIC_SPECS: Dict[str, MetricSpec] = _specs(
    [
        # -- engine (execution) ---------------------------------------------
        MetricSpec(
            "engine.events_total", "counter", "events",
            "Events dispatched by the discrete-event loop (all periods, "
            "warmup included).", "—",
        ),
        MetricSpec(
            "engine.clock_ms", "gauge", "ms",
            "Final simulation clock of the last completed event-loop run.",
            "—",
        ),
        # -- CDN serving path (§4.1) ----------------------------------------
        MetricSpec(
            "cdn.requests_total", "counter", "requests",
            "Chunk requests served by the CDN fleet.", "§4.2 CDN",
        ),
        MetricSpec(
            "cdn.bytes_served_total", "counter", "bytes",
            "Chunk bytes served by the CDN fleet.", "§4.2 CDN",
        ),
        MetricSpec(
            "cdn.cache_hits_ram_total", "counter", "requests",
            "Requests served from the RAM cache level.", "§4.1 (Fig. 5)",
        ),
        MetricSpec(
            "cdn.cache_hits_disk_total", "counter", "requests",
            "Requests served from the disk cache level (pay the "
            "open-read-retry timer).", "§4.1 (Fig. 5)",
        ),
        MetricSpec(
            "cdn.cache_misses_total", "counter", "requests",
            "Requests that missed both cache levels and went to the "
            "backend.", "§4.1 (Fig. 6)",
        ),
        MetricSpec(
            "cdn.retry_timer_hits_total", "counter", "requests",
            "Requests whose first open attempt failed and paid the ~10 ms "
            "ATS open-read-retry timer.", "§4.1 ([4])",
        ),
        MetricSpec(
            "cdn.backend_fetches_total", "counter", "fetches",
            "Synchronous backend fetches issued on cache miss.", "§4.2 CDN",
        ),
        MetricSpec(
            "cdn.prefetch_fetches_total", "counter", "fetches",
            "Asynchronous cache-warming fetches (first-chunk warming and "
            "prefetch-after-miss extensions).", "§4.1 take-aways",
        ),
        MetricSpec(
            "cdn.queue_wait_ms", "histogram", "ms",
            "Accept-queue wait before a worker reads the request headers "
            "(D_wait).", "§4.2 CDN", buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "cdn.serve_latency_ms", "histogram", "ms",
            "Server-side latency D_CDN = D_wait + D_open + D_read.",
            "§4.2 CDN", buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "cdn.backend_latency_ms", "histogram", "ms",
            "Backend first-byte latency D_BE, observed only on misses.",
            "§4.2 CDN", buckets=LATENCY_BUCKETS_MS,
        ),
        # -- client chunk lifecycle (§4.1 player / §4.3 stack) --------------
        MetricSpec(
            "client.sessions_total", "counter", "sessions",
            "Session actors started (measured and warmup streams).",
            "§4.1 player",
        ),
        MetricSpec(
            "client.chunks_total", "counter", "chunks",
            "Chunks processed end to end by session actors.", "§4.1 player",
        ),
        MetricSpec(
            "client.dfb_ms", "histogram", "ms",
            "Player-observed first-byte delay D_FB per chunk.",
            "§4.1 player (Table 2)", buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "client.dlb_ms", "histogram", "ms",
            "Player-observed last-byte delay D_LB per chunk.",
            "§4.1 player (Table 2)", buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "client.startup_delay_ms", "histogram", "ms",
            "First-chunk total download time (the paper's time-to-play "
            "proxy).", "§4.1 player (Fig. 4)", buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "client.rebuffer_events_total", "counter", "events",
            "Rebuffering events charged to chunks (bufcount).",
            "§4.1 player (Table 2)",
        ),
        MetricSpec(
            "client.rebuffer_ms", "histogram", "ms",
            "Duration of individual rebuffering stalls (bufdur).",
            "§4.1 player (Table 2)", buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "client.ds_delay_ms", "histogram", "ms",
            "Download-stack first-byte delay D_DS added by the OS/browser/"
            "runtime layers.", "§4.3 download stack",
            buckets=LATENCY_BUCKETS_MS,
        ),
        MetricSpec(
            "client.ds_transients_total", "counter", "chunks",
            "Chunks hit by a transient download-stack buffering burst "
            "(Eq. 4's detection target).", "§4.3 download stack",
        ),
        # -- fault injection (docs/FAULTS.md) -------------------------------
        MetricSpec(
            "faults.server_requests_total", "counter", "requests",
            "CDN requests served while a server-layer fault epoch was "
            "active on the serving server.", "—",
        ),
        MetricSpec(
            "faults.network_chunks_total", "counter", "chunks",
            "Chunks whose request was issued while a network-layer fault "
            "epoch was active on the client's path.", "—",
        ),
        MetricSpec(
            "faults.render_chunks_total", "counter", "chunks",
            "Visible software-rendered chunks completed while a "
            "client-render fault epoch was active on the client's OS.", "—",
        ),
        MetricSpec(
            "faults.labeled_chunks_total", "counter", "chunks",
            "Chunks stamped with at least one ground-truth fault label "
            "(warmup streams included; their labels are discarded with "
            "the rest of the warmup telemetry).", "—",
        ),
        # -- sweep runner (docs/SCENARIOS.md) -------------------------------
        MetricSpec(
            "sweeps.cells_total", "counter", "cells",
            "Factorial sweep cells executed by the sweep runner "
            "(succeeded and failed).", "—",
        ),
        MetricSpec(
            "sweeps.cells_failed_total", "counter", "cells",
            "Sweep cells whose scenario resolution or simulation raised "
            "(recorded in the aggregate report's failed map).", "—",
        ),
        # -- telemetry spill (docs/TELEMETRY.md) ----------------------------
        # Execution scope: spill activity depends on the memory mode and
        # threshold, never on the workload, so these counters live in the
        # run manifest's execution block — not the byte-stable metrics
        # document (see MetricSpec.scope).
        MetricSpec(
            "telemetry.spill.runs_total", "counter", "runs",
            "Sorted columnar runs flushed to disk by telemetry spill "
            "writers (all record kinds).", "—", scope="execution",
        ),
        MetricSpec(
            "telemetry.spill.rows_total", "counter", "records",
            "Telemetry records written into spill runs.", "—",
            scope="execution",
        ),
        MetricSpec(
            "telemetry.spill.bytes_total", "counter", "bytes",
            "Bytes of columnar run files written by telemetry spill "
            "writers.", "—", scope="execution",
        ),
        # -- columnar analysis read path (docs/PERFORMANCE.md) --------------
        # Execution scope: block/session/chunk progress of the vectorized
        # analysis pass depends on the read-path selection and block
        # budget, never on the workload, so these counters live in the run
        # manifest's execution block like the spill counters above.
        MetricSpec(
            "analysis.blocks_total", "counter", "blocks",
            "Session-aligned blocks processed by the columnar analysis "
            "pass.", "—", scope="execution",
        ),
        MetricSpec(
            "analysis.sessions_total", "counter", "sessions",
            "Joined sessions reduced by the columnar analysis pass.", "—",
            scope="execution",
        ),
        MetricSpec(
            "analysis.chunks_total", "counter", "chunks",
            "Joined chunks attributed/aggregated by the columnar analysis "
            "pass.", "—", scope="execution",
        ),
        # -- live service mode (docs/OBSERVABILITY.md "Service mode") -------
        # Execution scope: round/window/incident progress describes how the
        # long-lived service chose to chop the workload into rounds, not the
        # workload itself, so these counters stay out of the byte-stable
        # metrics document (which must match a batch run of the same
        # sessions).
        MetricSpec(
            "serve.rounds_total", "counter", "rounds",
            "Arrival rounds completed by the live service loop.", "—",
            scope="execution",
        ),
        MetricSpec(
            "serve.windows_sealed_total", "counter", "windows",
            "Rolling metric windows sealed and published by the live "
            "service.", "—", scope="execution",
        ),
        MetricSpec(
            "serve.incidents_total", "counter", "incidents",
            "Incidents opened by the online localization cascade over "
            "sealed windows.", "—", scope="execution",
        ),
    ]
)


def register_metric(spec: MetricSpec) -> None:
    """Extend the contract at runtime (extensions/tests).

    Out-of-tree metrics registered this way are exempt from the docs-sync
    lint, which checks the in-tree contract as imported.
    """
    if spec.name in METRIC_SPECS:
        raise ValueError(f"metric {spec.name!r} already registered")
    METRIC_SPECS[spec.name] = spec


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += int(n)


class Gauge:
    """Last-set float value; shards merge by max (see module docstring)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-edge histogram with integer bucket counts.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot is
    the overflow bucket (``> edges[-1]``).  Edges are part of the metric
    spec, never derived from data, so bucket boundaries are identical for
    any shard count.
    """

    __slots__ = ("edges", "counts", "count")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left gives Prometheus "le" buckets: value == edge stays
        # in that edge's bucket
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1


class MetricsRegistry:
    """One run's metrics plus its span tracer.

    The registry is the single object threaded through the simulator's
    hot paths; components bind handles once (``registry.counter(name)``)
    and touch plain attributes afterwards.  Every name must appear in
    :data:`METRIC_SPECS` — an unknown name is a programming error, caught
    immediately rather than silently creating an undocumented series.

    :meth:`snapshot` emits **all** contract metrics, zero-valued if never
    touched, so the serialized key set is independent of which code paths
    a particular config exercises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.tracer = SpanTracer()

    # -- handle lookup -------------------------------------------------------

    def _spec(self, name: str, kind: str) -> MetricSpec:
        spec = METRIC_SPECS.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not in the contract; add a MetricSpec "
                f"(and a docs/OBSERVABILITY.md row) first"
            )
        if spec.kind != kind:
            raise TypeError(f"metric {name!r} is a {spec.kind}, not a {kind}")
        return spec

    def counter(self, name: str) -> Counter:
        self._spec(name, "counter")
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        self._spec(name, "gauge")
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        spec = self._spec(name, "histogram")
        assert spec.buckets is not None
        return self._histograms.setdefault(name, Histogram(spec.buckets))

    def span(self, name: str):
        """Open a wall-clock span (delegates to the tracer)."""
        return self.tracer.span(name)

    # -- serialization -------------------------------------------------------

    def snapshot(self, scope: str = "workload") -> Dict[str, Any]:
        """Deterministic plain-dict view of every contract metric of *scope*.

        The default (``"workload"``) is the byte-stable metrics-document
        payload; execution-scoped metrics (spill accounting) are fetched
        separately via :meth:`execution_snapshot` and never enter it.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(METRIC_SPECS):
            spec = METRIC_SPECS[name]
            if spec.scope != scope:
                continue
            if spec.kind == "counter":
                handle = self._counters.get(name)
                counters[name] = handle.value if handle else 0
            elif spec.kind == "gauge":
                gauge = self._gauges.get(name)
                gauges[name] = gauge.value if gauge else 0.0
            else:
                assert spec.buckets is not None
                hist = self._histograms.get(name)
                histograms[name] = {
                    "edges": list(spec.buckets),
                    "counts": list(hist.counts) if hist else [0] * (len(spec.buckets) + 1),
                    "count": hist.count if hist else 0,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def execution_snapshot(self) -> Dict[str, Any]:
        """The execution-scoped metrics (run-manifest material, not byte-stable)."""
        return self.snapshot(scope="execution")

    def spans_snapshot(self) -> List[Dict[str, Any]]:
        return self.tracer.snapshot()

    # -- merging (sharded runs) ----------------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold one shard's :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the max.  All
        three operations are order-independent over integers/max, so
        folding shards in any order yields the serial run's values.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            if list(hist.edges) != list(payload["edges"]):
                raise ValueError(f"histogram {name!r}: bucket edges differ across shards")
            for i, n in enumerate(payload["counts"]):
                hist.counts[i] += n
            hist.count += payload["count"]

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[Dict[str, Any]]) -> "MetricsRegistry":
        """A registry holding the deterministic merge of *snapshots*."""
        registry = cls()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry
