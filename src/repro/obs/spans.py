"""Lightweight span tracing: aggregated enter/exit timers with parent links.

Spans answer the ROADMAP question the deterministic metrics cannot — *where
does the wall-clock go?* — per stage, not per call: each ``span(name)``
enter/exit pair adds its elapsed time to an aggregate keyed by
``(name, parent)``, where the parent is whatever span was open on the same
tracer when this one started.  There is no per-call event list, so tracing
a million chunk spans costs two ``perf_counter`` reads and one dict update
each, and memory stays O(distinct span names).

Wall-clock measurements are inherently nondeterministic, so spans are
serialized separately from the metrics snapshot (run manifest / ShardReport,
never ``--metrics-out``); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanSpec", "SPAN_SPECS", "SpanTracer", "register_span"]


@dataclass(frozen=True)
class SpanSpec:
    """Contract entry for one span name (see docs/OBSERVABILITY.md)."""

    name: str
    description: str


SPAN_SPECS: Dict[str, SpanSpec] = {
    spec.name: spec
    for spec in [
        SpanSpec(
            "driver.warmup",
            "One warmup period: cache-warming sessions with telemetry discarded.",
        ),
        SpanSpec(
            "driver.period",
            "One measured collection period (generation, event loop, telemetry).",
        ),
        SpanSpec(
            "engine.run",
            "One event-loop drain: dispatching scheduled events in time order.",
        ),
        SpanSpec(
            "session.chunk",
            "One chunk's end-to-end lifecycle in a session actor (fetch, "
            "download, playout, telemetry).",
        ),
        SpanSpec(
            "cdn.serve",
            "One CDN serve call: queue wait, cache lookup, read, backend fetch.",
        ),
        SpanSpec(
            "parallel.worker",
            "One shard worker's whole execution (all periods, successful "
            "attempt).",
        ),
        SpanSpec(
            "parallel.merge",
            "Parent-side deterministic merge of shard datasets and registries.",
        ),
        SpanSpec(
            "analysis.read",
            "One vectorized columnar analysis pass over a dataset (planning, "
            "all blocks, result assembly).",
        ),
        SpanSpec(
            "analysis.block",
            "One session-aligned block of the columnar analysis pass (join, "
            "chunk math, accumulator updates).",
        ),
        SpanSpec(
            "serve.round",
            "One live-service round: simulate an arrival batch, fold "
            "windows, run the online localizer over sealed windows.",
        ),
    ]
}


def register_span(spec: SpanSpec) -> None:
    """Extend the span contract at runtime (extensions/tests)."""
    if spec.name in SPAN_SPECS:
        raise ValueError(f"span {spec.name!r} already registered")
    SPAN_SPECS[spec.name] = spec


class _SpanHandle:
    """Context manager recording one enter/exit into the tracer's aggregate."""

    __slots__ = ("_tracer", "_name", "_started")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._started = time.perf_counter()
        self._tracer._stack.append(self._name)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._started
        stack = self._tracer._stack
        stack.pop()
        parent = stack[-1] if stack else None
        key = (self._name, parent)
        entry = self._tracer._aggregate.get(key)
        if entry is None:
            self._tracer._aggregate[key] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed


class SpanTracer:
    """Aggregating tracer; one per :class:`~repro.obs.registry.MetricsRegistry`."""

    def __init__(self) -> None:
        self._stack: List[str] = []
        self._aggregate: Dict[Tuple[str, Optional[str]], List[float]] = {}

    def span(self, name: str) -> _SpanHandle:
        if name not in SPAN_SPECS:
            raise KeyError(
                f"span {name!r} is not in the contract; add a SpanSpec "
                f"(and a docs/OBSERVABILITY.md row) first"
            )
        return _SpanHandle(self, name)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Aggregated spans, sorted by (name, parent) for stable output."""
        return [
            {
                "name": name,
                "parent": parent,
                "count": int(entry[0]),
                "total_s": float(entry[1]),
            }
            for (name, parent), entry in sorted(
                self._aggregate.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")
            )
        ]

    def totals(self) -> List[Tuple[str, float]]:
        """(span name, total seconds) pairs summed over parents, sorted."""
        by_name: Dict[str, float] = {}
        for (name, _parent), entry in self._aggregate.items():
            by_name[name] = by_name.get(name, 0.0) + entry[1]
        return sorted(by_name.items())
