"""repro.obs — the simulator's observability layer.

Zero-dependency metrics (counters, gauges, fixed-bucket histograms) and
aggregated span tracing, threaded through the simulator's hot paths, plus
the run-manifest / metrics-document emitters behind
``repro simulate --metrics-out``.

The set of legal metric and span names is a *written contract*:
``docs/OBSERVABILITY.md`` documents every name, and
``tests/test_docs_contract.py`` fails if code and docs drift apart.

The module also keeps a process-level "last completed run" capture so the
benchmark harness can attach stage-level breakdowns to its BENCH_*.json
records without threading a registry through every experiment.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .manifest import (
    EXECUTION_FIELDS,
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    config_hash,
    dump_json,
    load_run_manifest,
    metrics_document,
    run_manifest,
    save_run_manifest,
    validate_manifest,
    write_metrics_document,
)
from .registry import (
    LATENCY_BUCKETS_MS,
    METRIC_SPECS,
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    register_metric,
)
from .spans import SPAN_SPECS, SpanSpec, SpanTracer, register_span
from .trace import (
    TRACE_EVENT_SPECS,
    TRACE_SCHEMA,
    ChunkTrace,
    SessionTrace,
    TraceEventSpec,
    TraceRecorder,
    chrome_trace_document,
    read_trace_jsonl,
    session_sampled,
    validate_trace,
    write_chrome_trace,
    write_trace,
    write_trace_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "MetricSpec",
    "METRIC_SPECS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "register_metric",
    "SpanTracer",
    "SpanSpec",
    "SPAN_SPECS",
    "register_span",
    "config_hash",
    "metrics_document",
    "run_manifest",
    "dump_json",
    "write_metrics_document",
    "save_run_manifest",
    "EXECUTION_FIELDS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "validate_manifest",
    "load_run_manifest",
    "TRACE_SCHEMA",
    "TRACE_EVENT_SPECS",
    "TraceEventSpec",
    "TraceRecorder",
    "SessionTrace",
    "ChunkTrace",
    "session_sampled",
    "validate_trace",
    "read_trace_jsonl",
    "write_trace",
    "write_trace_jsonl",
    "write_chrome_trace",
    "chrome_trace_document",
    "publish_last_run",
    "last_run",
]

_LAST_RUN: Optional[Dict[str, Any]] = None


def publish_last_run(registry: MetricsRegistry) -> None:
    """Record *registry* as the most recently completed run in this process.

    Called by the simulation drivers when a run finishes; read by the
    benchmark harness (:func:`last_run`).  Snapshots are taken eagerly so
    later mutation of the registry cannot change what was published.
    """
    global _LAST_RUN
    _LAST_RUN = {
        "metrics": registry.snapshot(),
        "spans": registry.spans_snapshot(),
    }


def last_run() -> Optional[Dict[str, Any]]:
    """The last published run's ``{"metrics": ..., "spans": ...}``, if any."""
    return _LAST_RUN
