"""Run manifests and metrics documents: what ran, under what identity.

Two artifacts, two contracts:

* the **metrics document** (``repro simulate --metrics-out``) is fully
  deterministic — workload identity plus the metrics registry snapshot.
  Its bytes depend only on the seeded workload, never on how the run was
  executed: a serial run and a ``--workers 4`` run of the same config
  produce identical files (the acceptance test of the observability
  layer).  Execution knobs are therefore excluded from its config hash
  and its manifest block.
* the **run manifest** (``manifest.json`` written next to every persisted
  dataset) records the execution too: shard layout, per-shard reports,
  span timings, wall clock.  It answers "what produced this directory"
  and is *not* byte-stable across worker counts — by design.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from .._execution import EXECUTION_FIELD_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from ..simulation.config import SimulationConfig
    from ..simulation.driver import SimulationResult

__all__ = [
    "EXECUTION_FIELDS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "config_hash",
    "metrics_document",
    "run_manifest",
    "dump_json",
    "write_metrics_document",
    "save_run_manifest",
    "validate_manifest",
    "load_run_manifest",
]

#: Config fields that choose *how* (or whether) the run is observed and
#: executed, never *what* is simulated (see SimulationConfig).  Excluded
#: from the workload identity hash so serial, sharded, traced, and
#: fleet-stepped runs of one workload share a config_hash.  Derived
#: structurally from :class:`~repro.simulation.execution.ExecutionOptions`
#: — adding an execution knob there excludes it here automatically.
EXECUTION_FIELDS = frozenset(EXECUTION_FIELD_NAMES)

MANIFEST_SCHEMA = "repro.obs/1"
#: Integer schema version carried by every manifest (see the migration
#: note in docs/OBSERVABILITY.md).  Loaders reject unknown versions.
MANIFEST_SCHEMA_VERSION = 1
MANIFEST_FILENAME = "manifest.json"


def config_hash(config: "SimulationConfig") -> str:
    """Stable hex digest of the config's workload-semantic fields."""
    payload = dataclasses.asdict(config)
    for field in EXECUTION_FIELDS:
        payload.pop(field, None)
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _identity(result: "SimulationResult") -> Dict[str, Any]:
    """The deterministic manifest block shared by both artifacts."""
    # Imported lazily: repro/__init__ imports the driver, which imports
    # this package before __version__ is bound.
    from .. import __version__

    return {
        "schema": MANIFEST_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "package_version": __version__,
        "seed": result.config.seed,
        "config_hash": config_hash(result.config),
        "n_sessions": result.dataset.n_sessions,
        "n_chunks": result.dataset.n_chunks,
    }


def metrics_document(result: "SimulationResult") -> Dict[str, Any]:
    """The deterministic ``--metrics-out`` payload: identity + registry."""
    metrics = result.metrics.snapshot() if result.metrics is not None else {}
    return {"manifest": _identity(result), "metrics": metrics}


def run_manifest(
    result: "SimulationResult", wall_time_s: Optional[float] = None
) -> Dict[str, Any]:
    """The full execution manifest written next to a persisted dataset."""
    config = result.config
    shards = [dataclasses.asdict(report) for report in result.shard_reports]
    manifest = _identity(result)
    manifest["execution"] = {
        "workers": config.workers,
        "engine": config.engine,
        "shard_by": config.shard_by,
        "shard_timeout_s": config.shard_timeout_s,
        "n_shards": len(shards) or 1,
        "shard_reports": shards,
        "spans": result.metrics.spans_snapshot() if result.metrics is not None else [],
        # memory mode + spill accounting (docs/TELEMETRY.md): execution-
        # scoped metrics live here, not in the byte-stable metrics document
        "spill_dir": config.spill_dir,
        "spill_threshold_rows": config.spill_threshold_rows,
        "metrics": (
            result.metrics.execution_snapshot() if result.metrics is not None else {}
        ),
    }
    if wall_time_s is not None:
        manifest["execution"]["wall_time_s"] = wall_time_s
    return manifest


def dump_json(document: Dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, fixed indentation, newline."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_metrics_document(result: "SimulationResult", path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_json(metrics_document(result)), encoding="utf-8")
    return path


def save_run_manifest(
    result: "SimulationResult",
    directory: Union[str, Path],
    wall_time_s: Optional[float] = None,
) -> Path:
    """Write ``manifest.json`` into a dataset directory; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_FILENAME
    path.write_text(dump_json(run_manifest(result, wall_time_s)), encoding="utf-8")
    return path


def validate_manifest(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Reject manifests written by an unknown schema version.

    Manifests from before the ``schema_version`` field (PR 2–4) carry only
    the ``schema`` string; those read as version 1 (the migration note in
    docs/OBSERVABILITY.md).  Anything newer than
    :data:`MANIFEST_SCHEMA_VERSION` — or a foreign ``schema`` — raises, so
    tooling fails loudly instead of silently misreading future layouts.
    """
    schema = payload.get("schema")
    if schema is not None and schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"not a repro manifest: schema {schema!r} (expected {MANIFEST_SCHEMA!r})"
        )
    version = payload.get("schema_version", 1 if schema == MANIFEST_SCHEMA else None)
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema_version {version!r}; this build "
            f"reads version {MANIFEST_SCHEMA_VERSION} only — regenerate the "
            "manifest or upgrade (docs/OBSERVABILITY.md, 'Schema versioning')"
        )
    return payload


def load_run_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load + validate a ``manifest.json`` (or a dataset directory holding one)."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_FILENAME
    payload = json.loads(path.read_text(encoding="utf-8"))
    return validate_manifest(payload)
