"""repro — end-to-end characterization of a commercial video streaming service.

A faithful reproduction of Ghasemi et al., "Performance Characterization of
a Commercial Video Streaming Service" (IMC 2016), built on a synthetic
substrate: since the paper's Yahoo production traces are proprietary, this
package pairs

* a **full-path simulator** (`repro.simulation`) — ATS-like CDN servers
  with two-level caches and the open-read-retry timer, a round-based TCP
  model with kernel-style `tcp_info` state, wide-area path models, and a
  Flash-era client (ABR, playback buffer, download stack, rendering path) —
  with
* the paper's **analysis pipeline** (`repro.core`) — the chunk-level join,
  proxy filtering, latency decomposition (Eq. 1), performance score
  (Eq. 2), download-stack outlier detection (Eq. 4) and RTO bound (Eq. 5),
  prefix-level persistence analysis, and QoE metrics — which consumes only
  the telemetry a production deployment would have.

Quickstart::

    from repro import SimulationConfig, run
    result = run(SimulationConfig(n_sessions=500, seed=1))
    from repro.core import filter_proxies, qoe
    dataset, _ = filter_proxies(result.dataset)
    print(qoe.summarize(dataset))

:func:`repro.api.run` is the supported entry point for every execution
shape — serial, sharded (``workers=4``), multi-period, and fault-injected
(``faults="examples/fault_cdn_degradation.json"``).  The lower-level
``Simulator`` / ``simulate`` names remain exported for backward
compatibility but new code should go through ``run()``.
"""

from .api import RunResult, run
from .faults import FaultSpec
from .simulation.config import SimulationConfig
from .simulation.driver import SimulationResult, Simulator, simulate
from .sweep import ScenarioSpec, SweepSpec, run_sweep
from .telemetry.dataset import Dataset, JoinedChunk, SessionView

__version__ = "1.0.0"

__all__ = [
    "run",
    "RunResult",
    "FaultSpec",
    "ScenarioSpec",
    "SweepSpec",
    "run_sweep",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "simulate",
    "Dataset",
    "JoinedChunk",
    "SessionView",
    "__version__",
]
