"""The paper's controlled rendering experiment (Fig. 20).

§4.4-1: "our player is running in Firefox browser on OS X with 8 CPU
cores, connected to the server using a 1 GigE Ethernet, streaming a sample
video with 10 chunks.  The first bar represents the per-chunk dropped rate
while using GPU.  Next, we turned off hardware rendering to force rendering
by CPU; at each iteration, we loaded one more CPU core."

This module reproduces that lab setup on the simulator's rendering model:
the network is so fast (GigE LAN) that the download rate is never the
bottleneck, isolating the CPU-load effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..client.browsers import get_profile
from ..client.rendering import RenderingModel
from ..workload.catalog import CHUNK_DURATION_MS
from ..workload.randomness import spawn

__all__ = ["ControlledRenderingResult", "run_controlled_rendering_experiment"]


@dataclass(frozen=True)
class ControlledRenderingResult:
    """Dropped-frame percentages per CPU-load level (Fig. 20's bars)."""

    #: x-axis labels: "GPU" then "<=100%", "200%", ... (loaded cores x 100)
    labels: Tuple[str, ...]
    #: mean per-chunk dropped-frame percentage per level
    dropped_pct: Tuple[float, ...]
    n_chunks_per_level: int


def run_controlled_rendering_experiment(
    n_cores: int = 8,
    n_chunks: int = 10,
    n_trials: int = 30,
    seed: int = 0,
) -> ControlledRenderingResult:
    """Replay the Fig. 20 lab experiment; returns per-load drop percentages.

    Level 0 uses hardware (GPU) rendering; level k (k >= 1) uses software
    rendering with k cores fully loaded by background work.
    """
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    if n_chunks <= 0 or n_trials <= 0:
        raise ValueError("n_chunks and n_trials must be positive")
    rng = spawn(seed, "controlled-rendering")
    platform = get_profile("Mac", "Firefox")
    # GigE LAN: a 6 s chunk at 3 Mbps downloads in ~18 ms -> rate >> 1.5 s/s.
    lan_download_rate = 300.0

    labels: List[str] = ["GPU"]
    dropped: List[float] = []

    def mean_drop(gpu: bool, loaded_cores: int) -> float:
        samples: List[float] = []
        for _ in range(n_trials):
            model = RenderingModel(
                platform=platform,
                gpu=gpu,
                cpu_cores=n_cores,
                cpu_background_load=loaded_cores / n_cores,
                rng=rng,
            )
            for _ in range(n_chunks):
                result = model.render_chunk(
                    download_rate=lan_download_rate,
                    visible=True,
                    bitrate_kbps=3000.0,
                    buffer_level_ms=0.0,
                    chunk_duration_ms=CHUNK_DURATION_MS,
                )
                samples.append(result.dropped_fraction * 100.0)
        return float(np.mean(samples))

    dropped.append(mean_drop(gpu=True, loaded_cores=0))
    for loaded in range(0, n_cores + 1):
        labels.append(f"{max(loaded, 1) * 100}%" if loaded else "<10%")
        dropped.append(mean_drop(gpu=False, loaded_cores=loaded))

    return ControlledRenderingResult(
        labels=tuple(labels),
        dropped_pct=tuple(dropped),
        n_chunks_per_level=n_chunks * n_trials,
    )
