"""Sharded parallel simulation: partition, execute, synchronize, merge.

The serial :class:`~repro.simulation.driver.Simulator` runs every session on
one event loop.  :class:`ParallelSimulator` splits the same workload into K
deterministic shards (see :mod:`repro.simulation.shard`), runs each shard in
its own worker process with its own event loop and its own slice of the CDN
fleet, and merges the per-shard telemetry into one canonical
:class:`~repro.telemetry.dataset.Dataset`.

Determinism contract (``server`` mode, the default): sessions interact only
through their assigned CDN server, and a server's entire request stream
stays inside one shard, so the merged dataset's records **equal the serial
run's records** for the same seed — the only difference is emission order,
which :meth:`Dataset.merge_all` canonicalizes away.  ``session`` mode trades
that exactness for finer-grained balance (each shard replicates the fleet
and caches see ~1/K of the traffic); see docs/PARALLEL.md.

Clock barriers: the serial run starts a measured period when the *fleet's*
previous phase ends (the event loop's final timestamp), a quantity no shard
knows locally.  Workers therefore synchronize at period boundaries: each
sends its local clock to the parent, which replies with the max across
shards — exactly the serial loop-end time, since the global event sequence
is the union of the shards'.  The barrier exchanges one float per shard per
boundary; it is not a data merge.

Fault tolerance: a worker that crashes or exceeds the shard timeout is
retried once on a fresh process (replaying any barrier rounds it had
passed — contributions are deterministic, so replays are idempotent).
Shards that already finished are never re-run; their results are preserved.
Every shard's execution is summarized in a :class:`ShardReport` (wall time,
sessions, retries, peak RSS) attached to the
:class:`~repro.simulation.driver.SimulationResult`.

Multi-period runs (:meth:`ParallelSimulator.run_periods`) execute a list of
:class:`PeriodSpec` back to back inside each worker, carrying cache state
across periods exactly as the incident scenarios do serially — this is how
``repro.simulation.scenarios`` opts in to sharded execution.
"""

from __future__ import annotations

import importlib
import itertools
import multiprocessing as mp
import os
import shutil
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..cdn.server import CdnServer
from ..obs import publish_last_run
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceRecorder
from ..telemetry.dataset import Dataset
from ..telemetry.spill import SpilledDataset
from .config import SimulationConfig
from .driver import SimulationResult, Simulator, World, build_world
from .shard import SHARD_MODES, ShardSpec

__all__ = [
    "ShardReport",
    "ShardFailedError",
    "PeriodSpec",
    "execute_periods",
    "ParallelSimulator",
]


@dataclass(frozen=True)
class ShardReport:
    """Execution telemetry for one shard (observability, not simulation data)."""

    shard_index: int
    n_shards: int
    mode: str
    #: measured sessions this shard simulated (across all periods)
    sessions: int
    #: CDN servers instantiated by this shard
    n_servers: int
    #: wall-clock seconds of the successful attempt (0.0 if the shard failed)
    wall_time_s: float
    #: failed attempts before the one that produced the result
    retries: int
    #: worker peak resident set size in bytes (0 if unavailable)
    peak_rss_bytes: int
    worker_pid: int
    succeeded: bool = True
    error: Optional[str] = None
    #: wall-clock span breakdown of the worker: ((span name, total s), ...)
    #: sorted by name — see docs/OBSERVABILITY.md for the span contract
    span_totals: Tuple[Tuple[str, float], ...] = ()


class ShardFailedError(RuntimeError):
    """A shard failed its initial attempt and its retry."""

    def __init__(self, shard_index: int, reason: str) -> None:
        super().__init__(f"shard {shard_index} failed after retry: {reason}")
        self.shard_index = shard_index
        self.reason = reason


@dataclass(frozen=True)
class PeriodSpec:
    """One collection period of a (possibly multi-period) run.

    Consecutive periods execute on the same worker, so cache state carries
    over exactly as it does for the serial incident scenarios.  A period
    whose ``config`` differs from the previous period's gets a fresh
    :class:`Simulator` that (with ``carry_fleet``) inherits the previous
    period's warmed servers and deployment — the flash-crowd pattern.

    ``mutation`` names a module-level callable as ``"pkg.module:function"``
    invoked as ``fn(simulator, *mutation_args)`` before the period runs
    (e.g. flushing caches).  It is a string, not a callable, so the spec
    stays picklable under any multiprocessing start method.
    """

    config: SimulationConfig
    n_sessions: Optional[int] = None
    start_ms: float = 0.0
    label: str = ""
    mutation: Optional[str] = None
    mutation_args: Tuple[Any, ...] = ()
    carry_fleet: bool = True


def _period_spill_subdirs(periods: Sequence[PeriodSpec]) -> List[Optional[str]]:
    """Per-period spill subdirectory names (``period-<name>/`` layout).

    Each period finalizes (seals) its own collector, so a shared
    ``spill_dir`` must fan out one subdirectory per period or period 2's
    writer would refuse the directory period 1 just sealed.  Single-period
    runs keep spilling at the root — the layout every existing reader
    knows.  Names come from the period labels (falling back to the period
    index) and must be unique, because a duplicated name is exactly the
    seal collision this layout exists to prevent.
    """
    if len(periods) <= 1 or all(spec.config.spill_dir is None for spec in periods):
        return [None] * len(periods)
    subdirs = [
        f"period-{spec.label}" if spec.label else f"period-{index:02d}"
        for index, spec in enumerate(periods)
    ]
    duplicates = {name for name in subdirs if subdirs.count(name) > 1}
    if duplicates:
        raise ValueError(
            "multi-period spill needs unique period labels; duplicated "
            f"spill subdirectories: {sorted(duplicates)}"
        )
    return subdirs


def _resolve_mutation(ref: str):
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ValueError(f"mutation must look like 'pkg.module:function', got {ref!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_periods(
    periods: Sequence[PeriodSpec],
    shard: Optional[ShardSpec] = None,
    world: Optional[World] = None,
    clock_sync: Optional[Callable[[float], float]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[List[Dataset], Simulator]:
    """Run *periods* back to back on one (optionally sharded) simulator.

    This is the single execution path shared by the serial scenario runner
    (``shard=None``) and the shard workers, so both produce identical
    per-server request streams.  Returns one dataset per period plus the
    final simulator (whose servers hold the end-of-run cache state).
    ``metrics`` (one registry for the whole multi-period run) is shared by
    every period's simulator, so config-change periods keep accumulating
    into the same counters.
    """
    if not periods:
        raise ValueError("periods must be non-empty")
    spill_subdirs = _period_spill_subdirs(periods)
    if metrics is None:
        metrics = MetricsRegistry()
    # One trace recorder for the whole multi-period run, so config-change
    # periods keep appending to the same event stream (like the registry).
    trace = (
        TraceRecorder(periods[0].config.trace_sample)
        if periods[0].config.trace_sample > 0
        else None
    )
    simulator: Optional[Simulator] = None
    datasets: List[Dataset] = []
    for spec, spill_subdir in zip(periods, spill_subdirs):
        if simulator is None:
            simulator = Simulator(
                spec.config, shard=shard, world=world, clock_sync=clock_sync,
                metrics=metrics, trace=trace,
            )
        elif spec.config != simulator.config:
            successor = Simulator(
                spec.config, shard=shard, clock_sync=clock_sync, metrics=metrics,
                trace=trace,
            )
            if spec.carry_fleet:
                successor.servers = simulator.servers
                successor.deployment = simulator.deployment
            simulator = successor
        if spec.mutation is not None:
            _resolve_mutation(spec.mutation)(simulator, *spec.mutation_args)
        datasets.append(
            simulator.run(
                spec.n_sessions, start_ms=spec.start_ms, spill_subdir=spill_subdir
            ).dataset
        )
    return datasets, simulator


# -- worker side -------------------------------------------------------------


@dataclass(frozen=True)
class _ShardTask:
    """Everything a worker needs, pickled across the process boundary."""

    shard: ShardSpec
    periods: Tuple[PeriodSpec, ...]
    world: Optional[World]
    attempt: int
    #: chaos hook (tests): crash immediately while attempt < fail_attempts
    fail_attempts: int = 0


def _peak_rss_bytes() -> int:
    try:
        import resource

        # ru_maxrss is KiB on Linux, bytes on macOS.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale
    except Exception:
        return 0


def _make_clock_sync(conn) -> Callable[[float], float]:
    """Worker-side barrier: send the local clock, wait for the fleet max."""
    rounds = itertools.count()

    def sync(clock_ms: float) -> float:
        conn.send({"sync": next(rounds), "clock_ms": clock_ms})
        return float(conn.recv())

    return sync


def _shard_worker_main(task: _ShardTask, conn) -> None:
    """Worker entry point: execute one shard and ship the results back."""
    if task.attempt < task.fail_attempts:
        os._exit(23)  # injected crash (tests): die before producing anything
    if task.attempt > 0:
        # A retried shard replays the same deterministic workload; clear any
        # partial (or even sealed-but-unshipped) spill left by the previous
        # attempt so the fresh writer does not refuse the directory.
        for spec in task.periods:
            if spec.config.spill_dir is not None:
                shutil.rmtree(
                    Path(spec.config.spill_dir) / f"shard-{task.shard.index:02d}",
                    ignore_errors=True,
                )
    try:
        started = time.perf_counter()
        registry = MetricsRegistry()
        with registry.span("parallel.worker"):
            datasets, simulator = execute_periods(
                task.periods,
                shard=task.shard,
                world=task.world,
                clock_sync=_make_clock_sync(conn),
                metrics=registry,
            )
        conn.send(
            {
                # Ship each period's dataset canonically pre-sorted: sorting
                # happens in the workers (in parallel), and the parent's
                # k-way merge can then skip its per-shard resort pass.
                "datasets": [dataset.sorted() for dataset in datasets],
                "servers": simulator.servers,
                "sessions": sum(d.n_sessions for d in datasets),
                "wall_time_s": time.perf_counter() - started,
                "peak_rss_bytes": _peak_rss_bytes(),
                "pid": os.getpid(),
                "metrics": registry.snapshot(),
                # execution-scoped metrics (spill accounting) travel
                # separately: they are run-manifest material and must never
                # leak into the byte-stable workload snapshot
                "execution_metrics": registry.execution_snapshot(),
                "span_totals": tuple(registry.tracer.totals()),
                # pre-sorted like the datasets: the parent k-way merges
                "trace": (
                    simulator.trace.events() if simulator.trace is not None else None
                ),
            }
        )
    except Exception:
        conn.send({"error": traceback.format_exc(), "pid": os.getpid()})
    finally:
        conn.close()


# -- parent side -------------------------------------------------------------


@dataclass
class _Running:
    proc: Any
    conn: Any
    started_monotonic: float
    attempt: int


@dataclass
class _SyncRound:
    """One barrier round: per-shard clocks in, one fleet clock out."""

    clocks: Dict[int, float]
    waiting: Dict[int, Any]  # shard index -> conn blocked on this round
    result: Optional[float] = None


class ParallelSimulator:
    """Run one simulated workload as K deterministic shards in parallel.

    Parameters default from the config's execution knobs so that
    ``ParallelSimulator(config)`` honours ``config.workers`` /
    ``config.shard_timeout_s`` / ``config.shard_by``; explicit arguments
    override.  ``fail_shard_attempts`` maps shard index → number of
    attempts to crash deliberately (fault-injection for tests).

    The shard timeout bounds wall-clock per attempt, measured from launch
    and refreshed whenever the shard demonstrates progress (a barrier
    message) or is released from a barrier it was blocked on.
    """

    #: one retry per shard: a crashed/hung shard gets exactly one fresh worker
    MAX_ATTEMPTS = 2

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        workers: Optional[int] = None,
        shard_by: Optional[str] = None,
        shard_timeout_s: Optional[float] = None,
        mp_context: Optional[str] = None,
        allow_partial: bool = False,
        fail_shard_attempts: Optional[Dict[int, int]] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.workers = workers if workers is not None else self.config.workers
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        self.shard_by = shard_by if shard_by is not None else self.config.shard_by
        if self.shard_by not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_by {self.shard_by!r}; choose from {SHARD_MODES}"
            )
        self.shard_timeout_s = (
            shard_timeout_s if shard_timeout_s is not None else self.config.shard_timeout_s
        )
        method = mp_context or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._ctx = mp.get_context(method)
        self.allow_partial = allow_partial
        self._fail_shard_attempts = dict(fail_shard_attempts or {})
        #: shard count == worker count: every worker owns exactly one shard
        self.n_shards = self.workers
        #: merged observability registry of the last completed run
        self.metrics: Optional[MetricsRegistry] = None
        #: merged causal-trace recorder of the last completed run (None
        #: unless the config enables tracing)
        self.trace: Optional[TraceRecorder] = None

    # -- public API ----------------------------------------------------------

    def run(
        self, n_sessions: Optional[int] = None, start_ms: float = 0.0
    ) -> SimulationResult:
        """Sharded equivalent of :meth:`Simulator.run`.

        The returned dataset is canonically ordered; under ``server``
        sharding its records equal ``Simulator(config).run()``'s for the
        same seed.  ``result.servers`` is the union of the shards' fleets
        (disjoint in ``server`` mode; replica keys are suffixed with
        ``@s<shard>`` in ``session`` mode).
        """
        world = build_world(self.config)
        period = PeriodSpec(config=self.config, n_sessions=n_sessions, start_ms=start_ms)
        datasets, servers, reports, registry = self._run_sharded((period,), world)
        result = SimulationResult(
            dataset=datasets[0],
            catalog=world.catalog,
            population=world.population,
            deployment=world.deployment,
            servers=servers,
            config=self.config,
            shard_reports=reports,
            metrics=registry,
            trace=self.trace,
        )
        publish_last_run(registry)
        return result

    def run_periods(
        self, periods: Sequence[PeriodSpec]
    ) -> Tuple[List[Dataset], Dict[str, CdnServer], List[ShardReport]]:
        """Run several consecutive periods sharded; one merged dataset each.

        Cache state carries across periods *within* each worker, mirroring
        the serial scenario runner.  Returns (datasets, merged fleet,
        shard reports).  Spilled multi-period runs land each period under
        ``<spill_dir>/shard-<k>/period-<name>/`` — validate the layout in
        the parent so a bad spec fails before any worker launches.
        """
        if not periods:
            raise ValueError("periods must be non-empty")
        _period_spill_subdirs(periods)
        world = build_world(periods[0].config)
        datasets, servers, reports, registry = self._run_sharded(tuple(periods), world)
        self.metrics = registry
        publish_last_run(registry)
        return datasets, servers, reports

    # -- orchestration -------------------------------------------------------

    def _run_sharded(
        self, periods: Tuple[PeriodSpec, ...], world: World
    ) -> Tuple[List[Dataset], Dict[str, CdnServer], List[ShardReport], MetricsRegistry]:
        outputs: Dict[int, Dict[str, Any]] = {}
        reports: Dict[int, ShardReport] = {}
        pending = deque(range(self.n_shards))
        attempts: Dict[int, int] = {index: 0 for index in range(self.n_shards)}
        running: Dict[int, _Running] = {}
        rounds: Dict[int, _SyncRound] = {}
        active: Set[int] = set(range(self.n_shards))
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    index = pending.popleft()
                    running[index] = self._launch(index, attempts[index], periods, world)
                self._reap(running, outputs, reports, pending, attempts, rounds, active)
        finally:
            for state in running.values():
                self._kill(state)
        # Merge the shard registries in sorted shard order.  Counters and
        # histogram buckets are integers and gauges merge by max, so the
        # fold equals the serial run's registry for any shard count.
        registry = MetricsRegistry()
        with registry.span("parallel.merge"):
            merged = [
                self._merge_period_datasets(
                    [outputs[index]["datasets"][p] for index in sorted(outputs)]
                )
                for p in range(len(periods))
            ]
            for index in sorted(outputs):
                registry.merge_snapshot(outputs[index]["metrics"])
                registry.merge_snapshot(outputs[index].get("execution_metrics", {}))
            # Trace merge: like the datasets, each shard ships canonically
            # pre-sorted events; a k-way merge in sorted shard order IS the
            # canonical (session, chunk, seq) order, so the export equals
            # the serial run's byte for byte.
            self.trace = None
            if self.config.trace_sample > 0:
                self.trace = TraceRecorder(self.config.trace_sample)
                self.trace.adopt_sorted(
                    TraceRecorder.merge_sorted(
                        outputs[index].get("trace") or []
                        for index in sorted(outputs)
                    )
                )
        servers: Dict[str, CdnServer] = {}
        for index in sorted(outputs):
            for server_id, server in outputs[index]["servers"].items():
                key = server_id if self.shard_by == "server" else f"{server_id}@s{index}"
                servers[key] = server
        return merged, servers, [reports[index] for index in sorted(reports)], registry

    @staticmethod
    def _merge_period_datasets(shards: List[Any]):
        """Merge one period's shard datasets, honouring the memory mode.

        In-memory shards k-way merge record lists (workers pre-sorted
        them); spilled shards merge *lazily* — the combined facade simply
        iterates every shard's runs in sorted shard order, which under
        ``server`` sharding (disjoint session-id ranges per shard) is the
        same canonical order ``Dataset.merge_all`` would produce, without
        reading a single row in the parent (docs/TELEMETRY.md).
        """
        if shards and isinstance(shards[0], SpilledDataset):
            return SpilledDataset.merge_all(shards)
        return Dataset.merge_all(shards, canonicalize=True, assume_sorted=True)

    def _launch(
        self, index: int, attempt: int, periods: Tuple[PeriodSpec, ...], world: World
    ) -> _Running:
        task = _ShardTask(
            shard=ShardSpec(index=index, n_shards=self.n_shards, mode=self.shard_by),
            periods=periods,
            world=world,
            attempt=attempt,
            fail_attempts=self._fail_shard_attempts.get(index, 0),
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker_main, args=(task, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()  # keep only the child's handle: EOF signals its death
        return _Running(
            proc=proc, conn=parent_conn, started_monotonic=time.monotonic(), attempt=attempt
        )

    def _reap(
        self,
        running: Dict[int, _Running],
        outputs: Dict[int, Dict[str, Any]],
        reports: Dict[int, ShardReport],
        pending: deque,
        attempts: Dict[int, int],
        rounds: Dict[int, _SyncRound],
        active: Set[int],
    ) -> None:
        """Wait for one event (message, crash, or timeout) and process it."""
        timeout = None
        if self.shard_timeout_s is not None:
            now = time.monotonic()
            nearest = min(
                state.started_monotonic + self.shard_timeout_s
                for state in running.values()
            )
            timeout = max(0.0, nearest - now)
        ready = set(
            mp_connection.wait([state.conn for state in running.values()], timeout)
        )
        now = time.monotonic()
        for index in list(running):
            state = running[index]
            if state.conn in ready:
                try:
                    payload = state.conn.recv()
                except (EOFError, OSError):
                    payload = None  # died before sending anything
                if payload is not None and "sync" in payload:
                    state.started_monotonic = now  # barrier message = progress
                    self._handle_sync(
                        index, state, payload, running, rounds, active
                    )
                    continue
                state.conn.close()
                state.proc.join()
                del running[index]
                if payload is None:
                    self._handle_failure(
                        index,
                        state,
                        f"worker crashed (exit code {state.proc.exitcode})",
                        reports,
                        pending,
                        attempts,
                        running,
                        rounds,
                        active,
                    )
                elif "error" in payload:
                    self._handle_failure(
                        index,
                        state,
                        payload["error"],
                        reports,
                        pending,
                        attempts,
                        running,
                        rounds,
                        active,
                    )
                else:
                    outputs[index] = payload
                    reports[index] = ShardReport(
                        shard_index=index,
                        n_shards=self.n_shards,
                        mode=self.shard_by,
                        sessions=payload["sessions"],
                        n_servers=len(payload["servers"]),
                        wall_time_s=payload["wall_time_s"],
                        retries=state.attempt,
                        peak_rss_bytes=payload["peak_rss_bytes"],
                        worker_pid=payload["pid"],
                        span_totals=tuple(payload.get("span_totals", ())),
                    )
            elif (
                self.shard_timeout_s is not None
                and now - state.started_monotonic > self.shard_timeout_s
            ):
                self._kill(state)
                del running[index]
                self._handle_failure(
                    index,
                    state,
                    f"shard exceeded timeout of {self.shard_timeout_s:g}s",
                    reports,
                    pending,
                    attempts,
                    running,
                    rounds,
                    active,
                )

    def _handle_sync(
        self,
        index: int,
        state: _Running,
        payload: Dict[str, Any],
        running: Dict[int, _Running],
        rounds: Dict[int, _SyncRound],
        active: Set[int],
    ) -> None:
        number = payload["sync"]
        sync_round = rounds.setdefault(number, _SyncRound(clocks={}, waiting={}))
        sync_round.clocks[index] = payload["clock_ms"]
        if sync_round.result is not None:
            # a retried shard replaying a completed barrier: answer directly
            state.conn.send(sync_round.result)
            return
        sync_round.waiting[index] = state.conn
        self._complete_rounds(rounds, running, active)

    def _complete_rounds(
        self,
        rounds: Dict[int, _SyncRound],
        running: Dict[int, _Running],
        active: Set[int],
    ) -> None:
        """Resolve every barrier round all active shards have reached."""
        now = time.monotonic()
        for sync_round in rounds.values():
            if sync_round.result is not None or not active:
                continue
            if not active <= set(sync_round.clocks):
                continue
            sync_round.result = max(sync_round.clocks[i] for i in sync_round.clocks)
            for waiter_index, conn in sync_round.waiting.items():
                conn.send(sync_round.result)
                if waiter_index in running:  # barrier wait is not the shard's fault
                    running[waiter_index].started_monotonic = now
            sync_round.waiting.clear()

    def _handle_failure(
        self,
        index: int,
        state: _Running,
        reason: str,
        reports: Dict[int, ShardReport],
        pending: deque,
        attempts: Dict[int, int],
        running: Dict[int, _Running],
        rounds: Dict[int, _SyncRound],
        active: Set[int],
    ) -> None:
        for sync_round in rounds.values():  # drop its stale barrier handle
            sync_round.waiting.pop(index, None)
        if state.attempt + 1 < self.MAX_ATTEMPTS:
            attempts[index] = state.attempt + 1
            pending.append(index)  # fresh worker, same deterministic shard
            return
        if not self.allow_partial:
            raise ShardFailedError(index, reason)
        active.discard(index)
        # barriers may now be resolvable without the lost shard
        self._complete_rounds(rounds, running, active)
        reports[index] = ShardReport(
            shard_index=index,
            n_shards=self.n_shards,
            mode=self.shard_by,
            sessions=0,
            n_servers=0,
            wall_time_s=0.0,
            retries=state.attempt,
            peak_rss_bytes=0,
            worker_pid=state.proc.pid or 0,
            succeeded=False,
            error=reason,
        )

    @staticmethod
    def _kill(state: _Running) -> None:
        try:
            state.conn.close()
        except OSError:
            pass
        if state.proc.is_alive():
            state.proc.terminate()
            state.proc.join(5.0)
            if state.proc.is_alive():
                state.proc.kill()
                state.proc.join(5.0)
