"""Deterministic shard assignment for parallel simulation.

A shard is one slice of the session plan that a worker process executes on
its own event loop.  Assignment must be a pure function of stable
identifiers — never of worker count, arrival order, or process identity —
so that the merged telemetry is reproducible and (in ``server`` mode)
byte-identical to the serial run.

Two partitioning modes:

* ``server`` (default, *exact*): a session belongs to the shard that owns
  its assigned CDN server, and servers are distributed over shards by a
  stable hash of the server id.  Sessions interact with each other **only**
  through the server they were mapped to (its cache, its RNG stream, its
  load estimate) — the actor, path, TCP, download-stack and rendering noise
  are all derived from per-session :func:`repro.workload.randomness.spawn`
  substreams.  Keeping each server's full request stream inside one shard
  therefore preserves every cross-session interaction of the serial run,
  and the merged dataset equals the serial dataset record-for-record.
* ``session`` (*approximate*): sessions are distributed by a stable hash of
  the session id and every shard replicates the full server fleet.  A
  server's request stream is split across shards, so each replica sees
  ``~1/K`` of the traffic: per-shard caches are a fidelity approximation
  fleet-wide (miss ratios rise with K).  Useful as a throughput-oriented
  mode when per-record equality is not required.

Both modes reuse :func:`repro.workload.randomness.stable_hash64`, the same
primitive the traffic-engineering mapping uses, so shard membership is
stable across processes, platforms and Python hash randomization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..workload.randomness import stable_hash64

__all__ = ["SHARD_MODES", "ShardSpec", "shard_of_server", "shard_of_session"]

SHARD_MODES = ("server", "session")


def shard_of_server(server_id: str, n_shards: int) -> int:
    """Shard index owning *server_id* (``server`` mode)."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return stable_hash64(f"shard|srv|{server_id}") % n_shards


def shard_of_session(session_id: str, n_shards: int) -> int:
    """Shard index owning *session_id* (``session`` mode)."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return stable_hash64(f"shard|sess|{session_id}") % n_shards


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: which slice of the world it simulates.

    ``index`` is this shard's position in ``[0, n_shards)``; ``mode`` is one
    of :data:`SHARD_MODES`.  The spec is pickled into the worker process and
    consulted by :class:`~repro.simulation.driver.Simulator` when building
    servers and filtering session plans.
    """

    index: int
    n_shards: int
    mode: str = "server"

    def __post_init__(self) -> None:
        if self.mode not in SHARD_MODES:
            raise ValueError(f"unknown shard mode {self.mode!r}; choose from {SHARD_MODES}")
        if self.n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if not 0 <= self.index < self.n_shards:
            raise ValueError(f"shard index {self.index} out of range [0, {self.n_shards})")

    def owns_server(self, server_id: str) -> bool:
        """Should this shard instantiate (and warm) *server_id*?

        In ``session`` mode every shard replicates the full fleet; in
        ``server`` mode the fleet is partitioned by stable hash.
        """
        if self.mode == "session":
            return True
        return shard_of_server(server_id, self.n_shards) == self.index

    def owns_session(self, session_id: str, server_id: str) -> bool:
        """Should this shard simulate the session mapped to *server_id*?"""
        if self.mode == "session":
            return shard_of_session(session_id, self.n_shards) == self.index
        return self.owns_server(server_id)


def partition_server_ids(server_ids: Sequence[str], n_shards: int) -> List[List[str]]:
    """Server ids grouped by owning shard (diagnostics / balance checks)."""
    groups: List[List[str]] = [[] for _ in range(n_shards)]
    for server_id in server_ids:
        groups[shard_of_server(server_id, n_shards)].append(server_id)
    return groups
