"""Discrete-event simulation of the full video delivery path."""

from .config import SimulationConfig
from .controlled import ControlledRenderingResult, run_controlled_rendering_experiment
from .driver import SimulationResult, Simulator, World, build_world, simulate
from .engine import EventLoop
from .parallel import (
    ParallelSimulator,
    PeriodSpec,
    ShardFailedError,
    ShardReport,
    execute_periods,
)
from .scenarios import SCENARIOS, ScenarioOutcome, run_scenario
from .session import SessionActor
from .shard import ShardSpec, shard_of_server, shard_of_session

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "World",
    "build_world",
    "simulate",
    "EventLoop",
    "SessionActor",
    "ParallelSimulator",
    "PeriodSpec",
    "ShardFailedError",
    "ShardReport",
    "execute_periods",
    "ShardSpec",
    "shard_of_server",
    "shard_of_session",
    "ControlledRenderingResult",
    "run_controlled_rendering_experiment",
    "SCENARIOS",
    "ScenarioOutcome",
    "run_scenario",
]
