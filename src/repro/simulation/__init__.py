"""Discrete-event simulation of the full video delivery path."""

from .config import SimulationConfig
from .controlled import ControlledRenderingResult, run_controlled_rendering_experiment
from .driver import SimulationResult, Simulator, simulate
from .engine import EventLoop
from .scenarios import SCENARIOS, ScenarioOutcome, run_scenario
from .session import SessionActor

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "simulate",
    "EventLoop",
    "SessionActor",
    "ControlledRenderingResult",
    "run_controlled_rendering_experiment",
    "SCENARIOS",
    "ScenarioOutcome",
    "run_scenario",
]
