"""Top-level simulation driver: config → telemetry dataset.

Builds the world (catalog, client population, CDN deployment, servers),
generates session plans, and runs them through the event loop.  The output
is a :class:`~repro.telemetry.dataset.Dataset` — the same shape the paper's
joined production beacons/logs would have — which the analysis pipeline in
:mod:`repro.core` consumes without any knowledge of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cdn.mapping import TrafficEngineering
from ..cdn.pop import Deployment, build_default_deployment
from ..cdn.server import CdnServer
from ..client.abr import make_abr
from ..telemetry.collector import TelemetryCollector
from ..telemetry.dataset import Dataset
from ..workload.catalog import Catalog, generate_catalog
from ..workload.clients import ClientPopulation, generate_population
from ..workload.sessions import SessionGenerator, SessionPlan
from .config import SimulationConfig
from .engine import EventLoop
from .session import SessionActor

__all__ = ["SimulationResult", "Simulator", "simulate"]


@dataclass
class SimulationResult:
    """A finished run: the telemetry plus world objects for inspection."""

    dataset: Dataset
    catalog: Catalog
    population: ClientPopulation
    deployment: Deployment
    servers: Dict[str, CdnServer]
    config: SimulationConfig

    @property
    def fleet_miss_ratio(self) -> float:
        """Requests that missed both cache levels, fleet-wide."""
        total = sum(s.requests_served for s in self.servers.values())
        if total == 0:
            return 0.0
        misses = sum(
            s.status_counts[status]
            for s in self.servers.values()
            for status in s.status_counts
            if status.value == "miss"
        )
        return misses / total


class Simulator:
    """Reusable simulator: build the world once, run one or more periods."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()
        config = self.config
        self.catalog = generate_catalog(
            n_videos=config.n_videos,
            seed=config.seed,
            zipf_alpha=config.zipf_alpha,
            bitrates_kbps=config.bitrate_ladder_kbps,
        )
        population_config = config.population
        if population_config.seed != config.seed:
            population_config = type(population_config)(
                **{**population_config.__dict__, "seed": config.seed}
            )
        self.population = generate_population(population_config)
        self.deployment = build_default_deployment(total_servers=config.n_servers)
        self.mapping = TrafficEngineering(
            deployment=self.deployment, strategy=config.mapping_strategy
        )
        self.mapping.configure_catalog(config.n_videos)
        self.servers: Dict[str, CdnServer] = {}
        for pop in self.deployment.pops:
            for server_id in pop.server_ids:
                self.servers[server_id] = CdnServer(
                    server_id=server_id,
                    backend_rtt_ms=pop.backend_rtt_ms,
                    config=config.server,
                    seed=config.seed,
                )
        self._warmed = False
        self._clock_ms = 0.0
        if config.warm_first_chunks:
            self._warm_first_chunks()

    def _warm_first_chunks(self) -> None:
        """§4.1-2 extension: cache chunk 0 of every title at startup bitrates.

        Warms each title's *home server* in every PoP (the cache-focused
        target) at the bitrates sessions actually start with: the lowest
        rung (buffer-based ABRs) and the rate-based ABR's mid-ladder
        startup rung.
        """
        ladder = self.config.bitrate_ladder_kbps
        warm_bitrates = sorted({ladder[0], ladder[min(4, len(ladder) - 1)]})
        for pop in self.deployment.pops:
            for video in self.catalog.videos:
                decision = self.mapping.assign(
                    pop.location, video.video_id, video.rank, session_id="warmup"
                )
                if decision.pop.pop_id != pop.pop_id:
                    continue
                server = self.servers[decision.server_id]
                for bitrate in warm_bitrates:
                    server.prefetch(
                        (video.video_id, 0, int(bitrate)), video.chunk_bytes(0, bitrate)
                    )

    def run(self, n_sessions: Optional[int] = None, start_ms: float = 0.0) -> SimulationResult:
        """Simulate *n_sessions* sessions; returns telemetry and world state.

        If the config requests warmup sessions, they run once (before the
        first measured period) with telemetry discarded, bringing caches to
        steady state.  Running :meth:`run` again continues from the same
        cache state (useful for multi-day recurrence studies).
        """
        config = self.config
        n_sessions = n_sessions if n_sessions is not None else config.n_sessions
        if config.warmup_sessions > 0 and not self._warmed:
            discard = TelemetryCollector(record_ground_truth=False)
            self._clock_ms = self._run_period(
                n_sessions=config.warmup_sessions,
                seed=config.seed + 99_991,  # disjoint session stream
                collector=discard,
                start_ms=self._clock_ms,
            )
            self._warmed = True
        collector = TelemetryCollector(record_ground_truth=config.record_ground_truth)
        self._clock_ms = self._run_period(
            n_sessions=n_sessions,
            seed=config.seed,
            collector=collector,
            start_ms=max(start_ms, self._clock_ms),
        )
        return SimulationResult(
            dataset=collector.dataset(),
            catalog=self.catalog,
            population=self.population,
            deployment=self.deployment,
            servers=self.servers,
            config=config,
        )

    def run_days(
        self,
        n_days: int,
        sessions_per_day: Optional[int] = None,
        day_length_ms: float = 86_400_000.0,
    ) -> SimulationResult:
        """Simulate *n_days* consecutive collection days on one cache state.

        Sessions of day *k* start at ``k * day_length_ms``, so downstream
        recurrence analyses (§4.2-1 repeats the tail-prefix extraction "for
        every day in our dataset") can split the merged dataset on real
        day boundaries.  Arrival pacing within a day is unchanged; the
        remainder of the day is idle (caches persist, as in production).
        """
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        config = self.config
        sessions_per_day = (
            sessions_per_day if sessions_per_day is not None else config.n_sessions
        )
        if config.warmup_sessions > 0 and not self._warmed:
            discard = TelemetryCollector(record_ground_truth=False)
            self._run_period(
                n_sessions=config.warmup_sessions,
                seed=config.seed + 99_991,
                collector=discard,
                start_ms=self._clock_ms,
            )
            self._warmed = True
        collector = TelemetryCollector(record_ground_truth=config.record_ground_truth)
        for day in range(n_days):
            day_start = max(self._clock_ms, day * day_length_ms)
            self._clock_ms = self._run_period(
                n_sessions=sessions_per_day,
                seed=config.seed + day,  # a fresh session stream per day
                collector=collector,
                start_ms=day_start,
            )
        return SimulationResult(
            dataset=collector.dataset(),
            catalog=self.catalog,
            population=self.population,
            deployment=self.deployment,
            servers=self.servers,
            config=config,
        )

    def _run_period(
        self,
        n_sessions: int,
        seed: int,
        collector: TelemetryCollector,
        start_ms: float,
    ) -> float:
        """Run one collection period into *collector*; returns the end time."""
        config = self.config
        generator = SessionGenerator(
            catalog=self.catalog,
            population=self.population,
            seed=seed,
            arrival_rate_per_s=config.arrival_rate_per_s,
        )
        loop = EventLoop()

        def start_session(plan: SessionPlan):
            def on_start(now_ms: float) -> None:
                decision = self.mapping.assign(
                    plan.client.prefix.geo,
                    plan.video.video_id,
                    plan.video.rank,
                    plan.session_id,
                )
                actor = SessionActor(
                    plan=plan,
                    mapping=decision,
                    server=self.servers[decision.server_id],
                    abr=make_abr(
                        config.abr_name,
                        plan.video.bitrates_kbps,
                        **(
                            {"screen_outliers": True}
                            if config.abr_screen_outliers and config.abr_name != "buffer"
                            else {}
                        ),
                    ),
                    collector=collector,
                    config=config,
                )
                first_request_at = now_ms + actor.manifest_time_ms(now_ms)
                loop.schedule(first_request_at, make_chunk_event(actor))

            return on_start

        def make_chunk_event(actor: SessionActor):
            def on_chunk(now_ms: float) -> None:
                next_at = actor.process_chunk(now_ms)
                if next_at is not None:
                    loop.schedule(next_at, make_chunk_event(actor))

            return on_chunk

        for plan in generator.generate(n_sessions, start_ms=start_ms):
            loop.schedule(plan.start_ms, start_session(plan))
        return loop.run()


def simulate(config: Optional[SimulationConfig] = None) -> SimulationResult:
    """One-shot convenience: build the world and run one collection period."""
    return Simulator(config).run()
