"""Top-level simulation driver: config → telemetry dataset.

Builds the world (catalog, client population, CDN deployment, servers),
generates session plans, and runs them through the event loop.  The output
is a :class:`~repro.telemetry.dataset.Dataset` — the same shape the paper's
joined production beacons/logs would have — which the analysis pipeline in
:mod:`repro.core` consumes without any knowledge of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..cdn.mapping import TrafficEngineering
from ..cdn.pop import Deployment, build_default_deployment
from ..cdn.server import CdnServer
from ..faults.injector import FaultInjector
from ..obs import publish_last_run
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceRecorder
from ..telemetry.collector import TelemetryCollector
from ..telemetry.dataset import Dataset
from ..workload.catalog import Catalog, generate_catalog
from ..workload.clients import ClientPopulation, generate_population
from ..workload.sessions import SessionGenerator, SessionPlan
from .config import SimulationConfig
from .._execution import resolve_engine
from .shard import ShardSpec

if TYPE_CHECKING:  # avoid a runtime cycle: parallel.py imports this module
    from .parallel import ShardReport

__all__ = ["World", "build_world", "SimulationResult", "Simulator", "simulate"]


@dataclass
class World:
    """The shared simulation world: everything sessions read but never write.

    Building the world is deterministic in the config seed, so shard
    workers can either rebuild it locally (spawn start method) or inherit
    it from the parent (fork) — both produce identical objects.  Servers
    are *not* part of the world: they are the only mutable cross-session
    state and are owned by exactly one executor (the serial simulator, or
    one shard).
    """

    catalog: Catalog
    population: ClientPopulation
    deployment: Deployment


def build_world(config: SimulationConfig) -> World:
    """Construct the catalog, client population and CDN deployment."""
    catalog = generate_catalog(
        n_videos=config.n_videos,
        seed=config.seed,
        zipf_alpha=config.zipf_alpha,
        bitrates_kbps=config.bitrate_ladder_kbps,
    )
    population_config = config.population
    if population_config.seed != config.seed:
        population_config = type(population_config)(
            **{**population_config.__dict__, "seed": config.seed}
        )
    population = generate_population(population_config)
    deployment = build_default_deployment(total_servers=config.n_servers)
    return World(catalog=catalog, population=population, deployment=deployment)


@dataclass
class SimulationResult:
    """A finished run: the telemetry plus world objects for inspection."""

    dataset: Dataset
    catalog: Catalog
    population: ClientPopulation
    deployment: Deployment
    servers: Dict[str, CdnServer]
    config: SimulationConfig
    #: per-shard execution telemetry; empty for serial runs
    shard_reports: List["ShardReport"] = field(default_factory=list)
    #: observability registry of the run (merged across shards when
    #: sharded); see docs/OBSERVABILITY.md for the metrics contract
    metrics: Optional[MetricsRegistry] = None
    #: per-chunk causal trace recorder (merged across shards when sharded);
    #: None unless ``config.trace_sample > 0`` (docs/OBSERVABILITY.md)
    trace: Optional[TraceRecorder] = None

    @property
    def fleet_miss_ratio(self) -> float:
        """Requests that missed both cache levels, fleet-wide."""
        total = sum(s.requests_served for s in self.servers.values())
        if total == 0:
            return 0.0
        misses = sum(
            s.status_counts[status]
            for s in self.servers.values()
            for status in s.status_counts
            if status.value == "miss"
        )
        return misses / total


class Simulator:
    """Reusable simulator: build the world once, run one or more periods."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        shard: Optional[ShardSpec] = None,
        world: Optional[World] = None,
        clock_sync: Optional[Callable[[float], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        """Build the world and the server fleet.

        ``shard`` restricts this simulator to one deterministic slice of the
        workload (see :mod:`repro.simulation.shard`): only the shard's
        servers are instantiated/warmed and only its sessions are run.
        ``world`` injects a prebuilt world (identical to what
        :func:`build_world` would produce) so fork-based workers skip the
        rebuild.  ``clock_sync`` is the shard-barrier hook: called with the
        local clock at period boundaries, it must return the fleet-wide
        clock (the max across shards), so that a shard's next period starts
        exactly when the serial run's would.  Serial runs leave it None.
        """
        self.config = config or SimulationConfig()
        config = self.config
        self.shard = shard
        self._clock_sync = clock_sync
        #: observability registry: one per run (or one per shard worker,
        #: merged deterministically by the parallel runner)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: causal-trace recorder; sampling is keyed by session-id hash so
        #: the traced set is identical on every shard layout
        if trace is not None:
            self.trace: Optional[TraceRecorder] = trace
        else:
            self.trace = (
                TraceRecorder(config.trace_sample) if config.trace_sample > 0 else None
            )
        # Fault injection: every shard rebuilds the same injector from the
        # (pickled) config, and every injector query is a pure function of
        # stable ids + sim time, so faults preserve the determinism
        # contract for any worker count (docs/FAULTS.md).
        self.faults = FaultInjector(config.faults) if config.faults else None
        world = world if world is not None else build_world(config)
        self.catalog = world.catalog
        self.population = world.population
        self.deployment = world.deployment
        self.mapping = TrafficEngineering(
            deployment=self.deployment, strategy=config.mapping_strategy
        )
        self.mapping.configure_catalog(config.n_videos)
        self.servers: Dict[str, CdnServer] = {}
        for pop in self.deployment.pops:
            for server_id in pop.server_ids:
                if shard is not None and not shard.owns_server(server_id):
                    continue
                self.servers[server_id] = CdnServer(
                    server_id=server_id,
                    backend_rtt_ms=pop.backend_rtt_ms,
                    config=config.server,
                    seed=config.seed,
                    metrics=self.metrics,
                    faults=self.faults,
                )
        self._warmed = False
        self._clock_ms = 0.0
        if config.warm_first_chunks:
            self._warm_first_chunks()

    def _spill_dir(self, subdir: Optional[str] = None) -> Optional[Path]:
        """This executor's spill directory (None = in-memory telemetry).

        Shard workers spill into a per-shard subdirectory; the parent's
        lazy merge iterates them in shard order (docs/TELEMETRY.md).
        ``subdir`` nests one level deeper — the multi-period runner routes
        each period to its own ``period-<name>/`` so consecutive periods
        never collide on one sealed spill.
        """
        if self.config.spill_dir is None:
            return None
        base = Path(self.config.spill_dir)
        if self.shard is not None:
            base = base / f"shard-{self.shard.index:02d}"
        if subdir is not None:
            base = base / subdir
        return base

    def _measured_collector(
        self, spill_subdir: Optional[str] = None
    ) -> TelemetryCollector:
        """The measured period's collector, honouring the memory mode."""
        return TelemetryCollector(
            record_ground_truth=self.config.record_ground_truth,
            spill_dir=self._spill_dir(spill_subdir),
            spill_threshold_rows=self.config.spill_threshold_rows,
            metrics=self.metrics,
        )

    def _warm_first_chunks(self) -> None:
        """§4.1-2 extension: cache chunk 0 of every title at startup bitrates.

        Warms each title's *home server* in every PoP (the cache-focused
        target) at the bitrates sessions actually start with: the lowest
        rung (buffer-based ABRs) and the rate-based ABR's mid-ladder
        startup rung.
        """
        ladder = self.config.bitrate_ladder_kbps
        warm_bitrates = sorted({ladder[0], ladder[min(4, len(ladder) - 1)]})
        for pop in self.deployment.pops:
            for video in self.catalog.videos:
                decision = self.mapping.assign(
                    pop.location, video.video_id, video.rank, session_id="warmup"
                )
                if decision.pop.pop_id != pop.pop_id:
                    continue
                if decision.server_id not in self.servers:  # other shard's server
                    continue
                server = self.servers[decision.server_id]
                for bitrate in warm_bitrates:
                    server.prefetch(
                        (video.video_id, 0, int(bitrate)), video.chunk_bytes(0, bitrate)
                    )

    def run(
        self,
        n_sessions: Optional[int] = None,
        start_ms: float = 0.0,
        spill_subdir: Optional[str] = None,
    ) -> SimulationResult:
        """Simulate *n_sessions* sessions; returns telemetry and world state.

        If the config requests warmup sessions, they run once (before the
        first measured period) with telemetry discarded, bringing caches to
        steady state.  Running :meth:`run` again continues from the same
        cache state (useful for multi-day recurrence studies).
        ``spill_subdir`` nests this period's spill below the configured
        directory (the multi-period runner's ``period-<name>/`` layout).
        """
        config = self.config
        n_sessions = n_sessions if n_sessions is not None else config.n_sessions
        # Barrier 1: a sharded run may carry clock skew from a previous
        # period; align on the fleet-wide clock before warming up.
        self._sync_clock()
        if config.warmup_sessions > 0 and not self._warmed:
            # warmup telemetry was always discarded after the period; the
            # discarding collector drops it on arrival so warmup RAM stays
            # flat at any scale (docs/TELEMETRY.md)
            discard = TelemetryCollector(record_ground_truth=False, discard=True)
            with self.metrics.span("driver.warmup"):
                self._clock_ms = self._run_period(
                    n_sessions=config.warmup_sessions,
                    seed=config.seed + 99_991,  # disjoint session stream
                    collector=discard,
                    start_ms=self._clock_ms,
                    trace=None,  # warmup is never traced
                )
            self._warmed = True
        # Barrier 2: the measured period starts when the *fleet's* warmup
        # ends (the serial run's loop end), not when this shard's does.
        self._sync_clock()
        collector = self._measured_collector(spill_subdir)
        with self.metrics.span("driver.period"):
            self._clock_ms = self._run_period(
                n_sessions=n_sessions,
                seed=config.seed,
                collector=collector,
                start_ms=max(start_ms, self._clock_ms),
                trace=self.trace,
            )
        result = SimulationResult(
            dataset=collector.dataset(),
            catalog=self.catalog,
            population=self.population,
            deployment=self.deployment,
            servers=self.servers,
            config=config,
            metrics=self.metrics,
            trace=self.trace,
        )
        publish_last_run(self.metrics)
        return result

    def run_round(
        self,
        round_index: int,
        n_sessions: Optional[int] = None,
        spill_subdir: Optional[str] = None,
    ) -> SimulationResult:
        """One incremental arrival round on the checkpointed clock.

        The service mode (:mod:`repro.serve`) feeds sessions continuously:
        each round simulates *n_sessions* fresh arrivals starting exactly
        where the previous round's event loop drained, on the same cache
        state, through the same engine registry as a batch run.  Round *k*
        uses seed ``config.seed + k`` (the :meth:`run_days` convention), so
        session-id streams are disjoint across rounds and round 0
        reproduces :meth:`run`'s measured period exactly.  Warmup runs once
        before the first round, telemetry discarded as usual.

        Returns only this round's telemetry; the metrics registry and the
        trace recorder keep accumulating across rounds.
        """
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        config = self.config
        n_sessions = n_sessions if n_sessions is not None else config.n_sessions
        self._sync_clock()
        if config.warmup_sessions > 0 and not self._warmed:
            discard = TelemetryCollector(record_ground_truth=False, discard=True)
            with self.metrics.span("driver.warmup"):
                self._clock_ms = self._run_period(
                    n_sessions=config.warmup_sessions,
                    seed=config.seed + 99_991,
                    collector=discard,
                    start_ms=self._clock_ms,
                    trace=None,  # warmup is never traced
                )
            self._warmed = True
        self._sync_clock()
        collector = self._measured_collector(spill_subdir)
        with self.metrics.span("driver.period"):
            self._clock_ms = self._run_period(
                n_sessions=n_sessions,
                seed=config.seed + round_index,
                collector=collector,
                start_ms=self._clock_ms,
                trace=self.trace,
            )
        result = SimulationResult(
            dataset=collector.dataset(),
            catalog=self.catalog,
            population=self.population,
            deployment=self.deployment,
            servers=self.servers,
            config=config,
            metrics=self.metrics,
            trace=self.trace,
        )
        publish_last_run(self.metrics)
        return result

    @property
    def clock_ms(self) -> float:
        """The checkpointed simulation clock (end of the last period)."""
        return self._clock_ms

    def run_days(
        self,
        n_days: int,
        sessions_per_day: Optional[int] = None,
        day_length_ms: float = 86_400_000.0,
    ) -> SimulationResult:
        """Simulate *n_days* consecutive collection days on one cache state.

        Sessions of day *k* start at ``k * day_length_ms``, so downstream
        recurrence analyses (§4.2-1 repeats the tail-prefix extraction "for
        every day in our dataset") can split the merged dataset on real
        day boundaries.  Arrival pacing within a day is unchanged; the
        remainder of the day is idle (caches persist, as in production).
        """
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        config = self.config
        sessions_per_day = (
            sessions_per_day if sessions_per_day is not None else config.n_sessions
        )
        if config.warmup_sessions > 0 and not self._warmed:
            discard = TelemetryCollector(record_ground_truth=False, discard=True)
            with self.metrics.span("driver.warmup"):
                self._run_period(
                    n_sessions=config.warmup_sessions,
                    seed=config.seed + 99_991,
                    collector=discard,
                    start_ms=self._clock_ms,
                    trace=None,  # warmup is never traced
                )
            self._warmed = True
        collector = self._measured_collector()
        for day in range(n_days):
            day_start = max(self._clock_ms, day * day_length_ms)
            with self.metrics.span("driver.period"):
                self._clock_ms = self._run_period(
                    n_sessions=sessions_per_day,
                    seed=config.seed + day,  # a fresh session stream per day
                    collector=collector,
                    start_ms=day_start,
                    trace=self.trace,
                )
        result = SimulationResult(
            dataset=collector.dataset(),
            catalog=self.catalog,
            population=self.population,
            deployment=self.deployment,
            servers=self.servers,
            config=config,
            metrics=self.metrics,
            trace=self.trace,
        )
        publish_last_run(self.metrics)
        return result

    def _sync_clock(self) -> None:
        """Align the local clock with the fleet (no-op for serial runs)."""
        if self._clock_sync is not None:
            self._clock_ms = self._clock_sync(self._clock_ms)

    def _session_generator(self, seed: int) -> SessionGenerator:
        """The period's session-plan generator (shared by every engine)."""
        config = self.config
        return SessionGenerator(
            catalog=self.catalog,
            population=self.population,
            seed=seed,
            arrival_rate_per_s=config.arrival_rate_per_s,
            watch_median_chunks=config.watch_median_chunks,
            watch_sigma_chunks=config.watch_sigma_chunks,
        )

    def _run_period(
        self,
        n_sessions: int,
        seed: int,
        collector: TelemetryCollector,
        start_ms: float,
        trace: Optional[TraceRecorder] = None,
    ) -> float:
        """Run one collection period into *collector*; returns the end time.

        Dispatches through the engine registry (:mod:`repro.engine`):
        ``config.engine`` resolves per period ("auto" picks by session
        count) and every engine produces byte-identical telemetry, so the
        choice is pure execution strategy.
        """
        from ..engine import get_engine  # local import: engine imports session

        runner = get_engine(resolve_engine(self.config.engine, n_sessions))
        return runner(
            self,
            n_sessions=n_sessions,
            seed=seed,
            collector=collector,
            start_ms=start_ms,
            trace=trace,
        )

    def _owns_plan(self, plan: SessionPlan) -> bool:
        """Does this shard simulate *plan*?

        Every shard regenerates the full session stream (so RNG consumption
        is independent of the shard count) and keeps only its own slice.
        In ``server`` mode ownership follows the traffic-engineering
        assignment, which is a pure function of stable ids — calling it
        here and again at session start returns the same decision.
        """
        shard = self.shard
        if shard.mode == "session":
            return shard.owns_session(plan.session_id, server_id="")
        decision = self.mapping.assign(
            plan.client.prefix.geo, plan.video.video_id, plan.video.rank, plan.session_id
        )
        return decision.server_id in self.servers


def simulate(config: Optional[SimulationConfig] = None) -> SimulationResult:
    """One-shot convenience: build the world and run one collection period.

    With ``config.workers > 1`` the run is sharded across worker processes
    by :class:`~repro.simulation.parallel.ParallelSimulator`; the default
    serial path is byte-for-byte what it always was.
    """
    config = config or SimulationConfig()
    if config.workers > 1:
        from .parallel import ParallelSimulator  # local import: avoids a cycle

        return ParallelSimulator(config).run()
    return Simulator(config).run()
