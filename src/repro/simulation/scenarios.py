"""Incident scenarios: canned what-if studies on the simulated platform.

Each scenario runs a *baseline* period and an *incident* period on one
:class:`~repro.simulation.driver.Simulator` (cache state carries over, as
in production) and returns both datasets so
:func:`repro.core.comparison.compare_datasets` can quantify the damage.

Scenarios:

* ``flash-crowd``   — a traffic spike onto a narrow slice of hot titles
  (e.g. breaking news): arrival rate multiplies, catalog interest narrows.
* ``cache-flush``   — the fleet's caches restart cold (deploy/restart):
  every chunk pays the miss path until re-warmed.
* ``backend-brownout`` — the origin slows down (e.g. storage degradation):
  misses get much more expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cdn.cache import TwoLevelCache
from ..telemetry.dataset import Dataset
from .config import SimulationConfig
from .driver import SimulationResult, Simulator

__all__ = ["ScenarioOutcome", "SCENARIOS", "run_scenario"]


@dataclass
class ScenarioOutcome:
    """Baseline and incident telemetry from one scenario run."""

    name: str
    baseline: Dataset
    incident: Dataset
    simulator: Simulator


def _default_config(seed: int) -> SimulationConfig:
    return SimulationConfig(n_sessions=800, warmup_sessions=1600, seed=seed)


def _run_flash_crowd(seed: int) -> ScenarioOutcome:
    """Arrivals triple and concentrate on a 10-title hot set."""
    simulator = Simulator(_default_config(seed))
    baseline = simulator.run().dataset
    # incident: same fleet/caches, hotter and narrower demand
    crowd_config = simulator.config.with_overrides(
        arrival_rate_per_s=simulator.config.arrival_rate_per_s * 3.0,
        zipf_alpha=1.6,  # interest collapses onto the head
        n_videos=10,
        warmup_sessions=0,
        seed=seed + 1,
    )
    crowd = Simulator(crowd_config)
    crowd.servers = simulator.servers  # keep the warmed fleet
    crowd.deployment = simulator.deployment
    incident = crowd.run().dataset
    return ScenarioOutcome("flash-crowd", baseline, incident, simulator)


def _run_cache_flush(seed: int) -> ScenarioOutcome:
    """All caches restart cold between the two periods."""
    simulator = Simulator(_default_config(seed))
    baseline = simulator.run().dataset
    for server in simulator.servers.values():
        server.cache = TwoLevelCache(
            server.config.ram_capacity_bytes,
            server.config.disk_capacity_bytes,
            server.config.policy_name,
        )
    incident = simulator.run().dataset
    return ScenarioOutcome("cache-flush", baseline, incident, simulator)


def _run_backend_brownout(seed: int, slowdown: float = 8.0) -> ScenarioOutcome:
    """The origin's service time multiplies (storage degradation)."""
    simulator = Simulator(_default_config(seed))
    baseline = simulator.run().dataset
    for server in simulator.servers.values():
        server.backend.service_mean_ms *= slowdown
    incident = simulator.run().dataset
    return ScenarioOutcome("backend-brownout", baseline, incident, simulator)


SCENARIOS: Dict[str, Callable[[int], ScenarioOutcome]] = {
    "flash-crowd": _run_flash_crowd,
    "cache-flush": _run_cache_flush,
    "backend-brownout": _run_backend_brownout,
}


def run_scenario(name: str, seed: int = 29) -> ScenarioOutcome:
    """Run a named scenario; returns baseline + incident telemetry."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return runner(seed)
