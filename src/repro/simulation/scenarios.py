"""Incident scenarios: canned what-if studies on the simulated platform.

Since PR 6 the canned scenarios are *declared*, not hand-built: each is a
:class:`~repro.sweep.spec.ScenarioSpec` in
:data:`repro.sweep.spec.CANNED_SCENARIOS` (the scenario-matrix DSL,
docs/SCENARIOS.md), and this module keeps the historical entry points as
thin wrappers over it:

* :data:`SCENARIOS` still maps each name to a ``builder(seed) ->
  List[PeriodSpec]`` callable (now ``ScenarioSpec.resolve``);
* :func:`run_scenario` still executes a named scenario through the
  unified :func:`repro.api.run` facade and returns a
  :class:`ScenarioOutcome`;
* the period-mutation callables (``_flush_caches``, ``_slow_backend``)
  still live here — DSL specs reference them by dotted name, so shard
  workers can import them.

Scenarios:

* ``flash-crowd``   — a traffic spike onto a narrow slice of hot titles
  (e.g. breaking news): arrival rate multiplies, catalog interest narrows.
* ``cache-flush``   — the fleet's caches restart cold (deploy/restart):
  every chunk pays the miss path until re-warmed.
* ``backend-brownout`` — the origin slows down (e.g. storage degradation):
  misses get much more expensive.

The imperative ``_periods_*`` builders of PRs 3–5 are deprecated; new
scenarios should be written as :class:`ScenarioSpec` values (JSON or
code) and run via ``repro sweep`` or :func:`repro.sweep.run_cell`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cdn.cache import TwoLevelCache
from ..sweep.spec import CANNED_SCENARIOS, ScenarioSpec
from ..telemetry.dataset import Dataset
from .driver import Simulator
from .parallel import PeriodSpec, ShardReport

__all__ = ["ScenarioOutcome", "SCENARIOS", "run_scenario"]


@dataclass
class ScenarioOutcome:
    """Baseline and incident telemetry from one scenario run."""

    name: str
    baseline: Dataset
    incident: Dataset
    #: the serial simulator (end-of-run fleet state); None for sharded runs
    simulator: Optional[Simulator]
    #: per-shard execution telemetry; empty for serial runs
    shard_reports: List[ShardReport] = field(default_factory=list)


# -- period mutations (referenced by name so shard workers can import them) --


def _flush_caches(simulator: Simulator) -> None:
    """All caches restart cold (deploy/restart)."""
    for server in simulator.servers.values():
        server.cache = TwoLevelCache(
            server.config.ram_capacity_bytes,
            server.config.disk_capacity_bytes,
            server.config.policy_name,
        )


def _slow_backend(simulator: Simulator, slowdown: float) -> None:
    """The origin's service time multiplies (storage degradation)."""
    for server in simulator.servers.values():
        server.backend.service_mean_ms *= slowdown


# -- the registry: DSL specs behind the historical builder signature ---------


def _builder(spec: ScenarioSpec) -> Callable[[int], List[PeriodSpec]]:
    def build(seed: int) -> List[PeriodSpec]:
        return spec.resolve(seed=seed)

    build.__doc__ = spec.description
    return build


SCENARIOS: Dict[str, Callable[[int], List[PeriodSpec]]] = {
    name: _builder(spec) for name, spec in CANNED_SCENARIOS.items()
}


def _deprecated_builder(name: str, **resolve_kwargs):
    warnings.warn(
        f"the imperative _periods_* builders are deprecated; use "
        f"repro.sweep.CANNED_SCENARIOS[{name!r}].resolve(...) or the "
        "scenario DSL (docs/SCENARIOS.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    return CANNED_SCENARIOS[name].resolve(**resolve_kwargs)


def _periods_flash_crowd(seed: int) -> List[PeriodSpec]:
    """Deprecated: the flash-crowd ScenarioSpec replaces this builder."""
    return _deprecated_builder("flash-crowd", seed=seed)


def _periods_cache_flush(seed: int) -> List[PeriodSpec]:
    """Deprecated: the cache-flush ScenarioSpec replaces this builder."""
    return _deprecated_builder("cache-flush", seed=seed)


def _periods_backend_brownout(seed: int, slowdown: float = 8.0) -> List[PeriodSpec]:
    """Deprecated: the backend-brownout ScenarioSpec replaces this builder."""
    from dataclasses import replace as _replace

    from ..sweep.spec import PeriodDef

    spec = CANNED_SCENARIOS["backend-brownout"]
    if slowdown != 8.0:
        periods = tuple(
            PeriodDef(
                label=period.label,
                overrides=period.overrides,
                mutation=period.mutation,
                mutation_args=(slowdown,) if period.mutation else (),
            )
            for period in spec.periods
        )
        spec = _replace(spec, periods=periods)
    warnings.warn(
        "the imperative _periods_* builders are deprecated; use "
        "repro.sweep.CANNED_SCENARIOS['backend-brownout'].resolve(...) or "
        "the scenario DSL (docs/SCENARIOS.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return spec.resolve(seed=seed)


def run_scenario(
    name: str,
    seed: int = 29,
    workers: int = 1,
    shard_timeout_s: Optional[float] = None,
) -> ScenarioOutcome:
    """Run a named scenario; returns baseline + incident telemetry.

    ``workers > 1`` executes both periods sharded across worker processes
    (each worker carries its slice of the fleet through baseline and
    incident); the datasets are canonically ordered and, under the default
    ``server`` sharding, identical to the serial run's records.

    This is a thin wrapper over the scenario DSL plus the unified
    :func:`repro.api.run` facade — the named
    :class:`~repro.sweep.spec.ScenarioSpec` resolves to the period list,
    ``run(periods=...)`` executes it.
    """
    from ..api import run

    try:
        spec = CANNED_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(CANNED_SCENARIOS)}"
        ) from None
    periods = spec.resolve(seed=seed, workers=workers, shard_timeout_s=shard_timeout_s)
    result = run(periods=periods)
    return ScenarioOutcome(
        name,
        result.period("baseline"),
        result.period("incident"),
        simulator=result.simulator,
        shard_reports=result.shard_reports,
    )
