"""Incident scenarios: canned what-if studies on the simulated platform.

Each scenario is declared as two :class:`~repro.simulation.parallel.PeriodSpec`
periods — a *baseline* and an *incident* — executed back to back on one
fleet (cache state carries over, as in production) and returns both
datasets so :func:`repro.core.comparison.compare_datasets` can quantify the
damage.  The same period list drives both execution paths: the classic
serial run, and — with ``workers > 1`` — the sharded parallel runner, which
keeps each CDN server's request stream inside one worker so the telemetry
is identical (see docs/PARALLEL.md).

Scenarios:

* ``flash-crowd``   — a traffic spike onto a narrow slice of hot titles
  (e.g. breaking news): arrival rate multiplies, catalog interest narrows.
* ``cache-flush``   — the fleet's caches restart cold (deploy/restart):
  every chunk pays the miss path until re-warmed.
* ``backend-brownout`` — the origin slows down (e.g. storage degradation):
  misses get much more expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from dataclasses import replace

from ..cdn.cache import TwoLevelCache
from ..telemetry.dataset import Dataset
from .config import SimulationConfig
from .driver import Simulator
from .parallel import PeriodSpec, ShardReport

__all__ = ["ScenarioOutcome", "SCENARIOS", "run_scenario"]


@dataclass
class ScenarioOutcome:
    """Baseline and incident telemetry from one scenario run."""

    name: str
    baseline: Dataset
    incident: Dataset
    #: the serial simulator (end-of-run fleet state); None for sharded runs
    simulator: Optional[Simulator]
    #: per-shard execution telemetry; empty for serial runs
    shard_reports: List[ShardReport] = field(default_factory=list)


def _default_config(seed: int) -> SimulationConfig:
    return SimulationConfig(n_sessions=800, warmup_sessions=1600, seed=seed)


# -- period mutations (referenced by name so shard workers can import them) --


def _flush_caches(simulator: Simulator) -> None:
    """All caches restart cold (deploy/restart)."""
    for server in simulator.servers.values():
        server.cache = TwoLevelCache(
            server.config.ram_capacity_bytes,
            server.config.disk_capacity_bytes,
            server.config.policy_name,
        )


def _slow_backend(simulator: Simulator, slowdown: float) -> None:
    """The origin's service time multiplies (storage degradation)."""
    for server in simulator.servers.values():
        server.backend.service_mean_ms *= slowdown


# -- scenario declarations ---------------------------------------------------


def _periods_flash_crowd(seed: int) -> List[PeriodSpec]:
    """Arrivals triple and concentrate on a 10-title hot set."""
    base = _default_config(seed)
    crowd = base.with_overrides(
        arrival_rate_per_s=base.arrival_rate_per_s * 3.0,
        zipf_alpha=1.6,  # interest collapses onto the head
        n_videos=10,
        warmup_sessions=0,
        seed=seed + 1,
    )
    # the incident keeps the warmed fleet (carry_fleet) under hotter demand
    return [
        PeriodSpec(config=base, label="baseline"),
        PeriodSpec(config=crowd, label="incident"),
    ]


def _periods_cache_flush(seed: int) -> List[PeriodSpec]:
    """All caches restart cold between the two periods."""
    base = _default_config(seed)
    return [
        PeriodSpec(config=base, label="baseline"),
        PeriodSpec(
            config=base,
            label="incident",
            mutation="repro.simulation.scenarios:_flush_caches",
        ),
    ]


def _periods_backend_brownout(seed: int, slowdown: float = 8.0) -> List[PeriodSpec]:
    """The origin's service time multiplies (storage degradation)."""
    base = _default_config(seed)
    return [
        PeriodSpec(config=base, label="baseline"),
        PeriodSpec(
            config=base,
            label="incident",
            mutation="repro.simulation.scenarios:_slow_backend",
            mutation_args=(slowdown,),
        ),
    ]


SCENARIOS: Dict[str, Callable[[int], List[PeriodSpec]]] = {
    "flash-crowd": _periods_flash_crowd,
    "cache-flush": _periods_cache_flush,
    "backend-brownout": _periods_backend_brownout,
}


def run_scenario(
    name: str,
    seed: int = 29,
    workers: int = 1,
    shard_timeout_s: Optional[float] = None,
) -> ScenarioOutcome:
    """Run a named scenario; returns baseline + incident telemetry.

    ``workers > 1`` executes both periods sharded across worker processes
    (each worker carries its slice of the fleet through baseline and
    incident); the datasets are canonically ordered and, under the default
    ``server`` sharding, identical to the serial run's records.

    This is a thin wrapper over the unified :func:`repro.api.run` facade —
    the scenario builder produces the period list, ``run(periods=...)``
    executes it.
    """
    from ..api import run

    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    periods = [
        replace(
            period,
            config=period.config.with_overrides(
                workers=workers, shard_timeout_s=shard_timeout_s
            ),
        )
        for period in builder(seed)
    ]
    result = run(periods=periods)
    return ScenarioOutcome(
        name,
        result.period("baseline"),
        result.period("incident"),
        simulator=result.simulator,
        shard_reports=result.shard_reports,
    )
