"""Public import path for the execution-options leaf.

The definitions live in :mod:`repro._execution` (an import leaf at the
package root, so ``repro.obs.manifest`` can use them while the package
graph is still initializing); this shim is the supported import path.
"""

from __future__ import annotations

from .._execution import (
    AUTO_FLEET_MIN_SESSIONS,
    ENGINE_NAMES,
    EXECUTION_FIELD_NAMES,
    ExecutionOptions,
    resolve_engine,
)

__all__ = [
    "AUTO_FLEET_MIN_SESSIONS",
    "ENGINE_NAMES",
    "EXECUTION_FIELD_NAMES",
    "ExecutionOptions",
    "resolve_engine",
]
