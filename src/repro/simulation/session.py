"""The per-session actor: drives one video session through the full path.

Each actor owns the session's player state (ABR, playback buffer, download
stack, renderer), its TCP connection and network path, and the mapping
decision that pinned it to a CDN server.  Processing one chunk executes the
paper's Fig. 2 time diagram end to end:

    GET ──(rtt0/2)──► server: D_wait + D_open + D_read (+ D_BE on miss)
        ──(rtt0/2)──► first byte enters the client download stack (D_DS)
        ──(TCP transfer rounds)──► last byte at the player
        ──► playback buffer append (startup / rebuffering accounting)
        ──► rendering (frame drops)

and emits both sides' telemetry plus ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cdn.mapping import MappingDecision
from ..cdn.server import CdnServer
from ..client.abr import AbrAlgorithm, ChunkObservation
from ..client.buffer import PlaybackBuffer
from ..client.downloadstack import DownloadStackModel
from ..client.rendering import RenderingModel
from ..faults.injector import FaultInjector, merge_labels
from ..net.path import NetworkPath, build_session_path
from ..net.tcp import TcpConnection
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceRecorder
from ..telemetry.collector import TelemetryCollector
from ..telemetry.records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)
from ..workload.randomness import spawn
from ..workload.sessions import SessionPlan
from .config import SimulationConfig

__all__ = ["SessionActor"]


class SessionActor:
    """Simulates one session chunk by chunk."""

    def __init__(
        self,
        plan: SessionPlan,
        mapping: MappingDecision,
        server: CdnServer,
        abr: AbrAlgorithm,
        collector: TelemetryCollector,
        config: SimulationConfig,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultInjector] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.plan = plan
        self.mapping = mapping
        self.server = server
        self.abr = abr
        self.collector = collector
        self.config = config
        self.faults = faults
        # Causal tracing (docs/OBSERVABILITY.md, "Tracing"): the recorder's
        # head-sampling decides per session id; untraced sessions (and runs
        # with tracing off) pay one ``is None`` check per chunk.
        self._trace = trace.session_trace(plan.session_id) if trace is not None else None
        # Observability: chunk-lifecycle metrics (docs/OBSERVABILITY.md).
        self.metrics = metrics
        if metrics is not None:
            metrics.counter("client.sessions_total").inc()
            self._m_chunks = metrics.counter("client.chunks_total")
            self._m_dfb = metrics.histogram("client.dfb_ms")
            self._m_dlb = metrics.histogram("client.dlb_ms")
            self._m_startup = metrics.histogram("client.startup_delay_ms")
            self._m_fault_net = metrics.counter("faults.network_chunks_total")
            self._m_fault_render = metrics.counter("faults.render_chunks_total")
            self._m_fault_labeled = metrics.counter("faults.labeled_chunks_total")
            # One span handle per actor: handles are sequentially reusable,
            # and the per-call name validation is off the chunk hot path.
            self._span_chunk = metrics.span("session.chunk")

        # Keyed by session id so warmup streams (different generator seed)
        # do not replay the measured sessions' noise.
        self.rng = spawn(config.seed, f"actor|{plan.session_id}")
        client = plan.client
        self.path: NetworkPath = build_session_path(
            prefix=client.prefix,
            server_location=mapping.pop.location,
            bandwidth_kbps=client.bandwidth_kbps,
            rng=self.rng,
        )
        # Fault injection: overlay the injector on this session's path when
        # some network epoch can strike it.  The probe is a pure function
        # of sim time (no RNG), so TCP's RTT/bandwidth/loss sampling picks
        # up the epochs without perturbing the un-faulted noise streams.
        if faults is not None:
            self.path.fault_probe = faults.path_probe(
                client.prefix.org, client.prefix.prefix_id
            )
        # Receiver windows vary by OS/tuning: many clients advertise modest
        # windows that keep TCP below the path's overflow point (these are
        # the paper's ~40% loss-free sessions).
        rwnd_segments = int(np.clip(self.rng.lognormal(np.log(160.0), 0.8), 32, 4096))
        self.tcp = TcpConnection(
            path=self.path,
            rng=self.rng,
            initial_cwnd=config.tcp_initial_cwnd,
            slow_start_growth=1.5 if config.tcp_paced else 2.0,
            max_window_segments=rwnd_segments,
        )
        self.buffer = PlaybackBuffer(metrics=metrics)
        self.downloadstack = DownloadStackModel(client.platform, self.rng, metrics=metrics)
        self.renderer = RenderingModel(
            platform=client.platform,
            gpu=client.gpu,
            cpu_cores=client.cpu_cores,
            cpu_background_load=client.cpu_background_load,
            rng=self.rng,
        )
        self.next_chunk = 0
        self.session_had_miss = False
        #: bitrate chosen for the most recent chunk; the fleet engine's
        #: ABR-switch demotion trigger compares consecutive values
        self.last_bitrate_kbps: Optional[float] = None
        self._emit_session_records()

    # -- session-level telemetry ------------------------------------------------

    def _emit_session_records(self) -> None:
        plan = self.plan
        client = plan.client
        self.collector.add_player_session(
            PlayerSessionRecord(
                session_id=plan.session_id,
                client_ip=client.beacon_ip,
                user_agent=client.user_agent,
                video_id=plan.video.video_id,
                video_duration_ms=plan.video.duration_ms,
                start_ms=plan.start_ms,
                os=client.platform.os,
                browser=client.platform.browser,
            )
        )
        self.collector.add_cdn_session(
            CdnSessionRecord(
                session_id=plan.session_id,
                client_ip=client.cdn_visible_ip,
                user_agent=client.user_agent,
                pop_id=self.mapping.pop.pop_id,
                server_id=self.mapping.server_id,
                org=client.prefix.org,
                conn_type=client.prefix.conn_type,
                country=client.prefix.country,
                city=client.prefix.geo.city,
                lat=client.prefix.geo.lat,
                lon=client.prefix.geo.lon,
            )
        )

    # -- manifest ----------------------------------------------------------------

    def manifest_time_ms(self, now_ms: float) -> float:
        """Duration of the initial manifest request (small HTTP exchange)."""
        rtt = self.path.sample_rtt(now_ms)
        server_time = float(self.rng.lognormal(np.log(1.5), 0.5))
        return rtt + server_time

    # -- per-chunk processing -------------------------------------------------------

    def process_chunk(self, now_ms: float) -> Optional[float]:
        """Process the next chunk's request issued at *now_ms*.

        Returns the absolute time at which the player will issue the next
        chunk request, or None when the session is over.
        """
        if self.metrics is None:
            return self._process_chunk(now_ms)
        with self._span_chunk:
            return self._process_chunk(now_ms)

    def _process_chunk(self, now_ms: float) -> Optional[float]:
        plan = self.plan
        video = plan.video
        index = self.next_chunk
        if index >= plan.watch_chunks:
            return None

        buffer_level_now = self.buffer.level_at(now_ms)
        bitrate = self.abr.choose_bitrate(buffer_level_now)
        self.last_bitrate_kbps = float(bitrate)
        duration_ms = video.chunk_duration_ms(index)
        size_bytes = video.chunk_bytes(index, bitrate)
        key = (video.video_id, index, int(bitrate))

        # Causal trace: a per-chunk emitter when this session is sampled.
        # The path fault is a pure function of sim time, queried once here
        # and reused by the ground-truth stamping below.
        ct = self._trace.chunk(index) if self._trace is not None else None
        path_fault = (
            self.faults.path_state(
                plan.client.prefix.org, plan.client.prefix.prefix_id, now_ms
            )
            if self.faults is not None
            else None
        )

        # --- fetch phase: request travels to the server, server serves ---
        rtt0 = self.path.sample_rtt(now_ms)
        if ct is not None:
            net_labels = (
                ",".join(sorted(set(path_fault.labels))) if path_fault else ""
            )
            ct.emit(
                "session.request", now_ms,
                bitrate_kbps=float(bitrate), chunk_bytes=int(size_bytes),
                buffer_ms=buffer_level_now,
            )
            ct.emit("net.propagation", now_ms, rtt0, faults=net_labels)
        serve = self.server.serve(key, size_bytes, now_ms + rtt0 / 2.0, trace=ct)
        if serve.status.value == "miss":
            if not self.session_had_miss and self.config.prefetch_after_miss:
                self._prefetch_following(index, bitrate)
            self.session_had_miss = True

        # --- download phase: TCP delivers the chunk ---
        transfer_start = now_ms + rtt0 / 2.0 + serve.total_ms + rtt0 / 2.0
        transfer = self.tcp.transfer(size_bytes, transfer_start)
        network_dlb = transfer.duration_ms
        if ct is not None:
            ct.emit(
                "net.transfer", transfer_start, network_dlb, faults=net_labels,
                segments_sent=transfer.segments_sent,
                segments_retx=transfer.segments_retx, rounds=transfer.rounds,
            )
            # The evolving 500 ms tcp_info stream (the dataset's records
            # stamp post-transfer state; the trace keeps each sample's own).
            for sample in transfer.samples:
                ct.emit(
                    "net.tcp_sample", sample.t_ms, faults=net_labels,
                    cwnd_segments=sample.cwnd_segments, srtt_ms=sample.srtt_ms,
                    rttvar_ms=sample.rttvar_ms, rto_ms=sample.rto_ms,
                    retx_total=sample.retx_total,
                )
            end_sample = self.tcp.state_sample(transfer_start + network_dlb)
            ct.emit(
                "net.tcp_sample", end_sample.t_ms, faults=net_labels,
                cwnd_segments=end_sample.cwnd_segments,
                srtt_ms=end_sample.srtt_ms, rttvar_ms=end_sample.rttvar_ms,
                rto_ms=end_sample.rto_ms, retx_total=end_sample.retx_total,
            )

        # --- client download stack ---
        ds = self.downloadstack.sample(index, network_dlb)
        dfb = rtt0 + serve.total_ms + ds.first_byte_delay_ms
        dlb = max(1.0, network_dlb - ds.last_byte_shift_ms)
        complete_ms = now_ms + dfb + dlb

        # --- playout phase ---
        if self.metrics is not None:
            self._m_chunks.inc()
            self._m_dfb.observe(dfb)
            self._m_dlb.observe(dlb)
            if index == 0:
                self._m_startup.observe(dfb + dlb)

        pre_append_level = self.buffer.level_at(complete_ms)
        rebuffer_count, rebuffer_ms = self.buffer.on_chunk_ready(
            index, duration_ms, complete_ms
        )
        download_rate = duration_ms / max(dfb + dlb, 1e-6)
        # Client-render fault epochs apply only where the regression bites:
        # a visible, software-rendered chunk (hidden players drop frames on
        # purpose; GPU pipelines bypass the buggy software renderer).
        render_fault = None
        if self.faults is not None and plan.visibility[index] and not plan.client.gpu:
            render_fault = self.faults.render_state(
                plan.client.platform.os, complete_ms
            )
        render = self.renderer.render_chunk(
            download_rate=download_rate,
            visible=plan.visibility[index],
            bitrate_kbps=bitrate,
            buffer_level_ms=pre_append_level,
            chunk_duration_ms=duration_ms,
            extra_drop_fraction=render_fault.drop_add if render_fault else 0.0,
        )
        if ct is not None:
            stack_start = now_ms + rtt0 + serve.total_ms
            ct.emit(
                "client.stack_delay", stack_start, ds.first_byte_delay_ms,
                transient=ds.transient,
            )
            ct.emit("client.first_byte", now_ms + dfb)
            ct.emit("client.last_byte", complete_ms)
            ct.emit(
                "client.buffer_append", complete_ms,
                rebuffer_count=rebuffer_count, rebuffer_ms=rebuffer_ms,
                buffer_ms=pre_append_level,
            )
            if rebuffer_ms > 0.0:
                ct.emit(
                    "client.rebuffer", complete_ms - rebuffer_ms, rebuffer_ms
                )
            ct.emit(
                "client.render", complete_ms,
                faults=(
                    ",".join(sorted(set(render_fault.labels)))
                    if render_fault
                    else ""
                ),
                visible=bool(plan.visibility[index]),
                dropped_frames=render.dropped_frames,
                total_frames=render.total_frames,
            )

        # --- telemetry, both sides ---
        self.collector.add_player_chunk(
            PlayerChunkRecord(
                session_id=plan.session_id,
                chunk_id=index,
                dfb_ms=dfb,
                dlb_ms=dlb,
                bitrate_kbps=float(bitrate),
                chunk_duration_ms=duration_ms,
                rebuffer_count=rebuffer_count,
                rebuffer_ms=rebuffer_ms,
                visible=plan.visibility[index],
                avg_fps=render.avg_fps,
                dropped_frames=render.dropped_frames,
                total_frames=render.total_frames,
                request_sent_ms=now_ms,
                hw_rendered=plan.client.gpu,
            )
        )
        self.collector.add_cdn_chunk(
            CdnChunkRecord(
                session_id=plan.session_id,
                chunk_id=index,
                d_wait_ms=serve.d_wait_ms,
                d_open_ms=serve.d_open_ms,
                d_read_ms=serve.d_read_ms,
                d_be_ms=serve.d_be_ms,
                cache_status=serve.status.value,
                chunk_bytes=size_bytes,
                server_id=self.server.server_id,
                pop_id=self.mapping.pop.pop_id,
                served_at_ms=now_ms + rtt0 / 2.0,
            )
        )
        # Snapshots stamp the connection's *current* (post-transfer) state at
        # the sampled times; the state fields are invariant across the loop,
        # so build them once instead of one state_sample() call per record.
        tcp = self.tcp
        snap_cwnd = int(tcp.cwnd)
        snap_srtt = tcp.srtt_ms if tcp.srtt_ms is not None else 0.0
        snap_rttvar = tcp.rttvar_ms
        snap_retx = tcp.retx_total
        snap_mss = tcp.mss
        snap_rto = tcp.rto_ms
        # §2.1: at least one snapshot per chunk — the forced end-of-transfer
        # sample rides at the block's tail.  The whole chunk's grid lands in
        # one block append (the snapshots are the highest-volume kind).
        snapshot_times = [sample.t_ms for sample in transfer.samples]
        snapshot_times.append(transfer_start + network_dlb)
        self.collector.add_tcp_snapshots(
            [
                TcpInfoRecord(
                    session_id=plan.session_id,
                    chunk_id=index,
                    t_ms=t_ms,
                    cwnd_segments=snap_cwnd,
                    srtt_ms=snap_srtt,
                    rttvar_ms=snap_rttvar,
                    retx_total=snap_retx,
                    mss=snap_mss,
                    rto_ms=snap_rto,
                )
                for t_ms in snapshot_times
            ]
        )

        # Ground-truth fault labels: re-query the same pure functions that
        # produced the effects (server at request arrival, path at request
        # time, renderer at completion) and stamp what actually struck.
        fault_labels = ""
        if self.faults is not None:
            server_fault = self.faults.server_state(
                self.server.server_id, now_ms + rtt0 / 2.0
            )
            fault_labels = merge_labels(
                server_fault.labels if server_fault else (),
                path_fault.labels if path_fault else (),
                render_fault.labels if render_fault else (),
            )
            if self.metrics is not None:
                if path_fault is not None:
                    self._m_fault_net.inc()
                if render_fault is not None:
                    self._m_fault_render.inc()
                if fault_labels:
                    self._m_fault_labeled.inc()
        self.collector.add_ground_truth(
            ChunkGroundTruth(
                session_id=plan.session_id,
                chunk_id=index,
                true_dds_ms=ds.first_byte_delay_ms,
                true_rtt0_ms=rtt0,
                transient_ds=ds.transient,
                segments_sent=transfer.segments_sent,
                segments_retx=transfer.segments_retx,
                true_drop_fraction=render.dropped_fraction,
                network_dlb_ms=network_dlb,
                fault_labels=fault_labels,
            )
        )

        # --- ABR update and next-request pacing ---
        self.abr.observe(
            ChunkObservation(
                bitrate_kbps=float(bitrate),
                dfb_ms=dfb,
                dlb_ms=dlb,
                chunk_bytes=size_bytes,
            )
        )
        self.next_chunk += 1
        if self.next_chunk >= plan.watch_chunks:
            return None
        level_after = self.buffer.level_at(complete_ms)
        wait = max(0.0, level_after - self.config.max_buffer_ms)
        return complete_ms + wait

    def _prefetch_following(self, index: int, bitrate: float) -> None:
        """§4.1-2 extension: warm the next chunks after the first miss."""
        video = self.plan.video
        for ahead in range(1, self.config.prefetch_depth + 1):
            j = index + ahead
            if j >= video.n_chunks:
                break
            self.server.prefetch(
                (video.video_id, j, int(bitrate)), video.chunk_bytes(j, bitrate)
            )
