"""Top-level simulation configuration.

One :class:`SimulationConfig` fully determines a simulated trace: the
catalog, client population, CDN deployment, server tuning, player policy,
and the operational extensions the paper proposes (pre-fetching,
first-chunk warming, popularity partitioning, server pacing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..cdn.mapping import VALID_STRATEGIES
from ..cdn.server import CdnServerConfig
from ..client.abr import ABR_NAMES
from ..faults.spec import FaultSpec
from ..workload.catalog import DEFAULT_BITRATE_LADDER_KBPS
from ..workload.clients import PopulationConfig
from .._execution import ENGINE_NAMES, EXECUTION_FIELD_NAMES, ExecutionOptions
from .shard import SHARD_MODES

__all__ = ["ExecutionOptions", "SimulationConfig"]


@dataclass
class SimulationConfig:
    """All knobs for one simulated collection period."""

    n_sessions: int = 2000
    #: sessions simulated before the measured window, telemetry discarded,
    #: to bring the CDN caches to steady state (the paper measures a
    #: long-running production system, not a cold fleet)
    warmup_sessions: int = 0
    seed: int = 7

    # -- workload -----------------------------------------------------------
    #: active catalog size.  The paper's full catalog is huge, but its
    #: *daily working set* (news clips) is small and request reuse is high;
    #: at simulation scale a compact active catalog is what reproduces the
    #: production cache-hit regime.  Popularity-only analyses (Fig. 3) use
    #: a full-size catalog directly via ``repro.workload.generate_catalog``.
    n_videos: int = 150
    zipf_alpha: float = 0.9
    bitrate_ladder_kbps: Tuple[int, ...] = DEFAULT_BITRATE_LADDER_KBPS
    arrival_rate_per_s: float = 30.0
    #: abandonment model (Fig. 11(a)): median and lognormal shape of the
    #: per-session watch-chunk draw.  The defaults reproduce the paper's
    #: session-length CDF; the skewed short-session workload shape
    #: (docs/SCENARIOS.md, after Grammenos et al.) pushes the median down.
    watch_median_chunks: float = 5.0
    watch_sigma_chunks: float = 0.9
    population: PopulationConfig = field(default_factory=PopulationConfig)

    # -- CDN ---------------------------------------------------------------
    n_servers: int = 85
    server: CdnServerConfig = field(default_factory=CdnServerConfig)
    mapping_strategy: str = "cache-focused"
    #: §4.1-2 extension: after a session's first miss, prefetch its
    #: subsequent chunks into the serving server's cache
    prefetch_after_miss: bool = False
    #: how many chunks ahead to prefetch when the extension is on
    prefetch_depth: int = 3
    #: §4.1-2 / §4.3-3 extension: pre-warm every server with the first
    #: chunk of each title it is responsible for
    warm_first_chunks: bool = False

    # -- player ---------------------------------------------------------------
    abr_name: str = "rate"
    abr_screen_outliers: bool = False
    max_buffer_ms: float = 18_000.0

    # -- network ---------------------------------------------------------------
    #: initial congestion window (segments); the pacing ablation (§4.2-3
    #: take-away) reduces slow-start burstiness by capping growth
    tcp_initial_cwnd: int = 10
    #: cap the slow-start doubling (paced server ≈ gentler ramp)
    tcp_paced: bool = False

    # -- telemetry ---------------------------------------------------------------
    record_ground_truth: bool = True

    # -- fault injection ---------------------------------------------------------
    #: seeded fault schedule applied inside the event loop; ground-truth
    #: labels are stamped into the telemetry (see docs/FAULTS.md).  Faults
    #: are workload-semantic: they change *what* is simulated, so they are
    #: part of the config hash, unlike the execution knobs below.
    faults: Optional[FaultSpec] = None

    # -- execution ---------------------------------------------------------------
    # These knobs choose *how* the trace is computed, never *what* it is:
    # under the default ``server`` sharding the telemetry is identical for
    # any worker count (see docs/PARALLEL.md for the determinism contract).
    #: worker processes; 1 = the classic in-process event loop
    workers: int = 1
    #: wall-clock budget per shard attempt (seconds); None = no timeout
    shard_timeout_s: Optional[float] = None
    #: shard partitioning mode: "server" (exact) or "session" (approximate)
    shard_by: str = "server"
    #: per-chunk causal tracing (docs/OBSERVABILITY.md, "Tracing"): the
    #: fraction of sessions traced, head-sampled by session-id hash so the
    #: sampled set is shard-independent.  0.0 (default) disables tracing
    #: entirely — no recorder is built and the hot path pays one ``is
    #: None`` check per chunk.  Observational, like the knobs above: the
    #: simulated workload and its telemetry are unchanged.
    trace_sample: float = 0.0
    #: telemetry memory mode (docs/TELEMETRY.md): None keeps records as
    #: in-memory Python objects (the classic Dataset); a directory path
    #: spills sorted columnar runs there and the run yields a
    #: bounded-memory SpilledDataset over identical records.  Sharded
    #: runs spill each worker into ``<spill_dir>/shard-<k>``.  Execution
    #: knob: the telemetry records themselves are byte-identical either
    #: way.
    spill_dir: Optional[str] = None
    #: rows buffered per record kind before the spill writer flushes one
    #: sorted run (the RSS-bound knob — see the budget model in
    #: docs/TELEMETRY.md)
    spill_threshold_rows: int = 262_144
    #: stepping engine (docs/PERFORMANCE.md, "Fleet engine"): "event" is
    #: the classic per-session event loop, "fleet" advances calm sessions
    #: in vectorized cohorts, "auto" (default) picks by session count.
    #: Execution knob: every engine emits byte-identical telemetry.
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ValueError("n_sessions must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        if self.n_videos <= 0:
            raise ValueError("n_videos must be positive")
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        if self.max_buffer_ms <= 0:
            raise ValueError("max_buffer_ms must be positive")
        if self.watch_median_chunks <= 0:
            raise ValueError("watch_median_chunks must be positive")
        if self.watch_sigma_chunks < 0:
            raise ValueError("watch_sigma_chunks must be non-negative")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be within [0, 1]")
        if self.spill_threshold_rows <= 0:
            raise ValueError("spill_threshold_rows must be positive")
        # Stringly-typed knobs are validated against their registries here,
        # so a typo fails at construction with the valid values listed —
        # not hundreds of sessions into the run.
        if self.mapping_strategy not in VALID_STRATEGIES:
            raise ValueError(
                f"unknown mapping_strategy {self.mapping_strategy!r}; "
                f"choose from {VALID_STRATEGIES}"
            )
        if self.abr_name not in ABR_NAMES:
            raise ValueError(
                f"unknown abr_name {self.abr_name!r}; choose from {ABR_NAMES}"
            )
        if self.shard_by not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_by {self.shard_by!r}; choose from {SHARD_MODES}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_NAMES}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec (or None), got {type(self.faults).__name__}"
            )

    @property
    def execution(self) -> ExecutionOptions:
        """The execution knobs as a typed immutable view.

        The fields are mirrored structurally from
        :class:`~repro.simulation.execution.ExecutionOptions`, which is
        also what the workload config hash excludes — adding an execution
        knob there keeps config, hash, and this view in sync by
        construction.
        """
        return ExecutionOptions(
            **{name: getattr(self, name) for name in EXECUTION_FIELD_NAMES}
        )

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """A copy with the given fields replaced (convenience for sweeps)."""
        return replace(self, **kwargs)
