"""A minimal discrete-event engine.

Sessions interact only through shared CDN server state (caches, load), so
the engine's job is to interleave per-session chunk events in global time
order.  It is a classic heap-based event loop: callbacks are scheduled at
absolute times and may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventLoop"]

EventCallback = Callable[[float], None]


class EventLoop:
    """Heap-ordered event loop over absolute simulation time (ms)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now_ms(self) -> float:
        """Current simulation time (the timestamp of the last event)."""
        return self._now

    def schedule(self, at_ms: float, callback: EventCallback) -> None:
        """Schedule *callback* to run at absolute time *at_ms*.

        Scheduling in the past (relative to the event being processed) is a
        logic error in the caller and raises immediately rather than
        silently reordering history.
        """
        if self._running and at_ms < self._now:
            raise ValueError(
                f"cannot schedule at {at_ms} ms; current time is {self._now} ms"
            )
        heapq.heappush(self._heap, (at_ms, next(self._counter), callback))

    def run(self, until_ms: Optional[float] = None) -> float:
        """Process events in time order; returns the final simulation time.

        Stops when the heap empties or the next event is past *until_ms*.
        """
        self._running = True
        try:
            while self._heap:
                at_ms, _, callback = self._heap[0]
                if until_ms is not None and at_ms > until_ms:
                    break
                heapq.heappop(self._heap)
                self._now = at_ms
                callback(at_ms)
                self.events_processed += 1
        finally:
            self._running = False
        return self._now

    def __len__(self) -> int:
        return len(self._heap)
