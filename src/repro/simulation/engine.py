"""A minimal discrete-event engine.

Sessions interact only through shared CDN server state (caches, load), so
the engine's job is to interleave per-session chunk events in global time
order.  It is a classic heap-based event loop: callbacks are scheduled at
absolute times and may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import nullcontext
from typing import Callable, List, Optional, Tuple

from ..obs.registry import MetricsRegistry

__all__ = ["EventLoop"]

EventCallback = Callable[[float], None]


class EventLoop:
    """Heap-ordered event loop over absolute simulation time (ms).

    ``metrics`` is the optional observability registry: each :meth:`run`
    is wrapped in an ``engine.run`` span, and on exit the loop folds its
    event count into ``engine.events_total`` and publishes the final
    clock as ``engine.clock_ms`` (whose max across shards equals the
    serial run's clock — see docs/OBSERVABILITY.md).  The per-event hot
    loop itself stays untouched: bookkeeping uses the counters the loop
    maintains anyway.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._metrics = metrics
        self.events_processed = 0

    @property
    def now_ms(self) -> float:
        """Current simulation time (the timestamp of the last event)."""
        return self._now

    def schedule(self, at_ms: float, callback: EventCallback) -> None:
        """Schedule *callback* to run at absolute time *at_ms*.

        Scheduling in the past (relative to the event being processed) is a
        logic error in the caller and raises immediately rather than
        silently reordering history.
        """
        if self._running and at_ms < self._now:
            raise ValueError(
                f"cannot schedule at {at_ms} ms; current time is {self._now} ms"
            )
        heapq.heappush(self._heap, (at_ms, next(self._counter), callback))

    def run(self, until_ms: Optional[float] = None) -> float:
        """Process events in time order; returns the final simulation time.

        Stops when the heap empties or the next event is past *until_ms*.
        """
        self._running = True
        processed_before = self.events_processed
        span = self._metrics.span("engine.run") if self._metrics else nullcontext()
        try:
            with span:
                # Hot loop: locals for the heap and heappop, and the
                # unbounded case split out so the common path does no
                # until_ms comparison and no peek-then-pop double access.
                heap = self._heap
                heappop = heapq.heappop
                if until_ms is None:
                    while heap:
                        at_ms, _, callback = heappop(heap)
                        self._now = at_ms
                        callback(at_ms)
                        self.events_processed += 1
                else:
                    while heap:
                        if heap[0][0] > until_ms:
                            break
                        at_ms, _, callback = heappop(heap)
                        self._now = at_ms
                        callback(at_ms)
                        self.events_processed += 1
        finally:
            self._running = False
            if self._metrics is not None:
                self._metrics.counter("engine.events_total").inc(
                    self.events_processed - processed_before
                )
                self._metrics.gauge("engine.clock_ms").set(self._now)
        return self._now

    def __len__(self) -> int:
        return len(self._heap)
