"""Cache eviction policies: LRU (ATS default) plus the paper's alternatives.

§4.1-1's take-away: "the default LRU cache eviction policy in ATS could be
changed to better suited policies for popular-heavy workloads such as
GD-size or perfect-LFU [Breslau et al.]".  We implement LRU, FIFO, GD-Size,
and Perfect-LFU behind one interface so the cache-policy ablation bench can
compare them on the same workload.

All policies are O(log n) or better per operation; GD-Size and Perfect-LFU
use lazy-invalidation heaps.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = [
    "EvictionPolicy",
    "LruPolicy",
    "FifoPolicy",
    "GdSizePolicy",
    "PerfectLfuPolicy",
    "make_policy",
]


class EvictionPolicy(ABC):
    """Decides which cached object to evict; tracks object metadata.

    The cache calls :meth:`on_insert` when an object is admitted,
    :meth:`on_hit` on every hit, :meth:`on_remove` when an object leaves
    for any reason, and :meth:`select_victim` when space must be freed.
    """

    @abstractmethod
    def on_insert(self, key: Hashable, size: int, cost: float) -> None:
        """Register a newly admitted object."""

    @abstractmethod
    def on_hit(self, key: Hashable) -> None:
        """Update recency/frequency metadata on a hit."""

    @abstractmethod
    def on_remove(self, key: Hashable) -> None:
        """Forget an object (eviction or explicit invalidation)."""

    @abstractmethod
    def select_victim(self) -> Hashable:
        """Return the key to evict next.  Undefined when empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked objects."""


class LruPolicy(EvictionPolicy):
    """Least-recently-used — Apache Traffic Server's default behaviour."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable, size: int, cost: float) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_hit(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def select_victim(self) -> Hashable:
        if not self._order:
            raise LookupError("policy is empty")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class FifoPolicy(EvictionPolicy):
    """First-in-first-out: insertion order, hits do not refresh."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable, size: int, cost: float) -> None:
        if key not in self._order:
            self._order[key] = None

    def on_hit(self, key: Hashable) -> None:
        pass  # FIFO ignores recency

    def on_remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def select_victim(self) -> Hashable:
        if not self._order:
            raise LookupError("policy is empty")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class GdSizePolicy(EvictionPolicy):
    """GreedyDual-Size (Cao & Irani): H = clock + cost / size.

    Evicts the object with the smallest H; on eviction the global clock
    advances to the victim's H, so recently useful or expensive-to-fetch
    objects survive longer.  Uses a lazy heap: stale entries are skipped
    at pop time.
    """

    def __init__(self) -> None:
        self._clock = 0.0
        self._h: Dict[Hashable, float] = {}
        self._meta: Dict[Hashable, Tuple[int, float]] = {}  # size, cost
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._counter = 0

    def _push(self, key: Hashable, h_value: float) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (h_value, self._counter, key))

    def on_insert(self, key: Hashable, size: int, cost: float) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        h_value = self._clock + cost / size
        self._h[key] = h_value
        self._meta[key] = (size, cost)
        self._push(key, h_value)

    def on_hit(self, key: Hashable) -> None:
        if key not in self._meta:
            return
        size, cost = self._meta[key]
        h_value = self._clock + cost / size
        self._h[key] = h_value
        self._push(key, h_value)

    def on_remove(self, key: Hashable) -> None:
        self._h.pop(key, None)
        self._meta.pop(key, None)

    def select_victim(self) -> Hashable:
        while self._heap:
            h_value, _, key = self._heap[0]
            current = self._h.get(key)
            if current is None or current != h_value:
                heapq.heappop(self._heap)  # stale entry
                continue
            self._clock = h_value
            return key
        raise LookupError("policy is empty")

    def __len__(self) -> int:
        return len(self._h)


class PerfectLfuPolicy(EvictionPolicy):
    """Perfect LFU: frequency counts persist across evictions (Breslau et al.).

    "Perfect" means the reference count of an object is remembered even
    while it is not cached, so a popular object re-admitted after eviction
    keeps its accumulated frequency.
    """

    def __init__(self) -> None:
        self._global_freq: Dict[Hashable, int] = {}
        self._resident: Dict[Hashable, int] = {}  # key -> freq when last pushed
        self._heap: List[Tuple[int, int, Hashable]] = []
        self._counter = 0

    def _push(self, key: Hashable) -> None:
        self._counter += 1
        freq = self._global_freq[key]
        self._resident[key] = freq
        heapq.heappush(self._heap, (freq, self._counter, key))

    def on_insert(self, key: Hashable, size: int, cost: float) -> None:
        self._global_freq[key] = self._global_freq.get(key, 0) + 1
        self._push(key)

    def on_hit(self, key: Hashable) -> None:
        if key not in self._resident:
            return
        self._global_freq[key] = self._global_freq.get(key, 0) + 1
        self._push(key)

    def on_remove(self, key: Hashable) -> None:
        self._resident.pop(key, None)
        # frequency is intentionally retained ("perfect" LFU)

    def select_victim(self) -> Hashable:
        while self._heap:
            freq, _, key = self._heap[0]
            current = self._resident.get(key)
            if current is None or current != freq:
                heapq.heappop(self._heap)  # stale entry
                continue
            return key
        raise LookupError("policy is empty")

    def __len__(self) -> int:
        return len(self._resident)


_POLICY_FACTORIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "gdsize": GdSizePolicy,
    "gd-size": GdSizePolicy,
    "lfu": PerfectLfuPolicy,
    "perfect-lfu": PerfectLfuPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (lru, fifo, gdsize, perfect-lfu)."""
    try:
        return _POLICY_FACTORIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(set(_POLICY_FACTORIES))}"
        ) from None
