"""Traffic engineering: mapping clients to PoPs and servers.

§4.1: "The traffic engineering system maps clients to CDN nodes using a
function of geography, latency, load, cache likelihood, etc.  In other
words, the system tries to route clients to the server that is likely to
have a hot cache."  We implement that *cache-focused* mapping — nearest PoP
by geography, then a consistent hash of the video id across the PoP's
servers — plus the paper's §4.1-3 take-away as an alternative strategy:
explicitly partitioning/spreading the most popular videos across servers
to balance load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..workload.geo import GeoPoint
from ..workload.randomness import stable_hash64
from .pop import Deployment, Pop

__all__ = ["MappingDecision", "TrafficEngineering"]

VALID_STRATEGIES = ("cache-focused", "popularity-partitioned", "random")


@dataclass(frozen=True)
class MappingDecision:
    """The (PoP, server) pair chosen for a session."""

    pop: Pop
    server_id: str


@dataclass
class TrafficEngineering:
    """Client→server assignment.

    Strategies:

    * ``cache-focused`` (the paper's production behaviour): nearest PoP,
      then consistent-hash the video id over that PoP's servers, so all
      requests for a title land on the same server and its cache stays hot.
      Side effect (§4.1-3): servers drawing the unpopular tail see *lower*
      load but *worse* latency — the load-performance paradox.
    * ``popularity-partitioned``: titles ranked in the top
      ``partition_top_fraction`` are spread over all servers of the PoP by
      (video, session) hash, while the tail stays cache-focused — the
      paper's suggested fix for load balancing.
    * ``random``: uniform server choice within the nearest PoP (a
      cache-oblivious baseline).
    """

    deployment: Deployment
    strategy: str = "cache-focused"
    partition_top_fraction: float = 0.10
    #: number of top-ranked titles considered "popular" for partitioning;
    #: derived from the catalog size by the driver when left to None
    n_popular_titles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.strategy not in VALID_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from {VALID_STRATEGIES}"
            )
        if not 0.0 < self.partition_top_fraction <= 1.0:
            raise ValueError("partition_top_fraction must be in (0, 1]")

    def assign(
        self,
        client_location: GeoPoint,
        video_id: int,
        video_rank: int,
        session_id: str,
    ) -> MappingDecision:
        """Pick the serving PoP and server for one session."""
        pop = self.deployment.nearest_pop(client_location)
        servers = pop.server_ids
        if self.strategy == "random":
            index = stable_hash64(f"rnd|{session_id}") % len(servers)
        elif self.strategy == "popularity-partitioned" and self._is_popular(video_rank):
            # Spread the hot head across all servers of the PoP.
            index = stable_hash64(f"part|{video_id}|{session_id}") % len(servers)
        else:
            # Cache-focused: one home server per title per PoP.
            index = stable_hash64(f"cf|{video_id}") % len(servers)
        return MappingDecision(pop=pop, server_id=servers[index])

    def _is_popular(self, video_rank: int) -> bool:
        if self.n_popular_titles is None:
            return False
        return video_rank < self.n_popular_titles

    def configure_catalog(self, n_videos: int) -> None:
        """Derive the popular-title cutoff from the catalog size."""
        self.n_popular_titles = max(1, int(round(n_videos * self.partition_top_fraction)))
