"""CDN substrate: caches, eviction policies, servers, PoPs, mapping."""

from .backend import BackendService
from .cache import CacheLevel, CacheStatus, TwoLevelCache
from .mapping import MappingDecision, TrafficEngineering
from .policies import (
    EvictionPolicy,
    FifoPolicy,
    GdSizePolicy,
    LruPolicy,
    PerfectLfuPolicy,
    make_policy,
)
from .pop import Deployment, Pop, build_default_deployment
from .server import CdnServer, CdnServerConfig, ServeResult

__all__ = [
    "BackendService",
    "CacheLevel",
    "CacheStatus",
    "TwoLevelCache",
    "MappingDecision",
    "TrafficEngineering",
    "EvictionPolicy",
    "LruPolicy",
    "FifoPolicy",
    "GdSizePolicy",
    "PerfectLfuPolicy",
    "make_policy",
    "Deployment",
    "Pop",
    "build_default_deployment",
    "CdnServer",
    "CdnServerConfig",
    "ServeResult",
]
