"""Backend origin service: latency model for cache-miss fetches.

§2.1: on a miss the CDN makes a request to the backend service; D_BE is
measured at the CDN and *includes* network delay to the backend.  The
paper treats backend-internal problems as rare and out of scope, so the
model is a stable service-time distribution plus the PoP-dependent
network round trip; there is no backend queueing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BackendService"]


@dataclass
class BackendService:
    """The origin store behind all CDN PoPs.

    ``service_mean_ms`` is the backend's internal time to locate and start
    streaming the object (storage lookup + read).  Heavy-tailed: most
    requests are fast, a few hit cold storage paths.
    """

    service_mean_ms: float = 35.0
    service_sigma: float = 0.7

    def first_byte_latency_ms(self, backend_rtt_ms: float, rng: np.random.Generator) -> float:
        """D_BE for one miss: network RTT to the backend + service time."""
        if backend_rtt_ms < 0:
            raise ValueError("backend_rtt_ms must be non-negative")
        mu = np.log(self.service_mean_ms) - 0.5 * self.service_sigma**2
        service = float(rng.lognormal(mu, self.service_sigma))
        return backend_rtt_ms + service
