"""Byte-capacity cache with pluggable eviction, plus the two-level stack.

The paper's CDN uses a "multi-level and distributed cache (between the main
memory and the local disk) ... with an LRU replacement policy" (§2).  A
:class:`CacheLevel` is one level (RAM or disk) with a byte capacity; a
:class:`TwoLevelCache` stacks RAM over disk and reports where an object was
found, which is what drives the three server-latency regimes: RAM hit
(sub-millisecond read), disk hit (open-read-retry timer + seek), and miss
(backend fetch).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, Optional

from .policies import EvictionPolicy, LruPolicy, make_policy

__all__ = ["CacheLevel", "TwoLevelCache", "CacheStatus"]


class CacheStatus(str, Enum):
    """Where a requested chunk was found."""

    HIT_RAM = "hit_ram"
    HIT_DISK = "hit_disk"
    MISS = "miss"

    @property
    def is_hit(self) -> bool:
        return self is not CacheStatus.MISS


@dataclass
class CacheLevelStats:
    """Hit/miss/eviction counters for one cache level."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class CacheLevel:
    """A single cache level with byte capacity and an eviction policy."""

    def __init__(self, capacity_bytes: int, policy: Optional[EvictionPolicy] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.policy = policy if policy is not None else LruPolicy()
        self.used_bytes = 0
        self.stats = CacheLevelStats()
        self._sizes: Dict[Hashable, int] = {}

    def __contains__(self, key: Hashable) -> bool:
        return key in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def lookup(self, key: Hashable) -> bool:
        """Check for *key*, updating hit/miss stats and policy metadata."""
        if key in self._sizes:
            self.stats.hits += 1
            self.policy.on_hit(key)
            return True
        self.stats.misses += 1
        return False

    def peek(self, key: Hashable) -> bool:
        """Check for *key* without touching stats or recency."""
        return key in self._sizes

    def insert(self, key: Hashable, size_bytes: int, fetch_cost: float = 1.0) -> None:
        """Admit *key*; evicts as needed.  Objects larger than the level
        capacity are not admitted (standard cache behaviour)."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if key in self._sizes:
            self.policy.on_hit(key)
            return
        if size_bytes > self.capacity_bytes:
            return
        while self.used_bytes + size_bytes > self.capacity_bytes:
            self._evict_one()
        self._sizes[key] = size_bytes
        self.used_bytes += size_bytes
        self.policy.on_insert(key, size_bytes, fetch_cost)
        self.stats.insertions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Remove *key* if present; returns whether it was present."""
        size = self._sizes.pop(key, None)
        if size is None:
            return False
        self.used_bytes -= size
        self.policy.on_remove(key)
        return True

    def _evict_one(self) -> None:
        victim = self.policy.select_victim()
        size = self._sizes.pop(victim)
        self.used_bytes -= size
        self.policy.on_remove(victim)
        self.stats.evictions += 1


class TwoLevelCache:
    """RAM over disk, with promotion on disk hits and write-through admits.

    * RAM hit: serve from memory.
    * Disk hit: serve from disk, promote the object into RAM.
    * Miss: the caller fetches from the backend and calls :meth:`admit`,
      which writes the object to both levels (ATS stores to disk and the
      object is hot in memory right after serving).
    """

    def __init__(
        self,
        ram_capacity_bytes: int,
        disk_capacity_bytes: int,
        policy_name: str = "lru",
    ) -> None:
        if disk_capacity_bytes < ram_capacity_bytes:
            raise ValueError("disk capacity should be >= RAM capacity")
        self.ram = CacheLevel(ram_capacity_bytes, make_policy(policy_name))
        self.disk = CacheLevel(disk_capacity_bytes, make_policy(policy_name))
        self.policy_name = policy_name

    def lookup(self, key: Hashable, size_bytes: int) -> CacheStatus:
        """Resolve *key*, performing promotion; returns where it was found."""
        if self.ram.lookup(key):
            return CacheStatus.HIT_RAM
        if self.disk.lookup(key):
            self.ram.insert(key, size_bytes)  # promote hot object to memory
            return CacheStatus.HIT_DISK
        return CacheStatus.MISS

    def admit(self, key: Hashable, size_bytes: int, fetch_cost: float = 1.0) -> None:
        """Store a backend-fetched object in both levels."""
        self.disk.insert(key, size_bytes, fetch_cost)
        self.ram.insert(key, size_bytes, fetch_cost)

    def contains(self, key: Hashable) -> bool:
        """True if *key* is resident at any level (no stats side effects)."""
        return self.ram.peek(key) or self.disk.peek(key)
