"""The ATS-like CDN server: request queue, cache stack, retry timer, backend.

§2 and §4.1 of the paper describe the serving path we model:

* requests wait in a FIFO queue until a worker reads the headers (D_wait —
  negligible for most chunks on these well-provisioned servers);
* the server attempts to open the object (D_open, sub-millisecond);
* the read (D_read) has three regimes — the bimodal distribution of Fig. 5:
  RAM-resident objects return in ~1 ms, while anything else pays ATS's
  **asynchronous open-read-retry timer** (~10 ms, [4] in the paper) before
  the disk read or backend request proceeds;
* misses additionally pay D_BE at the backend (~40x the hit latency at the
  median: 2 ms vs 80 ms in the paper).

The server also exposes the pre-fetching extensions evaluated as ablations
(§4.1-2 take-aways): warming the first chunks of every title, and
prefetching subsequent chunks of a session after its first miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry

if TYPE_CHECKING:  # import-time only: keeps cdn importable without faults
    from ..faults.injector import FaultInjector
    from ..obs.trace import ChunkTrace
from ..workload.randomness import bounded_lognormal, spawn
from .backend import BackendService
from .cache import CacheStatus, TwoLevelCache

__all__ = ["ChunkKey", "ServeResult", "CdnServerConfig", "CdnServer"]

#: Cache key for one stored object: (video, chunk index, bitrate).
ChunkKey = Tuple[int, int, int]


@dataclass(frozen=True)
class ServeResult:
    """Latency decomposition of serving one chunk (all in ms).

    ``d_cdn = d_wait + d_open + d_read`` is the paper's server latency;
    ``d_be`` is nonzero only on a miss.
    """

    d_wait_ms: float
    d_open_ms: float
    d_read_ms: float
    d_be_ms: float
    status: CacheStatus
    retry_timer_hit: bool

    @property
    def d_cdn_ms(self) -> float:
        return self.d_wait_ms + self.d_open_ms + self.d_read_ms

    @property
    def total_ms(self) -> float:
        """Total server-side latency (D_CDN + D_BE)."""
        return self.d_cdn_ms + self.d_be_ms


@dataclass
class CdnServerConfig:
    """Tunable server parameters.

    Defaults are calibrated so that the fleet-wide distributions match the
    paper: hit-total median ≈2 ms, miss-total median ≈80 ms, D_wait < 1 ms
    for most chunks, and the D_read distribution bimodal around the 10 ms
    retry timer.
    """

    ram_capacity_bytes: int = 128 * 1024**2  # RAM cache (hot set)
    disk_capacity_bytes: int = 16 * 1024**3  # disk cache
    policy_name: str = "lru"
    #: ATS open-read-retry timer: paid whenever the first open attempt
    #: cannot be served from memory (disk read or backend fetch) [4].
    retry_timer_ms: float = 10.0
    ram_read_mean_ms: float = 1.1
    disk_seek_mean_ms: float = 6.0
    wait_mean_ms: float = 0.25
    open_mean_ms: float = 0.12
    #: worker pool size; queue wait grows only when concurrency approaches it
    worker_threads: int = 64
    #: mean service time used for the load estimate (ms)
    nominal_service_ms: float = 8.0


class CdnServer:
    """One cache server inside a PoP."""

    def __init__(
        self,
        server_id: str,
        backend_rtt_ms: float,
        config: Optional[CdnServerConfig] = None,
        backend: Optional[BackendService] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.server_id = server_id
        #: fault injector consulted per request (None = no fault schedule);
        #: queries are pure functions of (server id, arrival time), so the
        #: same schedule applies on every shard layout (docs/FAULTS.md)
        self.faults = faults
        self.backend_rtt_ms = backend_rtt_ms
        self.config = config or CdnServerConfig()
        self.backend = backend or BackendService()
        self.cache = TwoLevelCache(
            self.config.ram_capacity_bytes,
            self.config.disk_capacity_bytes,
            self.config.policy_name,
        )
        self.rng = spawn(seed, f"server|{server_id}")
        # Load bookkeeping: EWMA of the inter-arrival gap (ms); the rate is
        # its reciprocal.  (Averaging gaps, not 1/gap, keeps near-
        # simultaneous arrivals from exploding the estimate.)
        self._last_arrival_ms: Optional[float] = None
        self._gap_ewma_ms: Optional[float] = None
        self.requests_served = 0
        self.bytes_served = 0
        self.status_counts: Dict[CacheStatus, int] = {status: 0 for status in CacheStatus}
        self.backend_fetches = 0
        self.prefetch_fetches = 0
        # Observability handles, bound once so serve() touches attributes
        # only.  Metric names are part of the docs/OBSERVABILITY.md
        # contract; all series are fleet-wide (no per-server labels).
        self._metrics = metrics
        if metrics is not None:
            self._m_requests = metrics.counter("cdn.requests_total")
            self._m_bytes = metrics.counter("cdn.bytes_served_total")
            self._m_status = {
                CacheStatus.HIT_RAM: metrics.counter("cdn.cache_hits_ram_total"),
                CacheStatus.HIT_DISK: metrics.counter("cdn.cache_hits_disk_total"),
                CacheStatus.MISS: metrics.counter("cdn.cache_misses_total"),
            }
            self._m_retry = metrics.counter("cdn.retry_timer_hits_total")
            self._m_backend = metrics.counter("cdn.backend_fetches_total")
            self._m_prefetch = metrics.counter("cdn.prefetch_fetches_total")
            self._m_queue_wait = metrics.histogram("cdn.queue_wait_ms")
            self._m_serve_latency = metrics.histogram("cdn.serve_latency_ms")
            self._m_backend_latency = metrics.histogram("cdn.backend_latency_ms")
            self._m_fault_requests = metrics.counter("faults.server_requests_total")

    # -- load tracking -------------------------------------------------------

    def _update_load(self, now_ms: float) -> None:
        if self._last_arrival_ms is not None and now_ms >= self._last_arrival_ms:
            gap = max(now_ms - self._last_arrival_ms, 0.01)
            if self._gap_ewma_ms is None:
                self._gap_ewma_ms = gap
            else:
                self._gap_ewma_ms = 0.9 * self._gap_ewma_ms + 0.1 * gap
        self._last_arrival_ms = now_ms

    @property
    def request_rate_per_s(self) -> float:
        """Smoothed request arrival rate (requests per second)."""
        if self._gap_ewma_ms is None or self._gap_ewma_ms <= 0:
            return 0.0
        return 1000.0 / self._gap_ewma_ms

    @property
    def load_estimate(self) -> float:
        """Approximate worker-pool utilization in [0, ~1+].

        Requests/ms times nominal service time, over the worker count —
        i.e. offered load relative to capacity.
        """
        if self._gap_ewma_ms is None or self._gap_ewma_ms <= 0:
            return 0.0
        return (
            self.config.nominal_service_ms
            / self._gap_ewma_ms
            / self.config.worker_threads
        )

    # -- serving ------------------------------------------------------------

    def serve(
        self,
        key: ChunkKey,
        size_bytes: int,
        now_ms: float,
        trace: Optional["ChunkTrace"] = None,
    ) -> ServeResult:
        """Serve one chunk request arriving at *now_ms*.

        ``trace`` is the chunk's causal-trace emitter when the session is
        sampled (docs/OBSERVABILITY.md, "Tracing"); None costs one branch.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self._metrics is None:
            return self._serve(key, size_bytes, now_ms, trace)
        with self._metrics.span("cdn.serve"):
            result = self._serve(key, size_bytes, now_ms, trace)
        self._m_requests.inc()
        self._m_bytes.inc(size_bytes)
        self._m_status[result.status].inc()
        self._m_queue_wait.observe(result.d_wait_ms)
        self._m_serve_latency.observe(result.d_cdn_ms)
        if result.retry_timer_hit:
            self._m_retry.inc()
        if result.status is CacheStatus.MISS:
            self._m_backend.inc()
            self._m_backend_latency.observe(result.d_be_ms)
        return result

    def _serve(
        self,
        key: ChunkKey,
        size_bytes: int,
        now_ms: float,
        trace: Optional["ChunkTrace"] = None,
    ) -> ServeResult:
        self._update_load(now_ms)
        self.requests_served += 1
        self.bytes_served += size_bytes
        cfg = self.config
        rng = self.rng
        fault = (
            self.faults.server_state(self.server_id, now_ms)
            if self.faults is not None
            else None
        )
        if fault is not None and self._metrics is not None:
            self._m_fault_requests.inc()

        # Queue wait: negligible on a provisioned server; grows only under
        # overload (which the paper's fleet, and ours, rarely reaches).
        d_wait = bounded_lognormal(rng, cfg.wait_mean_ms, 0.9, 0.01, 50.0)
        if self.load_estimate > 0.8:
            d_wait += float(rng.exponential(3.0)) * (self.load_estimate - 0.8) * 10.0
        d_open = bounded_lognormal(rng, cfg.open_mean_ms, 0.7, 0.01, 5.0)
        if fault is not None:
            d_wait = d_wait * fault.latency_mult + fault.wait_add_ms
            d_open *= fault.latency_mult

        if fault is not None and fault.bypass_cache:
            # Cache brownout: the cache stack is out of the serving path —
            # neither lookup nor admit touches it, so post-epoch cache
            # state is exactly the pre-epoch state (and deterministic).
            status = CacheStatus.MISS
            self.status_counts[status] += 1
            retry_hit = True
            d_read = cfg.retry_timer_ms + bounded_lognormal(rng, 0.6, 0.5, 0.1, 10.0)
            d_be = self.backend.first_byte_latency_ms(self.backend_rtt_ms, rng)
            self.backend_fetches += 1
        else:
            status = self.cache.lookup(key, size_bytes)
            self.status_counts[status] += 1
            d_be = 0.0
            retry_hit = False
            if status is CacheStatus.HIT_RAM:
                d_read = bounded_lognormal(rng, cfg.ram_read_mean_ms, 0.45, 0.2, 30.0)
            elif status is CacheStatus.HIT_DISK:
                # First open attempt fails (not in memory) -> async retry
                # timer, then the actual disk seek+read.
                retry_hit = True
                d_read = cfg.retry_timer_ms + bounded_lognormal(
                    rng, cfg.disk_seek_mean_ms, 0.55, 0.5, 80.0
                )
            else:
                retry_hit = True
                d_read = cfg.retry_timer_ms + bounded_lognormal(rng, 0.6, 0.5, 0.1, 10.0)
                d_be = self.backend.first_byte_latency_ms(self.backend_rtt_ms, rng)
                self.backend_fetches += 1
                self.cache.admit(key, size_bytes, fetch_cost=d_be)
        if fault is not None:
            d_read *= fault.latency_mult
            d_be *= fault.backend_mult
        if trace is not None:
            # Same fault state the ground-truth stamping re-queries (pure
            # function of (server id, arrival time)), so per-event labels
            # reconcile exactly with ChunkGroundTruth.fault_labels.
            labels = ",".join(sorted(set(fault.labels))) if fault is not None else ""
            t = now_ms
            trace.emit("cdn.queue_wait", t, d_wait, faults=labels)
            t += d_wait
            trace.emit("cdn.open", t, d_open, faults=labels)
            t += d_open
            trace.emit(
                "cdn.cache_lookup", t, faults=labels,
                status=status.value, retry_timer=retry_hit,
            )
            retry_ms = 0.0
            if retry_hit:
                retry_ms = cfg.retry_timer_ms * (
                    fault.latency_mult if fault is not None else 1.0
                )
                trace.emit("cdn.retry_timer", t, retry_ms, faults=labels)
                t += retry_ms
            trace.emit("cdn.read", t, max(0.0, d_read - retry_ms), faults=labels)
            t += max(0.0, d_read - retry_ms)
            if d_be > 0.0:
                trace.emit("cdn.origin_fetch", t, d_be, faults=labels)
        return ServeResult(
            d_wait_ms=d_wait,
            d_open_ms=d_open,
            d_read_ms=d_read,
            d_be_ms=d_be,
            status=status,
            retry_timer_hit=retry_hit,
        )

    # -- prefetching extensions (§4.1 take-aways, used by ablations) --------

    def prefetch(self, key: ChunkKey, size_bytes: int) -> bool:
        """Asynchronously warm *key* from the backend if absent.

        Returns True if a backend fetch was issued.  The fetch happens off
        the request path, so no latency is charged here; the next request
        for *key* will find it cached.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.cache.contains(key):
            return False
        self.cache.admit(key, size_bytes)
        self.prefetch_fetches += 1
        if self._metrics is not None:
            self._m_prefetch.inc()
        return True

    @property
    def cache_miss_ratio(self) -> float:
        """Fraction of served requests that missed both cache levels."""
        if self.requests_served == 0:
            return 0.0
        return self.status_counts[CacheStatus.MISS] / self.requests_served
