"""CDN points of presence and the default US deployment.

The paper's sessions were served by 85 CDN servers across the US (§3).  We
model a deployment as a set of PoPs — each anchored at a US city with a
handful of co-located servers and a backend round-trip determined by its
distance from the (single, logically central) backend service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..workload.geo import City, GeoPoint, US_POP_CITIES, haversine_km, propagation_rtt_ms

__all__ = ["Pop", "Deployment", "build_default_deployment"]

#: The backend service sits in a central datacenter (we use a Kansas-ish
#: centroid so coast PoPs see ~20-40 ms backend RTTs).
BACKEND_LOCATION = GeoPoint(lat=39.0, lon=-95.0, city="Backend-DC", country="US")


@dataclass(frozen=True)
class Pop:
    """One point of presence: location plus its server identifiers."""

    pop_id: str
    location: GeoPoint
    server_ids: Tuple[str, ...]
    backend_rtt_ms: float

    @property
    def n_servers(self) -> int:
        return len(self.server_ids)


@dataclass
class Deployment:
    """All PoPs of the CDN."""

    pops: Sequence[Pop]

    def __post_init__(self) -> None:
        if not self.pops:
            raise ValueError("deployment must contain at least one PoP")
        seen = set()
        for pop in self.pops:
            for server_id in pop.server_ids:
                if server_id in seen:
                    raise ValueError(f"duplicate server id {server_id}")
                seen.add(server_id)

    @property
    def n_servers(self) -> int:
        return sum(pop.n_servers for pop in self.pops)

    def all_server_ids(self) -> List[str]:
        return [sid for pop in self.pops for sid in pop.server_ids]

    def nearest_pop(self, point: GeoPoint) -> Pop:
        """PoP with minimum great-circle distance to *point*."""
        return min(
            self.pops,
            key=lambda pop: haversine_km(
                pop.location.lat, pop.location.lon, point.lat, point.lon
            ),
        )

    def pop_of_server(self, server_id: str) -> Pop:
        for pop in self.pops:
            if server_id in pop.server_ids:
                return pop
        raise KeyError(f"unknown server {server_id}")


def build_default_deployment(
    total_servers: int = 85, cities: Sequence[City] = US_POP_CITIES
) -> Deployment:
    """Spread *total_servers* across PoP cities proportional to their weight.

    Every city gets at least one server; the remainder is apportioned by
    weight (largest-remainder method), matching how real CDNs provision by
    regional demand.
    """
    if total_servers < len(cities):
        raise ValueError("need at least one server per PoP city")
    weights = [c.weight for c in cities]
    total_weight = sum(weights)
    quotas = [w / total_weight * total_servers for w in weights]
    counts = [max(1, int(q)) for q in quotas]
    remainders = sorted(
        range(len(cities)), key=lambda i: quotas[i] - int(quotas[i]), reverse=True
    )
    index = 0
    while sum(counts) < total_servers:
        counts[remainders[index % len(remainders)]] += 1
        index += 1
    while sum(counts) > total_servers:
        donor = max(range(len(counts)), key=lambda i: counts[i])
        counts[donor] -= 1

    pops: List[Pop] = []
    for city, count in zip(cities, counts):
        location = GeoPoint(lat=city.lat, lon=city.lon, city=city.name, country=city.country)
        backend_rtt = propagation_rtt_ms(
            haversine_km(city.lat, city.lon, BACKEND_LOCATION.lat, BACKEND_LOCATION.lon)
        ) + 4.0  # switch/host overheads inside both datacenters
        short = city.name.lower().replace(" ", "-").replace(".", "")
        pops.append(
            Pop(
                pop_id=f"pop-{short}",
                location=location,
                server_ids=tuple(f"srv-{short}-{i:02d}" for i in range(count)),
                backend_rtt_ms=backend_rtt,
            )
        )
    return Deployment(pops=pops)
