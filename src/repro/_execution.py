"""Execution-scoped run options: *how* a run is computed, never *what*.

:class:`ExecutionOptions` is the typed view of the execution section of
:class:`~repro.simulation.config.SimulationConfig` — the knobs that pick
an execution strategy (worker count, stepping engine, telemetry
residence, tracing) without changing a single simulated record.  The
workload identity hash excludes exactly these fields, *structurally*:
:data:`EXECUTION_FIELD_NAMES` is derived from this dataclass, so adding
an execution knob here is all it takes to keep it out of the hash (the
field list in ``repro.obs.manifest`` used to be maintained by hand).

This module is an import leaf (stdlib only) at the package root so both
the config and the manifest layers can depend on it without a cycle; the
public import path is :mod:`repro.simulation.execution`, a re-export
shim.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple

__all__ = [
    "ANALYSIS_MODES",
    "AUTO_COLUMNAR_MIN_SESSIONS",
    "AUTO_FLEET_MIN_SESSIONS",
    "ENGINE_NAMES",
    "EXECUTION_FIELD_NAMES",
    "ExecutionOptions",
    "resolve_analysis",
    "resolve_engine",
]

#: legal values for ``SimulationConfig.engine`` — "auto" resolves per run
#: (see :func:`resolve_engine`)
ENGINE_NAMES: Tuple[str, ...] = ("auto", "event", "fleet")

#: ``engine="auto"`` threshold: below this many sessions per period the
#: cohort bookkeeping of the fleet engine costs more than the heap it
#: replaces, so small runs stay on the classic event loop.
AUTO_FLEET_MIN_SESSIONS = 64


def resolve_engine(engine: str, n_sessions: int) -> str:
    """Resolve an ``engine`` config value to a concrete engine name.

    ``"event"`` and ``"fleet"`` are explicit choices and pass through;
    ``"auto"`` picks the fleet engine for periods of
    :data:`AUTO_FLEET_MIN_SESSIONS` sessions or more, the event loop
    below that.  Pure function of its arguments: every shard worker of a
    run resolves to the same engine.
    """
    if engine == "auto":
        return "fleet" if n_sessions >= AUTO_FLEET_MIN_SESSIONS else "event"
    if engine not in ENGINE_NAMES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")
    return engine


#: legal values for the analyses' ``analysis=`` keyword — "auto" resolves
#: per dataset (see :func:`resolve_analysis`)
ANALYSIS_MODES: Tuple[str, ...] = ("auto", "records", "columnar")

#: ``analysis="auto"`` threshold: below this many sessions the fixed cost
#: of planning the columnar pass outweighs its per-row win, so small
#: in-memory datasets stay on the record-object path.
AUTO_COLUMNAR_MIN_SESSIONS = 256


def resolve_analysis(analysis: str, n_sessions: int, spilled: bool = False) -> str:
    """Resolve an ``analysis`` value to ``"records"`` or ``"columnar"``.

    Explicit choices pass through; ``"auto"`` picks the columnar pass for
    spilled datasets (whose rows already live in sorted numpy runs) and
    for in-memory datasets of :data:`AUTO_COLUMNAR_MIN_SESSIONS` sessions
    or more.  Pure function of its arguments, mirroring
    :func:`resolve_engine`.
    """
    if analysis == "auto":
        if spilled or n_sessions >= AUTO_COLUMNAR_MIN_SESSIONS:
            return "columnar"
        return "records"
    if analysis not in ANALYSIS_MODES:
        raise ValueError(f"unknown analysis {analysis!r}; choose from {ANALYSIS_MODES}")
    return analysis


@dataclass(frozen=True)
class ExecutionOptions:
    """The execution knobs of one run, as an immutable typed view.

    Every field mirrors the identically-named flat field on
    :class:`~repro.simulation.config.SimulationConfig` (the flat kwargs
    remain the construction surface; see the deprecation note in
    docs/ARCHITECTURE.md).  The determinism contract: any two configs
    differing only in these fields simulate byte-identical telemetry.
    """

    #: worker processes; 1 = in-process execution
    workers: int = 1
    #: wall-clock budget per shard attempt (seconds); None = no timeout
    shard_timeout_s: Optional[float] = None
    #: shard partitioning mode: "server" (exact) or "session" (approximate)
    shard_by: str = "server"
    #: fraction of sessions traced (head-sampled by session-id hash)
    trace_sample: float = 0.0
    #: telemetry memory mode: None = in-memory, path = spill directory
    spill_dir: Optional[str] = None
    #: rows buffered per record kind before a sorted spill run is flushed
    spill_threshold_rows: int = 262_144
    #: stepping engine: "event", "fleet", or "auto" (resolved per run)
    engine: str = "auto"


#: The structural exclusion list for the workload config hash: exactly the
#: fields of :class:`ExecutionOptions`, never a hand-maintained copy.
EXECUTION_FIELD_NAMES: Tuple[str, ...] = tuple(
    f.name for f in fields(ExecutionOptions)
)
