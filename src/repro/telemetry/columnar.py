"""Columnar backing store: structured-array layout for every record kind.

The record dataclasses in :mod:`repro.telemetry.records` are the facade the
analysis layer consumes; at scale (the paper's 65 M sessions / 523 M
chunks) a Python object per record is ~10x the memory of the data it
carries.  This module declares one numpy structured dtype per record kind
and exact, loss-free conversion in both directions:

* ``records_to_array`` — record objects → one structured array (the
  columnar form the spill files and the synthetic generator use);
* ``iter_records`` / ``array_to_records`` — structured array → record
  objects, block-wise, producing plain Python scalars (``tolist()``), so a
  round-tripped record compares ``==`` to the original and JSON-serializes
  identically.

String columns are fixed-width UTF-8 bytes (``S`` dtype — 1 byte/char for
the ASCII identifiers the simulator emits, vs 4 for ``U``).  Widths are
part of the documented contract (docs/TELEMETRY.md); a value that does not
fit raises :class:`ColumnOverflowError` instead of being truncated
silently.  Canonical ordering (the :meth:`Dataset.sorted` keys) is a
stable structured-array argsort over the same key columns.
"""

from __future__ import annotations

import dataclasses
from operator import attrgetter
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

__all__ = [
    "COLUMN_SCHEMAS",
    "SPILL_KINDS",
    "ColumnOverflowError",
    "ColumnSchema",
    "dtype_token",
    "records_to_array",
    "array_to_records",
    "iter_records",
    "sort_array",
    "sort_key",
]

#: rows materialized per block when iterating an array back into records —
#: bounds peak Python-object count regardless of array length
ITER_BLOCK_ROWS = 65_536


class ColumnOverflowError(ValueError):
    """A string value exceeds its column's declared byte width."""


class ColumnSchema:
    """The columnar layout of one record kind.

    ``kind`` is the :class:`~repro.telemetry.dataset.Dataset` attribute
    name; ``fields`` maps every dataclass field, in declaration order, to
    a numpy dtype string; ``sort_keys`` are the canonical-order key
    columns (exactly :meth:`Dataset.sorted`'s keys for this kind).
    """

    def __init__(
        self,
        kind: str,
        record_type: type,
        fields: Tuple[Tuple[str, str], ...],
        sort_keys: Tuple[str, ...],
    ) -> None:
        declared = tuple(f.name for f in dataclasses.fields(record_type))
        if tuple(name for name, _ in fields) != declared:
            raise ValueError(
                f"{kind}: columnar fields {tuple(n for n, _ in fields)} do not "
                f"match {record_type.__name__} fields {declared}"
            )
        self.kind = kind
        self.record_type = record_type
        self.sort_keys = sort_keys
        self.dtype = np.dtype(list(fields))
        #: (index, name, byte width) of every string column
        self.string_fields: Tuple[Tuple[int, str, int], ...] = tuple(
            (index, name, self.dtype[name].itemsize)
            for index, (name, _) in enumerate(fields)
            if self.dtype[name].kind == "S"
        )
        self._getter = attrgetter(*(name for name, _ in fields))
        self._key_getter = attrgetter(*sort_keys)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return self.dtype.names

    @property
    def row_bytes(self) -> int:
        return self.dtype.itemsize


#: The columnar contract: every record kind's layout, keyed by its
#: ``Dataset`` attribute name.  Adding or resizing a column REQUIRES a
#: matching row in docs/TELEMETRY.md (tests/test_docs_contract.py enforces
#: both directions) and a SPILL_FORMAT_VERSION bump in
#: :mod:`repro.telemetry.spill`.
COLUMN_SCHEMAS: Dict[str, ColumnSchema] = {
    schema.kind: schema
    for schema in (
        ColumnSchema(
            "player_chunks",
            PlayerChunkRecord,
            (
                ("session_id", "S24"),
                ("chunk_id", "i8"),
                ("dfb_ms", "f8"),
                ("dlb_ms", "f8"),
                ("bitrate_kbps", "f8"),
                ("chunk_duration_ms", "f8"),
                ("rebuffer_count", "i8"),
                ("rebuffer_ms", "f8"),
                ("visible", "b1"),
                ("avg_fps", "f8"),
                ("dropped_frames", "i8"),
                ("total_frames", "i8"),
                ("request_sent_ms", "f8"),
                ("hw_rendered", "b1"),
            ),
            ("session_id", "chunk_id"),
        ),
        ColumnSchema(
            "cdn_chunks",
            CdnChunkRecord,
            (
                ("session_id", "S24"),
                ("chunk_id", "i8"),
                ("d_wait_ms", "f8"),
                ("d_open_ms", "f8"),
                ("d_read_ms", "f8"),
                ("d_be_ms", "f8"),
                ("cache_status", "S12"),
                ("chunk_bytes", "i8"),
                ("server_id", "S32"),
                ("pop_id", "S32"),
                ("served_at_ms", "f8"),
            ),
            ("session_id", "chunk_id"),
        ),
        ColumnSchema(
            "tcp_snapshots",
            TcpInfoRecord,
            (
                ("session_id", "S24"),
                ("chunk_id", "i8"),
                ("t_ms", "f8"),
                ("cwnd_segments", "i8"),
                ("srtt_ms", "f8"),
                ("rttvar_ms", "f8"),
                ("retx_total", "i8"),
                ("mss", "i8"),
                ("rto_ms", "f8"),
            ),
            ("session_id", "chunk_id", "t_ms"),
        ),
        ColumnSchema(
            "player_sessions",
            PlayerSessionRecord,
            (
                ("session_id", "S24"),
                ("client_ip", "S48"),
                ("user_agent", "S128"),
                ("video_id", "i8"),
                ("video_duration_ms", "f8"),
                ("start_ms", "f8"),
                ("os", "S32"),
                ("browser", "S24"),
            ),
            ("session_id",),
        ),
        ColumnSchema(
            "cdn_sessions",
            CdnSessionRecord,
            (
                ("session_id", "S24"),
                ("client_ip", "S48"),
                ("user_agent", "S128"),
                ("pop_id", "S32"),
                ("server_id", "S32"),
                ("org", "S64"),
                ("conn_type", "S16"),
                ("country", "S8"),
                ("city", "S40"),
                ("lat", "f8"),
                ("lon", "f8"),
            ),
            ("session_id",),
        ),
        ColumnSchema(
            "ground_truth",
            ChunkGroundTruth,
            (
                ("session_id", "S24"),
                ("chunk_id", "i8"),
                ("true_dds_ms", "f8"),
                ("true_rtt0_ms", "f8"),
                ("transient_ds", "b1"),
                ("segments_sent", "i8"),
                ("segments_retx", "i8"),
                ("true_drop_fraction", "f8"),
                ("network_dlb_ms", "f8"),
                ("fault_labels", "S160"),
            ),
            ("session_id", "chunk_id"),
        ),
    )
}

#: record kinds in Dataset-attribute order (the spill manifest order)
SPILL_KINDS: Tuple[str, ...] = tuple(COLUMN_SCHEMAS)


def dtype_token(kind: str, field: str) -> str:
    """The short dtype token documented in docs/TELEMETRY.md (``S24``, ``i8``...)."""
    dt = COLUMN_SCHEMAS[kind].dtype[field]
    if dt.kind == "S":
        return f"S{dt.itemsize}"
    if dt.kind == "b":
        return "b1"
    return f"{dt.kind}{dt.itemsize}"


def records_to_array(kind: str, records: Iterable[object]) -> np.ndarray:
    """Pack record objects into one structured array (exact, validated).

    String fields are UTF-8 encoded; a value wider than its declared
    column raises :class:`ColumnOverflowError` (numpy would truncate
    silently, which must never happen to telemetry).
    """
    schema = COLUMN_SCHEMAS[kind]
    getter = schema._getter
    rows: List[tuple] = []
    string_fields = schema.string_fields
    for record in records:
        row = getter(record)
        if not isinstance(row, tuple):  # single-field schema (never today)
            row = (row,)
        if string_fields:
            row = list(row)
            for index, name, width in string_fields:
                encoded = row[index].encode("utf-8")
                if len(encoded) > width:
                    raise ColumnOverflowError(
                        f"{kind}.{name}: value {row[index]!r} is "
                        f"{len(encoded)} bytes, column width is {width} "
                        "(docs/TELEMETRY.md, 'Columnar layout')"
                    )
                row[index] = encoded
            row = tuple(row)
        rows.append(row)
    return np.array(rows, dtype=schema.dtype)


def iter_records(
    kind: str, array: np.ndarray, block_rows: int = ITER_BLOCK_ROWS
) -> Iterator[object]:
    """Materialize an array's rows back into record objects, block-wise.

    ``tolist()`` yields plain Python scalars (int/float/bool/bytes), so
    the rebuilt records are exactly what the facade emitted — ``==`` to
    the originals and byte-identical under JSON serialization.  Blocks of
    *block_rows* (default :data:`ITER_BLOCK_ROWS`) bound the number of
    live Python objects no matter how large the (possibly memory-mapped)
    array is; callers merging many arrays at once divide the budget
    across them (:meth:`~repro.telemetry.spill.SpilledDataset.iter_kind`)
    so the bound holds per *kind*, not per run.
    """
    schema = COLUMN_SCHEMAS[kind]
    record_type = schema.record_type
    decode_indices = [index for index, _, _ in schema.string_fields]
    block_rows = max(1, block_rows)
    for start in range(0, len(array), block_rows):
        for row in array[start : start + block_rows].tolist():
            values = list(row)
            for index in decode_indices:
                values[index] = values[index].decode("utf-8")
            yield record_type(*values)


def array_to_records(kind: str, array: np.ndarray) -> List[object]:
    """List form of :func:`iter_records` (small arrays / tests)."""
    return list(iter_records(kind, array))


def sort_array(kind: str, array: np.ndarray) -> np.ndarray:
    """Stable canonical-order sort (the :meth:`Dataset.sorted` keys).

    Key columns are ASCII-ordered bytes and numbers, so the structured
    argsort orders rows exactly as the tuple keys ``Dataset.sorted`` uses;
    ``kind='stable'`` preserves emission order between equal keys, which
    is what makes spilled runs merge to the in-memory canonical order.
    """
    schema = COLUMN_SCHEMAS[kind]
    if len(array) <= 1:
        return array
    return array[np.argsort(array, order=schema.sort_keys, kind="stable")]


def sort_key(kind: str):
    """The canonical-order key callable for record objects of *kind*."""
    return COLUMN_SCHEMAS[kind]._key_getter
