"""Dataset container and the (session, chunk) join.

"A key to end-to-end analysis is to trace session performance from the
player through the CDN (at the granularity of chunks).  We implement
tracing by using a globally unique session ID and per-session chunk IDs."
(§2.2).  :meth:`Dataset.join_chunks` performs exactly that join; every
analysis in :mod:`repro.core` operates on the joined views.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import groupby
from operator import attrgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

__all__ = ["JoinedChunk", "SessionView", "Dataset", "iter_joined_sessions"]


@dataclass(frozen=True)
class JoinedChunk:
    """One chunk seen from both sides, with its TCP snapshots."""

    player: PlayerChunkRecord
    cdn: CdnChunkRecord
    tcp: Tuple[TcpInfoRecord, ...]
    truth: Optional[ChunkGroundTruth] = None

    @property
    def session_id(self) -> str:
        return self.player.session_id

    @property
    def chunk_id(self) -> int:
        return self.player.chunk_id

    @property
    def srtt_samples(self) -> List[float]:
        """SRTT values of this chunk's snapshots (ms), in time order."""
        return [snap.srtt_ms for snap in self.tcp if snap.srtt_ms > 0]

    @property
    def last_tcp(self) -> Optional[TcpInfoRecord]:
        return self.tcp[-1] if self.tcp else None

    @property
    def first_tcp(self) -> Optional[TcpInfoRecord]:
        return self.tcp[0] if self.tcp else None


@dataclass
class SessionView:
    """All of one session's joined records, chunks in order."""

    session_id: str
    player_session: PlayerSessionRecord
    cdn_session: CdnSessionRecord
    chunks: List[JoinedChunk] = field(default_factory=list)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def avg_bitrate_kbps(self) -> float:
        if not self.chunks:
            return 0.0
        return sum(c.player.bitrate_kbps for c in self.chunks) / len(self.chunks)

    @property
    def total_rebuffer_ms(self) -> float:
        return sum(c.player.rebuffer_ms for c in self.chunks)

    @property
    def total_rebuffer_count(self) -> int:
        return sum(c.player.rebuffer_count for c in self.chunks)

    @property
    def watched_media_ms(self) -> float:
        return sum(c.player.chunk_duration_ms for c in self.chunks)

    @property
    def rebuffer_rate(self) -> float:
        """Re-buffering rate: stall time over watched media time (%-able)."""
        media = self.watched_media_ms
        if media <= 0:
            return 0.0
        return self.total_rebuffer_ms / media

    @property
    def startup_delay_ms(self) -> Optional[float]:
        """Time to play: the first chunk's full download time."""
        if not self.chunks:
            return None
        first = self.chunks[0]
        if first.chunk_id != 0:
            return None
        return first.player.download_ms

    @property
    def session_retx_rate(self) -> float:
        """Retransmission-rate estimate from the TCP counters (§4.2-3).

        Cumulative retransmissions on the connection divided by the
        (estimated) number of data segments: total bytes / MSS.
        """
        last_snapshot: Optional[TcpInfoRecord] = None
        total_bytes = 0
        for chunk in self.chunks:
            total_bytes += chunk.cdn.chunk_bytes
            if chunk.tcp:
                candidate = chunk.tcp[-1]
                if last_snapshot is None or candidate.retx_total >= last_snapshot.retx_total:
                    last_snapshot = candidate
        if last_snapshot is None or total_bytes <= 0:
            return 0.0
        segments = max(1.0, total_bytes / last_snapshot.mss)
        return min(1.0, last_snapshot.retx_total / segments)

    @property
    def had_loss(self) -> bool:
        return self.session_retx_rate > 0.0

    def chunk_retx_counts(self) -> List[Tuple[int, int]]:
        """Per-chunk retransmission deltas [(chunk_id, retx)] from counters."""
        result: List[Tuple[int, int]] = []
        previous = 0
        for chunk in self.chunks:
            last = chunk.last_tcp
            if last is None:
                result.append((chunk.chunk_id, 0))
                continue
            delta = max(0, last.retx_total - previous)
            previous = max(previous, last.retx_total)
            result.append((chunk.chunk_id, delta))
        return result


class _GroupCursor:
    """Step through a session-id-sorted record stream, one sid group at a time.

    ``take(sid)`` discards groups below *sid* and returns the group equal
    to it (or ``[]``).  Callers request sids in ascending order, so the
    whole pass is O(N) and at most one session's records are live.
    """

    __slots__ = ("_groups", "_sid", "_group")

    def __init__(self, records: Iterable) -> None:
        self._groups = groupby(records, key=attrgetter("session_id"))
        self._advance()

    def _advance(self) -> None:
        self._sid, self._group = next(self._groups, (None, None))

    def take(self, sid: str) -> list:
        while self._sid is not None and self._sid < sid:
            self._advance()
        if self._sid == sid:
            records = list(self._group)
            self._advance()
            return records
        return []


def iter_joined_sessions(
    player_sessions: Iterable[PlayerSessionRecord],
    cdn_sessions: Iterable[CdnSessionRecord],
    player_chunks: Iterable[PlayerChunkRecord],
    cdn_chunks: Iterable[CdnChunkRecord],
    tcp_snapshots: Iterable[TcpInfoRecord],
    ground_truth: Iterable[ChunkGroundTruth],
) -> Iterator[SessionView]:
    """Streaming merge-join: canonical-ordered record streams → session views.

    Produces exactly what :meth:`Dataset.sessions` produces — same views,
    same order, same duplicate-key semantics — but one session at a time,
    so joining a spilled million-session run never materializes more than
    one session's records.  Inputs **must** be in canonical order (the
    :meth:`Dataset.sorted` keys); equal-key semantics then coincide with
    the dict-index join: dict insertion last-wins over emission order
    equals last-wins over a stable canonical sort.
    """
    cdn_session_groups = _GroupCursor(cdn_sessions)
    player_chunk_groups = _GroupCursor(player_chunks)
    cdn_chunk_groups = _GroupCursor(cdn_chunks)
    tcp_groups = _GroupCursor(tcp_snapshots)
    truth_groups = _GroupCursor(ground_truth)
    for sid, player_group in groupby(player_sessions, key=attrgetter("session_id")):
        players = list(player_group)
        cdns = cdn_session_groups.take(sid)
        if not cdns:
            continue
        view = SessionView(
            session_id=sid, player_session=players[-1], cdn_session=cdns[-1]
        )
        cdn_index: Dict[Tuple[str, int], CdnChunkRecord] = {
            (r.session_id, r.chunk_id): r for r in cdn_chunk_groups.take(sid)
        }
        truth_index: Dict[Tuple[str, int], ChunkGroundTruth] = {
            (r.session_id, r.chunk_id): r for r in truth_groups.take(sid)
        }
        tcp_index: Dict[Tuple[str, int], List[TcpInfoRecord]] = {}
        for snapshot in tcp_groups.take(sid):
            tcp_index.setdefault((snapshot.session_id, snapshot.chunk_id), []).append(
                snapshot
            )
        for snapshots in tcp_index.values():
            snapshots.sort(key=lambda s: s.t_ms)
        for player in player_chunk_groups.take(sid):
            key = (player.session_id, player.chunk_id)
            cdn = cdn_index.get(key)
            if cdn is None:
                continue
            view.chunks.append(
                JoinedChunk(
                    player=player,
                    cdn=cdn,
                    tcp=tuple(tcp_index.get(key, ())),
                    truth=truth_index.get(key),
                )
            )
        view.chunks.sort(key=lambda c: c.chunk_id)
        yield view


@dataclass
class Dataset:
    """All telemetry from one simulated collection period."""

    player_chunks: List[PlayerChunkRecord] = field(default_factory=list)
    cdn_chunks: List[CdnChunkRecord] = field(default_factory=list)
    tcp_snapshots: List[TcpInfoRecord] = field(default_factory=list)
    player_sessions: List[PlayerSessionRecord] = field(default_factory=list)
    cdn_sessions: List[CdnSessionRecord] = field(default_factory=list)
    ground_truth: List[ChunkGroundTruth] = field(default_factory=list)

    # -- basic shape ---------------------------------------------------------

    @property
    def n_sessions(self) -> int:
        return len(self.player_sessions)

    @property
    def n_chunks(self) -> int:
        return len(self.player_chunks)

    # -- joining -------------------------------------------------------------

    def join_chunks(self) -> List[JoinedChunk]:
        """Join player and CDN chunk records on (session_id, chunk_id).

        Chunks present on only one side (lost beacons) are dropped, as in
        any production join.
        """
        cdn_index: Dict[Tuple[str, int], CdnChunkRecord] = {
            (r.session_id, r.chunk_id): r for r in self.cdn_chunks
        }
        truth_index: Dict[Tuple[str, int], ChunkGroundTruth] = {
            (r.session_id, r.chunk_id): r for r in self.ground_truth
        }
        tcp_index: Dict[Tuple[str, int], List[TcpInfoRecord]] = {}
        for snapshot in self.tcp_snapshots:
            tcp_index.setdefault((snapshot.session_id, snapshot.chunk_id), []).append(snapshot)
        for snapshots in tcp_index.values():
            snapshots.sort(key=lambda s: s.t_ms)

        joined: List[JoinedChunk] = []
        for player in self.player_chunks:
            key = (player.session_id, player.chunk_id)
            cdn = cdn_index.get(key)
            if cdn is None:
                continue
            joined.append(
                JoinedChunk(
                    player=player,
                    cdn=cdn,
                    tcp=tuple(tcp_index.get(key, ())),
                    truth=truth_index.get(key),
                )
            )
        return joined

    def sessions(self) -> List[SessionView]:
        """Group the join by session; sessions missing either side are dropped."""
        cdn_sessions = {r.session_id: r for r in self.cdn_sessions}
        views: Dict[str, SessionView] = {}
        for player_session in self.player_sessions:
            cdn_session = cdn_sessions.get(player_session.session_id)
            if cdn_session is None:
                continue
            views[player_session.session_id] = SessionView(
                session_id=player_session.session_id,
                player_session=player_session,
                cdn_session=cdn_session,
            )
        for chunk in self.join_chunks():
            view = views.get(chunk.session_id)
            if view is not None:
                view.chunks.append(chunk)
        for view in views.values():
            view.chunks.sort(key=lambda c: c.chunk_id)
        return [views[sid] for sid in sorted(views)]

    def iter_sessions(self) -> Iterator[SessionView]:
        """Streaming equivalent of :meth:`sessions` (same views, same order).

        The uniform iteration surface shared with
        :class:`~repro.telemetry.spill.SpilledDataset`: analyses that loop
        over ``dataset.iter_sessions()`` run identically on in-memory and
        spilled telemetry, holding one session at a time instead of the
        full view list.
        """
        ordered = self.sorted()
        return iter_joined_sessions(
            ordered.player_sessions,
            ordered.cdn_sessions,
            ordered.player_chunks,
            ordered.cdn_chunks,
            ordered.tcp_snapshots,
            ordered.ground_truth,
        )

    # -- filtering / combining -------------------------------------------------

    def filter_sessions(self, keep_ids: Iterable[str]) -> "Dataset":
        """A new dataset containing only the given session ids."""
        keep: Set[str] = set(keep_ids)
        return Dataset(
            player_chunks=[r for r in self.player_chunks if r.session_id in keep],
            cdn_chunks=[r for r in self.cdn_chunks if r.session_id in keep],
            tcp_snapshots=[r for r in self.tcp_snapshots if r.session_id in keep],
            player_sessions=[r for r in self.player_sessions if r.session_id in keep],
            cdn_sessions=[r for r in self.cdn_sessions if r.session_id in keep],
            ground_truth=[r for r in self.ground_truth if r.session_id in keep],
        )

    def merge(self, other: "Dataset", canonicalize: bool = False) -> "Dataset":
        """Concatenate two datasets (e.g. multiple simulated days).

        With ``canonicalize=True`` the merged record lists are put in the
        canonical (session, chunk, time) order of :meth:`sorted`, so that
        datasets collected by differently-partitioned runs of the same
        workload compare equal with ``==``.
        """
        merged = Dataset(
            player_chunks=self.player_chunks + other.player_chunks,
            cdn_chunks=self.cdn_chunks + other.cdn_chunks,
            tcp_snapshots=self.tcp_snapshots + other.tcp_snapshots,
            player_sessions=self.player_sessions + other.player_sessions,
            cdn_sessions=self.cdn_sessions + other.cdn_sessions,
            ground_truth=self.ground_truth + other.ground_truth,
        )
        return merged.sorted() if canonicalize else merged

    @classmethod
    def merge_all(
        cls,
        datasets: Iterable["Dataset"],
        canonicalize: bool = True,
        assume_sorted: bool = False,
    ) -> "Dataset":
        """Merge any number of datasets; canonically ordered by default.

        This is the merge the sharded runner uses: shard outputs arrive in
        nondeterministic completion order, and canonicalization makes the
        result independent of both that order and the shard count.

        Canonicalization is a k-way :func:`heapq.merge` of per-input sorted
        lists — O(N log k) instead of concatenate-then-resort's O(N log N).
        Both ``heapq.merge`` and :meth:`sorted` are stable with ties broken
        by input position, so the result is identical to the old
        concatenate-then-stable-sort.  ``assume_sorted=True`` skips the
        per-input :meth:`sorted` pass for producers (shard workers) whose
        outputs are already canonically ordered.
        """
        inputs = list(datasets)
        if not canonicalize:
            merged = cls()
            for dataset in inputs:
                merged = merged.merge(dataset)
            return merged
        if not assume_sorted:
            inputs = [dataset.sorted() for dataset in inputs]
        by_chunk = lambda r: (r.session_id, r.chunk_id)  # noqa: E731
        by_session = lambda r: r.session_id  # noqa: E731

        def kway(lists, key):
            return list(heapq.merge(*lists, key=key))

        return cls(
            player_chunks=kway((d.player_chunks for d in inputs), by_chunk),
            cdn_chunks=kway((d.cdn_chunks for d in inputs), by_chunk),
            tcp_snapshots=kway(
                (d.tcp_snapshots for d in inputs),
                lambda r: (r.session_id, r.chunk_id, r.t_ms),
            ),
            player_sessions=kway((d.player_sessions for d in inputs), by_session),
            cdn_sessions=kway((d.cdn_sessions for d in inputs), by_session),
            ground_truth=kway((d.ground_truth for d in inputs), by_chunk),
        )

    def sorted(self) -> "Dataset":
        """A copy with every record list in canonical order.

        Per-chunk records sort by (session, chunk), TCP snapshots by
        (session, chunk, time), per-session records by session.  Sorting is
        stable, so records sharing a key keep their emission order.  Two
        runs of the same seeded workload that differ only in how sessions
        were interleaved (serial event loop vs. merged shards) become
        ``==``-comparable after canonicalization.
        """
        by_chunk = lambda r: (r.session_id, r.chunk_id)  # noqa: E731
        return Dataset(
            player_chunks=sorted(self.player_chunks, key=by_chunk),
            cdn_chunks=sorted(self.cdn_chunks, key=by_chunk),
            tcp_snapshots=sorted(
                self.tcp_snapshots, key=lambda r: (r.session_id, r.chunk_id, r.t_ms)
            ),
            player_sessions=sorted(self.player_sessions, key=lambda r: r.session_id),
            cdn_sessions=sorted(self.cdn_sessions, key=lambda r: r.session_id),
            ground_truth=sorted(self.ground_truth, key=by_chunk),
        )
