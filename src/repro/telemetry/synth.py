"""Vectorized synthetic telemetry at spill scale (bench + scale tests).

The event-loop simulator is the ground truth for *semantics*, but filling a
million-session spill through it takes hours.  The memory benchmark needs
volume with the right *shape*: schema-valid records, joinable sessions,
plausible value ranges.  This generator produces exactly that, straight in
columnar form — blocks of structured arrays fed to
:meth:`~repro.telemetry.spill.SpillWriter.add_array`, never a Python record
object — at millions of rows per second.

Determinism and sharding contract (mirrors docs/PARALLEL.md):

* sessions are generated in fixed **blocks** of :data:`BLOCK_SESSIONS`;
  block *b* draws from ``default_rng((seed, b))``, so a block's rows are
  identical no matter which process generates it;
* under sharding, shard *k* of *n* owns blocks ``b % n == k`` and writes
  its own spill directory; the lazily merged facade over all shard
  directories yields record-for-record the serial (``n_shards=1``) output,
  because session ids are zero-padded monotonic strings and the k-way
  merge orders by session id;
* generation is bounded-memory by construction: one block of columnar
  arrays is alive at a time, and the spill writer flushes sorted runs at
  its usual threshold.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from .columnar import COLUMN_SCHEMAS
from .spill import DEFAULT_SPILL_THRESHOLD_ROWS, SpilledDataset, SpillWriter

__all__ = ["BLOCK_SESSIONS", "synthesize_spill", "synthesize_sharded"]

#: sessions per deterministic generation block (the RNG-stream unit)
BLOCK_SESSIONS = 4096

#: the synthetic deployment: matches the default simulated fleet's scale
_N_SERVERS = 85
_N_POPS = 8
_BITRATE_LADDER = np.array(
    [235.0, 375.0, 560.0, 750.0, 1050.0, 1750.0, 2350.0, 3000.0, 4300.0, 5800.0]
)


def _session_ids(lo: int, hi: int) -> np.ndarray:
    """Zero-padded monotonic ids: lexicographic order == numeric order."""
    return np.char.mod("synth-%010d", np.arange(lo, hi)).astype("S24")


def _block(writer: SpillWriter, rng, lo: int, hi: int, chunks: int, tcp: int) -> None:
    """Generate sessions [lo, hi) as columnar arrays and feed the writer."""
    n = hi - lo
    ids = _session_ids(lo, hi)
    index = np.arange(lo, hi)
    start_ms = index * 50.0
    server_index = index % _N_SERVERS
    pop_index = server_index % _N_POPS
    server_id = np.char.mod("server-%03d", server_index).astype("S32")
    pop_id = np.char.mod("pop-%02d", pop_index).astype("S32")

    sessions = np.zeros(n, dtype=COLUMN_SCHEMAS["player_sessions"].dtype)
    sessions["session_id"] = ids
    sessions["client_ip"] = np.char.mod("10.%d.0.1", pop_index).astype("S48")
    sessions["user_agent"] = b"synthbench/1.0"
    sessions["video_id"] = rng.integers(0, 150, size=n)
    sessions["video_duration_ms"] = 120_000.0
    sessions["start_ms"] = start_ms
    sessions["os"] = b"linux"
    sessions["browser"] = b"synth"
    writer.add_array("player_sessions", sessions)

    cdn = np.zeros(n, dtype=COLUMN_SCHEMAS["cdn_sessions"].dtype)
    cdn["session_id"] = ids
    cdn["client_ip"] = sessions["client_ip"]
    cdn["user_agent"] = sessions["user_agent"]
    cdn["pop_id"] = pop_id
    cdn["server_id"] = server_id
    cdn["org"] = b"synth-isp"
    cdn["conn_type"] = b"cable"
    cdn["country"] = b"US"
    cdn["city"] = b"synthville"
    cdn["lat"] = 40.0
    cdn["lon"] = -74.0
    writer.add_array("cdn_sessions", cdn)

    rows = n * chunks
    chunk_sids = np.repeat(ids, chunks)
    chunk_ids = np.tile(np.arange(chunks), n)
    request_ms = np.repeat(start_ms, chunks) + chunk_ids * 4000.0
    srtt = rng.lognormal(mean=3.6, sigma=0.5, size=rows)  # ~35 ms median
    dfb = srtt + rng.lognormal(mean=2.8, sigma=0.6, size=rows)
    dlb = dfb + rng.lognormal(mean=5.5, sigma=0.5, size=rows)

    player = np.zeros(rows, dtype=COLUMN_SCHEMAS["player_chunks"].dtype)
    player["session_id"] = chunk_sids
    player["chunk_id"] = chunk_ids
    player["dfb_ms"] = dfb
    player["dlb_ms"] = dlb
    player["bitrate_kbps"] = rng.choice(_BITRATE_LADDER, size=rows)
    player["chunk_duration_ms"] = 4000.0
    rebuffered = rng.random(rows) < 0.02
    player["rebuffer_count"] = rebuffered.astype(np.int64)
    player["rebuffer_ms"] = np.where(rebuffered, rng.uniform(50.0, 900.0, rows), 0.0)
    player["visible"] = True
    player["avg_fps"] = 23.97
    player["total_frames"] = 96
    player["dropped_frames"] = rng.binomial(96, 0.002, size=rows)
    player["request_sent_ms"] = request_ms
    player["hw_rendered"] = True
    writer.add_array("player_chunks", player)

    served = np.zeros(rows, dtype=COLUMN_SCHEMAS["cdn_chunks"].dtype)
    served["session_id"] = chunk_sids
    served["chunk_id"] = chunk_ids
    hit = rng.random(rows)
    served["cache_status"] = np.select(
        [hit < 0.80, hit < 0.92], [b"hit_mem", b"hit_disk"], default=b"miss"
    )
    served["d_wait_ms"] = rng.uniform(0.0, 2.0, rows)
    served["d_open_ms"] = np.where(served["cache_status"] == b"hit_mem", 0.2, 6.0)
    served["d_read_ms"] = rng.uniform(0.5, 14.0, rows)
    served["d_be_ms"] = np.where(
        served["cache_status"] == b"miss", rng.uniform(40.0, 140.0, rows), 0.0
    )
    served["chunk_bytes"] = (player["bitrate_kbps"] * 500.0).astype(np.int64)
    served["server_id"] = np.repeat(server_id, chunks)
    served["pop_id"] = np.repeat(pop_id, chunks)
    served["served_at_ms"] = request_ms + dfb
    writer.add_array("cdn_chunks", served)

    tcp_rows = rows * tcp
    snapshots = np.zeros(tcp_rows, dtype=COLUMN_SCHEMAS["tcp_snapshots"].dtype)
    snapshots["session_id"] = np.repeat(chunk_sids, tcp)
    snapshots["chunk_id"] = np.repeat(chunk_ids, tcp)
    snapshots["t_ms"] = np.repeat(request_ms, tcp) + np.tile(
        np.arange(1, tcp + 1) * 500.0, rows
    )
    snapshots["cwnd_segments"] = rng.integers(10, 80, size=tcp_rows)
    snapshots["srtt_ms"] = np.repeat(srtt, tcp)
    snapshots["rttvar_ms"] = np.repeat(srtt, tcp) / 4.0
    snapshots["retx_total"] = rng.binomial(40, 0.01, size=tcp_rows)
    snapshots["mss"] = 1460
    snapshots["rto_ms"] = np.maximum(200.0, np.repeat(srtt, tcp) * 3.0)
    writer.add_array("tcp_snapshots", snapshots)

    truth = np.zeros(rows, dtype=COLUMN_SCHEMAS["ground_truth"].dtype)
    truth["session_id"] = chunk_sids
    truth["chunk_id"] = chunk_ids
    truth["true_dds_ms"] = rng.uniform(0.0, 3.0, rows)
    truth["true_rtt0_ms"] = srtt
    truth["transient_ds"] = False
    truth["segments_sent"] = served["chunk_bytes"] // 1460 + 1
    truth["segments_retx"] = np.minimum(
        truth["segments_sent"], rng.binomial(5, 0.02, size=rows)
    )
    truth["true_drop_fraction"] = truth["segments_retx"] / truth["segments_sent"]
    truth["network_dlb_ms"] = dlb - rng.uniform(0.0, 5.0, rows)
    truth["fault_labels"] = b""
    writer.add_array("ground_truth", truth)


def synthesize_spill(
    directory: Union[str, Path],
    n_sessions: int,
    *,
    seed: int = 0,
    chunks_per_session: int = 4,
    tcp_per_chunk: int = 2,
    threshold_rows: int = DEFAULT_SPILL_THRESHOLD_ROWS,
    n_shards: int = 1,
    shard_index: int = 0,
    metrics: Optional[Any] = None,
) -> SpilledDataset:
    """Fill *directory* with a synthetic spill of *n_sessions* sessions.

    With ``n_shards > 1`` only this shard's blocks are generated (see the
    module docstring for the ownership rule); run every shard and merge
    with :meth:`SpilledDataset.merge_all` — or call
    :func:`synthesize_sharded`, which does both.
    """
    if n_sessions <= 0:
        raise ValueError("n_sessions must be positive")
    if not 0 <= shard_index < n_shards:
        raise ValueError("shard_index must be within [0, n_shards)")
    writer = SpillWriter(directory, threshold_rows=threshold_rows, metrics=metrics)
    n_blocks = -(-n_sessions // BLOCK_SESSIONS)
    for block in range(n_blocks):
        if block % n_shards != shard_index:
            continue
        rng = np.random.default_rng((seed, block))
        lo = block * BLOCK_SESSIONS
        hi = min(n_sessions, lo + BLOCK_SESSIONS)
        _block(writer, rng, lo, hi, chunks_per_session, tcp_per_chunk)
    return writer.finalize()


def synthesize_sharded(
    directory: Union[str, Path], n_sessions: int, n_shards: int, **kwargs
) -> SpilledDataset:
    """Generate shard spills under ``<directory>/shard-<k>`` and merge them.

    The merged facade equals ``synthesize_spill(dir, n_sessions)`` record
    for record — the shard-identity property the scale tests assert.
    """
    shards = [
        synthesize_spill(
            Path(directory) / f"shard-{k:02d}",
            n_sessions,
            n_shards=n_shards,
            shard_index=k,
            **kwargs,
        )
        for k in range(n_shards)
    ]
    return SpilledDataset.merge_all(shards)
