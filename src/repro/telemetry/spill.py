"""Spill-to-disk telemetry: sorted columnar runs + a lazily merged facade.

At million-session scale a run's telemetry cannot live in RAM.  The
collector therefore spills: records buffer into columnar blocks
(:mod:`repro.telemetry.columnar`) and every ``threshold_rows`` rows a
**sorted run** is flushed to disk as one ``.npy`` file.  A versioned
``spill.json`` manifest describes the directory: format version, per-kind
dtype, and the ordered run list (docs/TELEMETRY.md, "Spill-file format").

:class:`SpilledDataset` is the read side — a bounded-memory stand-in for
:class:`~repro.telemetry.dataset.Dataset`:

* each record kind iterates as a k-way :func:`heapq.merge` of its runs,
  memory-mapped and materialized block-wise, yielding the exact canonical
  order of :meth:`Dataset.sorted` (runs are stable-sorted at flush time
  and flushed in emission order, so merge ties resolve to emission order —
  the same tie-break as one big stable sort);
* :meth:`iter_sessions` streams joined :class:`SessionView`s one session
  at a time via the merge-join in :mod:`repro.telemetry.dataset`;
* :meth:`merge_all` combines shard spill directories *lazily* — no row is
  read at merge time; the parent's iteration order (shard-index order,
  then run order) reproduces ``Dataset.merge_all``'s canonical output.

The facade is pickle-cheap (directory paths only), which is how shard
workers ship a million-session result through a multiprocessing pipe.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .columnar import (
    COLUMN_SCHEMAS,
    ITER_BLOCK_ROWS,
    SPILL_KINDS,
    iter_records,
    records_to_array,
    sort_array,
    sort_key,
)
from .dataset import Dataset, SessionView, iter_joined_sessions

__all__ = [
    "SPILL_FORMAT",
    "SPILL_FORMAT_VERSION",
    "SPILL_MANIFEST_FILENAME",
    "DEFAULT_SPILL_THRESHOLD_ROWS",
    "SpillError",
    "SpillWriter",
    "SpilledDataset",
]

SPILL_FORMAT = "repro.telemetry.spill"
#: bump when COLUMN_SCHEMAS or the manifest layout changes incompatibly
SPILL_FORMAT_VERSION = 1
SPILL_MANIFEST_FILENAME = "spill.json"
#: default rows buffered per kind before a sorted run is flushed.  256 Ki
#: rows of the widest kind (player_sessions/cdn_sessions, ~0.3 KB/row)
#: bound the write buffer around ~80 MB; see the RSS budget model in
#: docs/TELEMETRY.md.
DEFAULT_SPILL_THRESHOLD_ROWS = 262_144


class SpillError(ValueError):
    """A spill directory is missing, truncated, corrupt, or incompatible."""


def _schema_dtype_descr(kind: str) -> List[List[str]]:
    """JSON-able [name, dtype] pairs for the manifest (validation target)."""
    dtype = COLUMN_SCHEMAS[kind].dtype
    return [[name, dtype[name].str] for name in dtype.names]


class SpillWriter:
    """Accumulates records and flushes sorted columnar runs to *directory*.

    One writer per collection period per process.  ``add`` buffers record
    objects; ``add_array`` takes an already-columnar block (the synthetic
    generator's path) without materializing objects.  ``finalize`` flushes
    the tails, writes the manifest, and returns the read facade.  The
    directory must not already contain a spill — a writer never silently
    overwrites telemetry.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        threshold_rows: int = DEFAULT_SPILL_THRESHOLD_ROWS,
        metrics: Optional[Any] = None,
    ) -> None:
        if threshold_rows <= 0:
            raise ValueError("threshold_rows must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / SPILL_MANIFEST_FILENAME).exists():
            raise SpillError(
                f"spill directory {self.directory} already holds a spill; "
                "choose a fresh directory"
            )
        self.threshold_rows = threshold_rows
        self._buffers: Dict[str, list] = {kind: [] for kind in SPILL_KINDS}
        self._pending: Dict[str, List[np.ndarray]] = {kind: [] for kind in SPILL_KINDS}
        self._pending_rows: Dict[str, int] = {kind: 0 for kind in SPILL_KINDS}
        self._runs: Dict[str, List[Dict[str, int]]] = {kind: [] for kind in SPILL_KINDS}
        self._rows: Dict[str, int] = {kind: 0 for kind in SPILL_KINDS}
        self._finalized: Optional[SpilledDataset] = None
        # execution-scope observability (docs/TELEMETRY.md): counter
        # handles are bound once, here, and never read on the hot path
        if metrics is not None:
            self._runs_counter = metrics.counter("telemetry.spill.runs_total")
            self._rows_counter = metrics.counter("telemetry.spill.rows_total")
            self._bytes_counter = metrics.counter("telemetry.spill.bytes_total")
        else:
            self._runs_counter = self._rows_counter = self._bytes_counter = None

    def add(self, kind: str, record: object) -> None:
        buffer = self._buffers[kind]
        buffer.append(record)
        if len(buffer) + self._pending_rows[kind] >= self.threshold_rows:
            self._flush(kind)

    def add_many(self, kind: str, records: Sequence[object]) -> None:
        """Buffer a block of record objects in one call (one append, one
        threshold check) — the per-chunk emission path's batch entry."""
        if not records:
            return
        buffer = self._buffers[kind]
        buffer.extend(records)
        if len(buffer) + self._pending_rows[kind] >= self.threshold_rows:
            self._flush(kind)

    def add_array(self, kind: str, array: np.ndarray) -> None:
        """Buffer an already-columnar block (must match the kind's dtype)."""
        if array.dtype != COLUMN_SCHEMAS[kind].dtype:
            raise SpillError(
                f"{kind}: array dtype {array.dtype} does not match the "
                f"columnar schema {COLUMN_SCHEMAS[kind].dtype}"
            )
        if len(array) == 0:
            return
        self._pending[kind].append(array)
        self._pending_rows[kind] += len(array)
        if self._pending_rows[kind] + len(self._buffers[kind]) >= self.threshold_rows:
            self._flush(kind)

    def _flush(self, kind: str) -> None:
        """Write one sorted run holding everything buffered for *kind*."""
        blocks = list(self._pending[kind])
        if self._buffers[kind]:
            blocks.append(records_to_array(kind, self._buffers[kind]))
        self._buffers[kind].clear()
        self._pending[kind].clear()
        self._pending_rows[kind] = 0
        if not blocks:
            return
        run = sort_array(kind, np.concatenate(blocks) if len(blocks) > 1 else blocks[0])
        sequence = len(self._runs[kind])
        filename = f"{kind}-{sequence:05d}.npy"
        np.save(self.directory / filename, run)
        self._runs[kind].append({"file": filename, "rows": int(len(run))})
        self._rows[kind] += len(run)
        if self._runs_counter is not None:
            self._runs_counter.inc(1)
            self._rows_counter.inc(len(run))
            self._bytes_counter.inc((self.directory / filename).stat().st_size)

    def finalize(self) -> "SpilledDataset":
        """Flush tails, write ``spill.json``, return the read facade (idempotent)."""
        if self._finalized is not None:
            return self._finalized
        for kind in SPILL_KINDS:
            self._flush(kind)
        manifest = {
            "format": SPILL_FORMAT,
            "version": SPILL_FORMAT_VERSION,
            "kinds": {
                kind: {
                    "rows": self._rows[kind],
                    "dtype": _schema_dtype_descr(kind),
                    "runs": self._runs[kind],
                }
                for kind in SPILL_KINDS
            },
        }
        path = self.directory / SPILL_MANIFEST_FILENAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        self._finalized = SpilledDataset(self.directory)
        return self._finalized


def _load_manifest(directory: Path) -> Dict[str, Any]:
    path = directory / SPILL_MANIFEST_FILENAME
    if not path.is_file():
        raise SpillError(f"not a spill directory (no {SPILL_MANIFEST_FILENAME}): {directory}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SpillError(f"{path}: corrupt spill manifest: {error}") from error
    if manifest.get("format") != SPILL_FORMAT:
        raise SpillError(
            f"{path}: not a telemetry spill (format {manifest.get('format')!r})"
        )
    if manifest.get("version") != SPILL_FORMAT_VERSION:
        raise SpillError(
            f"{path}: spill format version {manifest.get('version')!r} is not "
            f"supported; this build reads version {SPILL_FORMAT_VERSION} only "
            "(docs/TELEMETRY.md, 'Schema + versioning')"
        )
    kinds = manifest.get("kinds")
    if not isinstance(kinds, dict) or set(kinds) != set(SPILL_KINDS):
        raise SpillError(f"{path}: manifest kinds {sorted(kinds or ())} != {sorted(SPILL_KINDS)}")
    for kind, entry in kinds.items():
        declared = [list(pair) for pair in entry.get("dtype", ())]
        if declared != _schema_dtype_descr(kind):
            raise SpillError(
                f"{path}: {kind} dtype {declared} does not match this build's "
                "columnar schema — regenerate the spill "
                "(docs/TELEMETRY.md, 'Schema + versioning')"
            )
    return manifest


def _open_run(directory: Path, kind: str, run: Dict[str, Any]) -> np.ndarray:
    """Memory-map one run file, validating existence, shape, and dtype."""
    path = directory / run["file"]
    if not path.is_file():
        raise SpillError(f"spill run missing: {path}")
    try:
        array = np.load(path, mmap_mode="r", allow_pickle=False)
    except Exception as error:  # truncated header / bad magic / short mmap
        raise SpillError(f"{path}: corrupt spill run: {error}") from error
    if array.dtype != COLUMN_SCHEMAS[kind].dtype:
        raise SpillError(f"{path}: dtype {array.dtype} != schema for {kind}")
    if array.ndim != 1 or len(array) != run["rows"]:
        raise SpillError(
            f"{path}: holds {array.shape} rows, manifest declares {run['rows']} "
            "— file truncated or manifest stale"
        )
    return array


class SpilledDataset:
    """Read facade over one or more spill directories.

    Implements the :class:`Dataset` surface the pipeline relies on —
    per-kind record iteration (as properties, in canonical order),
    ``n_sessions``/``n_chunks``, ``sessions()``/``iter_sessions()``,
    ``join_chunks()``, ``sorted()``, ``filter_sessions`` and
    ``to_dataset()`` — while never holding more than one materialized
    block per run in memory.  Construction validates the manifest and
    every run file (header, dtype, row count), so corruption surfaces at
    open time as :class:`SpillError`, not mid-analysis.
    """

    def __init__(self, directories: Union[str, Path, Sequence[Union[str, Path]]]) -> None:
        if isinstance(directories, (str, Path)):
            directories = (directories,)
        if not directories:
            raise SpillError("SpilledDataset needs at least one spill directory")
        self._dirs: Tuple[Path, ...] = tuple(Path(d) for d in directories)
        self._manifests = tuple(_load_manifest(d) for d in self._dirs)
        for directory, manifest in zip(self._dirs, self._manifests):
            for kind in SPILL_KINDS:
                for run in manifest["kinds"][kind]["runs"]:
                    _open_run(directory, kind, run)  # validate, then drop the map

    # -- pickling: paths only (workers ship spills through pipes) -----------

    def __reduce__(self):
        return (SpilledDataset, (tuple(str(d) for d in self._dirs),))

    @property
    def directories(self) -> Tuple[Path, ...]:
        return self._dirs

    # -- shape ---------------------------------------------------------------

    def _total_rows(self, kind: str) -> int:
        return sum(m["kinds"][kind]["rows"] for m in self._manifests)

    @property
    def n_sessions(self) -> int:
        return self._total_rows("player_sessions")

    @property
    def n_chunks(self) -> int:
        return self._total_rows("player_chunks")

    # -- per-kind streams (canonical order) ----------------------------------

    def run_arrays(self, kind: str) -> List[np.ndarray]:
        """The kind's sorted run arrays (memory-mapped), in run order.

        Run order is the merge-tie-break order: directories in
        construction order, runs in manifest order within each.  The
        vectorized read path (:mod:`repro.core.columnar_analysis`) slices
        these maps directly instead of materializing record objects.
        """
        return [
            _open_run(directory, kind, run)
            for directory, manifest in zip(self._dirs, self._manifests)
            for run in manifest["kinds"][kind]["runs"]
        ]

    def iter_kind(self, kind: str) -> Iterator[object]:
        """All records of *kind* in canonical order, lazily merged.

        The :data:`~repro.telemetry.columnar.ITER_BLOCK_ROWS`
        materialization budget is divided across the kind's open runs, so
        peak live-object count is bounded per *kind* — independent of how
        many runs (i.e. how many total rows) the spill holds.
        """
        arrays = self.run_arrays(kind)
        if not arrays:
            return iter(())
        if len(arrays) == 1:
            return iter_records(kind, arrays[0])
        block_rows = max(256, ITER_BLOCK_ROWS // len(arrays))
        streams = [iter_records(kind, array, block_rows) for array in arrays]
        return heapq.merge(*streams, key=sort_key(kind))

    @property
    def player_chunks(self) -> Iterator[object]:
        return self.iter_kind("player_chunks")

    @property
    def cdn_chunks(self) -> Iterator[object]:
        return self.iter_kind("cdn_chunks")

    @property
    def tcp_snapshots(self) -> Iterator[object]:
        return self.iter_kind("tcp_snapshots")

    @property
    def player_sessions(self) -> Iterator[object]:
        return self.iter_kind("player_sessions")

    @property
    def cdn_sessions(self) -> Iterator[object]:
        return self.iter_kind("cdn_sessions")

    @property
    def ground_truth(self) -> Iterator[object]:
        return self.iter_kind("ground_truth")

    # -- joining -------------------------------------------------------------

    def iter_sessions(self) -> Iterator[SessionView]:
        """Stream joined session views in session-id order, one at a time."""
        return iter_joined_sessions(
            self.player_sessions,
            self.cdn_sessions,
            self.player_chunks,
            self.cdn_chunks,
            self.tcp_snapshots,
            self.ground_truth,
        )

    def sessions(self) -> List[SessionView]:
        """Materialized :meth:`iter_sessions` (Dataset-compat fallback)."""
        return list(self.iter_sessions())

    def join_chunks(self) -> List[object]:
        return [chunk for view in self.iter_sessions() for chunk in view.chunks]

    # -- combining / conversion ----------------------------------------------

    def sorted(self) -> "SpilledDataset":
        """Already canonical: every stream merges sorted runs stably."""
        return self

    @classmethod
    def merge_all(cls, datasets: Sequence["SpilledDataset"]) -> "SpilledDataset":
        """Lazily combine spills (shard outputs) into one canonical view.

        No rows are read: the merged facade simply iterates the union of
        the inputs' runs.  Callers pass shards in sorted shard order, the
        same tie-break ``Dataset.merge_all`` uses.
        """
        directories: List[Path] = []
        for dataset in datasets:
            if not isinstance(dataset, SpilledDataset):
                raise SpillError(
                    "cannot lazily merge a spilled shard with an in-memory "
                    f"dataset ({type(dataset).__name__}); enable spilling on "
                    "every shard or on none"
                )
            directories.extend(dataset._dirs)
        return cls(directories)

    def filter_sessions(self, keep_ids) -> Dataset:
        """Materialize only the kept sessions into an in-memory Dataset."""
        keep = set(keep_ids)
        return Dataset(
            player_chunks=[r for r in self.player_chunks if r.session_id in keep],
            cdn_chunks=[r for r in self.cdn_chunks if r.session_id in keep],
            tcp_snapshots=[r for r in self.tcp_snapshots if r.session_id in keep],
            player_sessions=[r for r in self.player_sessions if r.session_id in keep],
            cdn_sessions=[r for r in self.cdn_sessions if r.session_id in keep],
            ground_truth=[r for r in self.ground_truth if r.session_id in keep],
        )

    def to_dataset(self) -> Dataset:
        """Fully materialize (tests / small spills only)."""
        return Dataset(
            player_chunks=list(self.player_chunks),
            cdn_chunks=list(self.cdn_chunks),
            tcp_snapshots=list(self.tcp_snapshots),
            player_sessions=list(self.player_sessions),
            cdn_sessions=list(self.cdn_sessions),
            ground_truth=list(self.ground_truth),
        )
