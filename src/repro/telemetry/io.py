"""Dataset persistence: JSON-lines serialization, one file per record type.

Keeps datasets inspectable with standard tooling (``jq``, pandas) and lets
the benchmark harness cache expensive simulations on disk.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Type, TypeVar, Union

from .dataset import Dataset
from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spill import SpilledDataset

__all__ = ["save_dataset", "load_dataset"]

_FILES = {
    "player_chunks": ("player_chunks.jsonl", PlayerChunkRecord),
    "cdn_chunks": ("cdn_chunks.jsonl", CdnChunkRecord),
    "tcp_snapshots": ("tcp_snapshots.jsonl", TcpInfoRecord),
    "player_sessions": ("player_sessions.jsonl", PlayerSessionRecord),
    "cdn_sessions": ("cdn_sessions.jsonl", CdnSessionRecord),
    "ground_truth": ("ground_truth.jsonl", ChunkGroundTruth),
}

T = TypeVar("T")


def _write_jsonl(path: Path, records: Iterable[object]) -> None:
    # Iterable, not List: a SpilledDataset's per-kind streams write through
    # here one record at a time without ever materializing the kind.
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(dataclasses.asdict(record)) + "\n")


def _read_jsonl(path: Path, record_type: Type[T]) -> List[T]:
    if not path.exists():
        return []
    field_types = {f.name: f.type for f in dataclasses.fields(record_type)}
    records: List[T] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {error}") from error
            unknown = set(payload) - set(field_types)
            if unknown:
                raise ValueError(f"{path}:{line_number}: unknown fields {sorted(unknown)}")
            if "tcp" not in path.name and isinstance(payload.get("tcp"), list):
                payload["tcp"] = tuple(payload["tcp"])
            records.append(record_type(**payload))
    return records


def save_dataset(
    dataset: Union[Dataset, "SpilledDataset"], directory: Union[str, Path]
) -> Path:
    """Write *dataset* under *directory* (created if needed); returns the path.

    Accepts either memory mode: an in-memory :class:`Dataset` or a
    :class:`~repro.telemetry.spill.SpilledDataset`, whose per-kind record
    streams serialize to the identical JSON-lines bytes (the facade
    yields records in canonical order; callers wanting byte-stable output
    across memory modes should pass ``dataset.sorted()`` as before).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for attribute, (filename, _) in _FILES.items():
        _write_jsonl(directory / filename, getattr(dataset, attribute))
    return directory


def load_dataset(directory: Union[str, Path]) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    kwargs = {}
    for attribute, (filename, record_type) in _FILES.items():
        kwargs[attribute] = _read_jsonl(directory / filename, record_type)
    return Dataset(**kwargs)
