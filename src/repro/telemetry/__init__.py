"""Instrumentation records, dataset container, and persistence."""

from .beacons import export_beacons_csv, import_beacons_csv
from .collector import TelemetryCollector
from .dataset import Dataset, JoinedChunk, SessionView
from .io import load_dataset, save_dataset
from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

__all__ = [
    "TelemetryCollector",
    "Dataset",
    "JoinedChunk",
    "SessionView",
    "load_dataset",
    "save_dataset",
    "export_beacons_csv",
    "import_beacons_csv",
    "PlayerChunkRecord",
    "CdnChunkRecord",
    "TcpInfoRecord",
    "PlayerSessionRecord",
    "CdnSessionRecord",
    "ChunkGroundTruth",
]
