"""Instrumentation records, dataset container, and persistence.

Two storage regimes behind one record facade (docs/TELEMETRY.md):
in-memory lists of record objects (:class:`Dataset`) and bounded-memory
columnar spills (:class:`SpilledDataset`), joined by the same streaming
merge-join (:func:`iter_joined_sessions`).
"""

from .beacons import export_beacons_csv, import_beacons_csv
from .collector import TelemetryCollector
from .columnar import COLUMN_SCHEMAS, ColumnOverflowError
from .dataset import Dataset, JoinedChunk, SessionView, iter_joined_sessions
from .io import load_dataset, save_dataset
from .spill import SpillError, SpilledDataset, SpillWriter
from .synth import synthesize_sharded, synthesize_spill
from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

__all__ = [
    "TelemetryCollector",
    "Dataset",
    "JoinedChunk",
    "SessionView",
    "iter_joined_sessions",
    "COLUMN_SCHEMAS",
    "ColumnOverflowError",
    "SpillWriter",
    "SpilledDataset",
    "SpillError",
    "synthesize_spill",
    "synthesize_sharded",
    "load_dataset",
    "save_dataset",
    "export_beacons_csv",
    "import_beacons_csv",
    "PlayerChunkRecord",
    "CdnChunkRecord",
    "TcpInfoRecord",
    "PlayerSessionRecord",
    "CdnSessionRecord",
    "ChunkGroundTruth",
]
