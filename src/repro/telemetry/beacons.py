"""CSV beacon/log ingestion: run the pipeline on your own telemetry.

Production deployments rarely emit this library's JSONL; they have player
beacons and CDN access logs in tabular form.  This module defines a small
CSV schema per record type (column names match
:mod:`repro.telemetry.records` fields), with validation and line-precise
error reporting, so external data can flow into the same analysis
pipeline:

    player_chunks.csv, cdn_chunks.csv, tcp_snapshots.csv,
    player_sessions.csv, cdn_sessions.csv

Any file may be absent (analyses degrade as under beacon loss); extra
columns are rejected rather than silently dropped — schema drift in
telemetry pipelines should fail loudly.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Dict, List, Type, TypeVar, Union, get_type_hints

from .dataset import Dataset
from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

__all__ = ["export_beacons_csv", "import_beacons_csv"]

_FILES: Dict[str, tuple] = {
    "player_chunks": ("player_chunks.csv", PlayerChunkRecord),
    "cdn_chunks": ("cdn_chunks.csv", CdnChunkRecord),
    "tcp_snapshots": ("tcp_snapshots.csv", TcpInfoRecord),
    "player_sessions": ("player_sessions.csv", PlayerSessionRecord),
    "cdn_sessions": ("cdn_sessions.csv", CdnSessionRecord),
}

T = TypeVar("T")

_TRUE_STRINGS = {"true", "1", "yes", "t"}
_FALSE_STRINGS = {"false", "0", "no", "f"}


def _coerce(value: str, target_type: type, context: str):
    """Convert one CSV cell to the record field's type."""
    if target_type is float:
        return float(value)
    if target_type is int:
        return int(float(value))  # tolerate "3.0"
    if target_type is bool:
        lowered = value.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ValueError(f"{context}: {value!r} is not a boolean")
    return value  # str


def _read_csv(path: Path, record_type: Type[T]) -> List[T]:
    hints = get_type_hints(record_type)
    field_names = [f.name for f in dataclasses.fields(record_type)]
    required = {
        f.name
        for f in dataclasses.fields(record_type)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING  # type: ignore[misc]
    }
    records: List[T] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            return []
        unknown = set(reader.fieldnames) - set(field_names)
        if unknown:
            raise ValueError(f"{path}: unknown columns {sorted(unknown)}")
        missing = required - set(reader.fieldnames)
        if missing:
            raise ValueError(f"{path}: missing required columns {sorted(missing)}")
        for line_number, row in enumerate(reader, start=2):
            kwargs = {}
            for name, raw in row.items():
                if raw is None or raw == "":
                    if name in required:
                        raise ValueError(
                            f"{path}:{line_number}: empty required field {name!r}"
                        )
                    continue
                try:
                    kwargs[name] = _coerce(raw, hints[name], f"{path}:{line_number}")
                except ValueError as error:
                    raise ValueError(
                        f"{path}:{line_number}: bad value for {name!r}: {error}"
                    ) from error
            records.append(record_type(**kwargs))
    return records


def _write_csv(path: Path, records: List[object], record_type: Type[T]) -> None:
    field_names = [f.name for f in dataclasses.fields(record_type)]
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=field_names)
        writer.writeheader()
        for record in records:
            writer.writerow(dataclasses.asdict(record))


def export_beacons_csv(dataset: Dataset, directory: Union[str, Path]) -> Path:
    """Write *dataset* as the CSV beacon schema (ground truth is omitted —
    real telemetry has none)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for attribute, (filename, record_type) in _FILES.items():
        _write_csv(directory / filename, getattr(dataset, attribute), record_type)
    return directory


def import_beacons_csv(directory: Union[str, Path]) -> Dataset:
    """Load a CSV beacon directory into a :class:`Dataset`.

    Missing files yield empty record lists; malformed files raise
    :class:`ValueError` with file/line context.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"beacon directory not found: {directory}")
    kwargs = {}
    for attribute, (filename, record_type) in _FILES.items():
        path = directory / filename
        kwargs[attribute] = _read_csv(path, record_type) if path.exists() else []
    return Dataset(**kwargs)
