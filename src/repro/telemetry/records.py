"""Instrumentation records — the paper's Tables 2 and 3, as dataclasses.

Two sides emit records independently, exactly as in the paper:

* the **player** beacons per-chunk delivery milestones (D_FB, D_LB, bitrate)
  and rendering/playout stats (rebuffering, visibility, frame rates), plus
  one per-session metadata beacon;
* the **CDN** logs per-chunk serving latency decomposition and cache
  status, per-session connection metadata, and periodic ``tcp_info``
  snapshots from the kernel.

They share only the (session id, chunk id) join keys.  A separate
:class:`ChunkGroundTruth` record carries simulator-only truth (true
download-stack delay, true rtt0, ...) used to *validate* the analysis —
the analysis itself never reads it.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

__all__ = [
    "PlayerChunkRecord",
    "CdnChunkRecord",
    "TcpInfoRecord",
    "PlayerSessionRecord",
    "CdnSessionRecord",
    "ChunkGroundTruth",
]

if sys.version_info >= (3, 10):
    # ``__slots__`` shrinks each record (no per-instance __dict__) — at
    # hundreds of thousands of records per run the memory and attribute-
    # lookup savings are material.  Semantics (eq/hash/repr/pickle) are
    # unchanged.
    def _record(cls):
        return dataclass(frozen=True, slots=True)(cls)

else:  # Python 3.9: dataclasses grow slots=True only in 3.10
    def _record(cls):
        return dataclass(frozen=True)(cls)


@_record
class PlayerChunkRecord:
    """Player-side per-chunk beacon (Table 2, 'Player' rows)."""

    session_id: str
    chunk_id: int
    dfb_ms: float  # first-byte delay, GET sent -> first byte at player
    dlb_ms: float  # last-byte delay, first byte -> last byte at player
    bitrate_kbps: float
    chunk_duration_ms: float
    rebuffer_count: int  # bufcount: stalls ended by this chunk
    rebuffer_ms: float  # bufdur
    visible: bool  # vis
    avg_fps: float  # avgfr
    dropped_frames: int  # dropfr
    total_frames: int
    request_sent_ms: float  # wall-clock when the GET left the player
    #: whether the chunk was rendered in hardware (GPU) — the player knows
    #: its rendering mode (StageVideo vs software) and Fig. 19's first bar
    #: reports hardware-rendered chunks separately
    hw_rendered: bool = False

    @property
    def download_ms(self) -> float:
        """Total time from request to last byte."""
        return self.dfb_ms + self.dlb_ms

    @property
    def download_rate(self) -> float:
        """Seconds of video per second of download (Fig. 19's x-axis)."""
        if self.download_ms <= 0:
            return float("inf")
        return self.chunk_duration_ms / self.download_ms

    @property
    def dropped_fraction(self) -> float:
        if self.total_frames <= 0:
            return 0.0
        return self.dropped_frames / self.total_frames


@_record
class CdnChunkRecord:
    """CDN-side per-chunk log (Table 2, 'CDN (App layer)' row)."""

    session_id: str
    chunk_id: int
    d_wait_ms: float
    d_open_ms: float
    d_read_ms: float
    d_be_ms: float
    cache_status: str  # "hit_ram" | "hit_disk" | "miss"
    chunk_bytes: int
    server_id: str
    pop_id: str
    served_at_ms: float

    @property
    def d_cdn_ms(self) -> float:
        """The paper's D_CDN = D_wait + D_open + D_read."""
        return self.d_wait_ms + self.d_open_ms + self.d_read_ms

    @property
    def total_server_ms(self) -> float:
        """D_CDN + D_BE: full server-side contribution to D_FB."""
        return self.d_cdn_ms + self.d_be_ms

    @property
    def is_hit(self) -> bool:
        return self.cache_status != "miss"


@_record
class TcpInfoRecord:
    """One kernel ``tcp_info`` snapshot (Table 2, 'CDN (TCP layer)' row)."""

    session_id: str
    chunk_id: int
    t_ms: float
    cwnd_segments: int
    srtt_ms: float
    rttvar_ms: float
    retx_total: int  # cumulative retransmissions on the connection
    mss: int
    #: retransmission timeout (paper footnote 5: 200 ms + srtt + 4*rttvar);
    #: defaulted so datasets persisted before the field existed still load
    rto_ms: float = 0.0

    @property
    def throughput_kbps(self) -> float:
        """Eq. 3: MSS * CWND / SRTT."""
        if self.srtt_ms <= 0:
            return 0.0
        return self.cwnd_segments * self.mss * 8.0 / self.srtt_ms


@_record
class PlayerSessionRecord:
    """Player-side per-session beacon (Table 3, 'Player' row)."""

    session_id: str
    client_ip: str  # the client's own view of its IP
    user_agent: str
    video_id: int
    video_duration_ms: float
    start_ms: float
    os: str
    browser: str


@_record
class CdnSessionRecord:
    """CDN-side per-session log (Table 3, 'CDN' row)."""

    session_id: str
    client_ip: str  # as seen by the CDN (a proxy's IP if proxied)
    user_agent: str
    pop_id: str
    server_id: str
    org: str  # AS / ISP / enterprise organization
    conn_type: str
    country: str
    city: str
    lat: float
    lon: float


@_record
class ChunkGroundTruth:
    """Simulator-only truth per chunk — validation data, never analysis input."""

    session_id: str
    chunk_id: int
    true_dds_ms: float  # actual download-stack latency in D_FB
    true_rtt0_ms: float  # actual network RTT of the request round
    transient_ds: bool  # was this a download-stack buffering burst?
    segments_sent: int
    segments_retx: int
    true_drop_fraction: float
    network_dlb_ms: float  # D_LB before download-stack distortion
    #: injected faults that actually struck this chunk, as a canonical
    #: comma-joined "class:id" string ("" = no fault).  A plain string so
    #: the record JSON-round-trips unchanged (docs/FAULTS.md); parse with
    #: :func:`repro.core.faultscore.parse_fault_labels`.
    fault_labels: str = ""
