"""Telemetry collector: where both sides' instrumentation lands.

The simulator's player and CDN emit records into one collector (in
production these are separate beacon/log pipelines joined offline; the
collector models the post-ingestion state).  It also implements the §2.1
sampling discipline for ``tcp_info``: snapshots arrive on a 500 ms grid
during transfers, and the collector guarantees at least one snapshot per
chunk by accepting a forced end-of-chunk sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .dataset import Dataset
from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)

__all__ = ["TelemetryCollector"]


@dataclass
class TelemetryCollector:
    """Accumulates records during a simulation run."""

    _player_chunks: List[PlayerChunkRecord] = field(default_factory=list)
    _cdn_chunks: List[CdnChunkRecord] = field(default_factory=list)
    _tcp: List[TcpInfoRecord] = field(default_factory=list)
    _player_sessions: List[PlayerSessionRecord] = field(default_factory=list)
    _cdn_sessions: List[CdnSessionRecord] = field(default_factory=list)
    _truth: List[ChunkGroundTruth] = field(default_factory=list)
    #: when False, ground truth is not recorded (blind dataset)
    record_ground_truth: bool = True

    def add_player_chunk(self, record: PlayerChunkRecord) -> None:
        self._player_chunks.append(record)

    def add_cdn_chunk(self, record: CdnChunkRecord) -> None:
        self._cdn_chunks.append(record)

    def add_tcp_snapshot(self, record: TcpInfoRecord) -> None:
        self._tcp.append(record)

    def add_player_session(self, record: PlayerSessionRecord) -> None:
        self._player_sessions.append(record)

    def add_cdn_session(self, record: CdnSessionRecord) -> None:
        self._cdn_sessions.append(record)

    def add_ground_truth(self, record: ChunkGroundTruth) -> None:
        if self.record_ground_truth:
            self._truth.append(record)

    def dataset(self) -> Dataset:
        """Freeze the collected records into a :class:`Dataset`."""
        return Dataset(
            player_chunks=list(self._player_chunks),
            cdn_chunks=list(self._cdn_chunks),
            tcp_snapshots=list(self._tcp),
            player_sessions=list(self._player_sessions),
            cdn_sessions=list(self._cdn_sessions),
            ground_truth=list(self._truth),
        )
