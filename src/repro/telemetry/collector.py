"""Telemetry collector: where both sides' instrumentation lands.

The simulator's player and CDN emit records into one collector (in
production these are separate beacon/log pipelines joined offline; the
collector models the post-ingestion state).  It also implements the §2.1
sampling discipline for ``tcp_info``: snapshots arrive on a 500 ms grid
during transfers, and the collector guarantees at least one snapshot per
chunk by accepting a forced end-of-chunk sample.

Memory modes (docs/TELEMETRY.md):

* **in-memory** (default) — records accumulate as Python objects and
  :meth:`dataset` freezes them into a :class:`Dataset`, exactly the
  historical behavior;
* **spill** (``spill_dir`` set) — records stream into a
  :class:`~repro.telemetry.spill.SpillWriter`, which flushes sorted
  columnar runs to disk every ``spill_threshold_rows`` rows, and
  :meth:`dataset` returns the bounded-memory
  :class:`~repro.telemetry.spill.SpilledDataset` facade instead.  The
  records are identical either way; only their residence differs.

``discard=True`` drops every record on arrival — the warmup period's
collector, whose telemetry was always thrown away after the fact, now
never holds it at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Sequence, Union

from .dataset import Dataset
from .records import (
    CdnChunkRecord,
    CdnSessionRecord,
    ChunkGroundTruth,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)
from .spill import DEFAULT_SPILL_THRESHOLD_ROWS, SpilledDataset, SpillWriter

__all__ = ["TelemetryCollector"]


@dataclass
class TelemetryCollector:
    """Accumulates records during a simulation run."""

    _player_chunks: List[PlayerChunkRecord] = field(default_factory=list)
    _cdn_chunks: List[CdnChunkRecord] = field(default_factory=list)
    _tcp: List[TcpInfoRecord] = field(default_factory=list)
    _player_sessions: List[PlayerSessionRecord] = field(default_factory=list)
    _cdn_sessions: List[CdnSessionRecord] = field(default_factory=list)
    _truth: List[ChunkGroundTruth] = field(default_factory=list)
    #: when False, ground truth is not recorded (blind dataset)
    record_ground_truth: bool = True
    #: spill mode: directory for sorted columnar runs (None = in-memory)
    spill_dir: Optional[Union[str, Path]] = None
    #: rows buffered per record kind before a sorted run is flushed
    spill_threshold_rows: int = DEFAULT_SPILL_THRESHOLD_ROWS
    #: drop every record on arrival (warmup periods: telemetry is never read)
    discard: bool = False
    #: optional MetricsRegistry for the telemetry.* execution counters
    metrics: Optional[Any] = None

    def __post_init__(self) -> None:
        self._writer: Optional[SpillWriter] = None
        if self.spill_dir is not None and not self.discard:
            self._writer = SpillWriter(
                self.spill_dir,
                threshold_rows=self.spill_threshold_rows,
                metrics=self.metrics,
            )

    def add_player_chunk(self, record: PlayerChunkRecord) -> None:
        if self.discard:
            return
        if self._writer is not None:
            self._writer.add("player_chunks", record)
        else:
            self._player_chunks.append(record)

    def add_cdn_chunk(self, record: CdnChunkRecord) -> None:
        if self.discard:
            return
        if self._writer is not None:
            self._writer.add("cdn_chunks", record)
        else:
            self._cdn_chunks.append(record)

    def add_tcp_snapshot(self, record: TcpInfoRecord) -> None:
        if self.discard:
            return
        if self._writer is not None:
            self._writer.add("tcp_snapshots", record)
        else:
            self._tcp.append(record)

    def add_tcp_snapshots(self, records: Sequence[TcpInfoRecord]) -> None:
        """Append one chunk's snapshot block in a single call.

        The 500 ms tcp_info grid makes snapshots the highest-volume kind
        by far; the block append costs one ``extend`` (or one spill-buffer
        extend + threshold check) instead of a Python call per record.
        """
        if self.discard or not records:
            return
        if self._writer is not None:
            self._writer.add_many("tcp_snapshots", records)
        else:
            self._tcp.extend(records)

    def add_player_session(self, record: PlayerSessionRecord) -> None:
        if self.discard:
            return
        if self._writer is not None:
            self._writer.add("player_sessions", record)
        else:
            self._player_sessions.append(record)

    def add_cdn_session(self, record: CdnSessionRecord) -> None:
        if self.discard:
            return
        if self._writer is not None:
            self._writer.add("cdn_sessions", record)
        else:
            self._cdn_sessions.append(record)

    def add_ground_truth(self, record: ChunkGroundTruth) -> None:
        if self.discard or not self.record_ground_truth:
            return
        if self._writer is not None:
            self._writer.add("ground_truth", record)
        else:
            self._truth.append(record)

    def dataset(self) -> Union[Dataset, SpilledDataset]:
        """Freeze the collected records into a dataset.

        In-memory mode returns a :class:`Dataset`; spill mode finalizes
        the writer (flushing tails + the versioned manifest) and returns
        the :class:`SpilledDataset` facade over the same records.
        """
        if self._writer is not None:
            return self._writer.finalize()
        return Dataset(
            player_chunks=list(self._player_chunks),
            cdn_chunks=list(self._cdn_chunks),
            tcp_snapshots=list(self._tcp),
            player_sessions=list(self._player_sessions),
            cdn_sessions=list(self._cdn_sessions),
            ground_truth=list(self._truth),
        )
