"""The unified run facade: one entry point for every way to simulate.

Historically there were three divergent call paths into the simulator —
``Simulator(config).run()`` (serial), ``ParallelSimulator(config).run()``
(sharded), and ``execute_periods`` / ``run_periods`` (multi-period
scenarios) — each returning a different shape.  :func:`run` subsumes all
three behind one signature::

    from repro import run, SimulationConfig

    result = run(SimulationConfig(n_sessions=500, workers=4))
    result.dataset            # canonical telemetry
    result.manifest()         # run manifest (identity + execution)
    result.shard_reports      # per-shard execution telemetry
    result.servers            # end-of-run fleet state

    # multi-period (scenario) runs: one dataset per period
    result = run(periods=SCENARIOS["flash-crowd"](seed=29))
    result.period("baseline"), result.period("incident")

    # fault injection: a FaultSpec object or a JSON spec path
    result = run(config, faults="examples/fault_cdn_degradation.json")

Dispatch is driven entirely by the config's execution knobs through two
explicit registries: ``config.workers`` picks the process-level executor
from ``_EXECUTORS`` (serial vs sharded; for period lists, the first
period's config), and ``config.engine`` picks the stepping engine per
period from :data:`repro.engine.ENGINE_REGISTRY` (event loop vs fleet
cohorts).  The same call scales from the classic in-process event loop to
the sharded fleet runner without changing shape — and the determinism
contract guarantees identical telemetry on every path (docs/PARALLEL.md,
docs/PERFORMANCE.md).

``Simulator`` / ``ParallelSimulator`` remain public for advanced use
(custom worlds, shard specs, chaos hooks), but new code and docs should go
through :func:`run`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .cdn.server import CdnServer
from .faults import FaultSpec
from .obs.manifest import (
    metrics_document,
    run_manifest,
    save_run_manifest,
    write_metrics_document,
)
from .obs.registry import MetricsRegistry
from .obs.trace import TraceRecorder, write_trace
from .simulation.config import SimulationConfig
from .simulation.driver import SimulationResult, Simulator
from .simulation.parallel import (
    ParallelSimulator,
    PeriodSpec,
    ShardReport,
    execute_periods,
)
from .telemetry.dataset import Dataset
from .telemetry.io import save_dataset

__all__ = ["RunResult", "run"]

FaultsArg = Union[FaultSpec, str, Path, None]


@dataclass
class RunResult:
    """Everything a finished :func:`run` produced.

    ``datasets`` holds one dataset per period (a plain single-config run
    is one period).  ``simulation`` is the combined
    :class:`~repro.simulation.driver.SimulationResult` handle — config,
    end-of-run fleet state, shard reports, metrics registry — that the
    observability emitters consume.  ``simulator`` is the live serial
    simulator when one was used (its caches can keep running), None for
    sharded runs whose fleet state was merged back from workers.
    """

    datasets: List[Dataset]
    labels: Tuple[str, ...]
    simulation: SimulationResult
    simulator: Optional[Simulator] = None

    # -- convenience views ---------------------------------------------------

    @property
    def dataset(self) -> Dataset:
        """The single-period dataset (raises on multi-period runs)."""
        if len(self.datasets) != 1:
            raise ValueError(
                f"run produced {len(self.datasets)} period datasets "
                f"{self.labels!r}; use .datasets or .period(label)"
            )
        return self.datasets[0]

    def period(self, label: str) -> Dataset:
        """The dataset of the period labeled *label*."""
        for dataset, period_label in zip(self.datasets, self.labels):
            if period_label == label:
                return dataset
        raise KeyError(f"no period labeled {label!r}; have {self.labels!r}")

    @property
    def config(self) -> SimulationConfig:
        return self.simulation.config

    @property
    def servers(self) -> Dict[str, CdnServer]:
        """End-of-run fleet state (merged across shards when sharded)."""
        return self.simulation.servers

    @property
    def deployment(self):
        """The CDN deployment (PoPs, geography) the run was built on."""
        return self.simulation.deployment

    @property
    def shard_reports(self) -> List[ShardReport]:
        return self.simulation.shard_reports

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        return self.simulation.metrics

    @property
    def trace(self) -> Optional[TraceRecorder]:
        """The causal-trace recorder (None unless ``trace_sample > 0``)."""
        return self.simulation.trace

    # -- observability artifacts ---------------------------------------------

    def manifest(self, wall_time_s: Optional[float] = None) -> Dict[str, object]:
        """The run manifest (identity + execution), as a plain dict."""
        return run_manifest(self.simulation, wall_time_s)

    def metrics_document(self) -> Dict[str, object]:
        """The deterministic metrics document (identity + registry)."""
        return metrics_document(self.simulation)

    def save(
        self, directory: Union[str, Path], wall_time_s: Optional[float] = None
    ) -> Path:
        """Persist the dataset plus ``manifest.json`` into *directory*.

        Multi-period runs persist each period into a ``<label>/``
        subdirectory (manifest at the top level).  Returns the directory.

        Datasets are persisted in canonical record order (``sorted()``),
        so the JSONL bytes are identical for any ``workers`` count and
        either memory mode (docs/TELEMETRY.md) — sharded merges and
        spilled datasets are already canonical; serial in-memory runs are
        sorted here.
        """
        directory = Path(directory)
        if len(self.datasets) == 1:
            save_dataset(self.datasets[0].sorted(), directory)
        else:
            for index, (dataset, label) in enumerate(zip(self.datasets, self.labels)):
                save_dataset(
                    dataset.sorted(), directory / (label or f"period-{index}")
                )
        save_run_manifest(self.simulation, directory, wall_time_s=wall_time_s)
        return directory

    def write_metrics_document(self, path: Union[str, Path]) -> Path:
        return write_metrics_document(self.simulation, path)

    def write_trace(self, path: Union[str, Path]) -> Tuple[Path, Path]:
        """Export the causal trace as JSONL + Chrome trace-event JSON.

        The JSONL bytes are identical for any ``--workers`` value (the
        determinism contract, docs/OBSERVABILITY.md).  Returns the
        (jsonl, chrome) paths; raises if the run was not traced.
        """
        if self.trace is None:
            raise ValueError(
                "run was not traced; set config.trace_sample > 0 "
                "(CLI: --trace-out/--trace-sample)"
            )
        return write_trace(self.trace.events(), path)


def _resolve_faults(faults: FaultsArg) -> Optional[FaultSpec]:
    if faults is None:
        return None
    if isinstance(faults, FaultSpec):
        return faults
    return FaultSpec.load(faults)


def run(
    config: Optional[SimulationConfig] = None,
    *,
    periods: Optional[Sequence[PeriodSpec]] = None,
    faults: FaultsArg = None,
) -> RunResult:
    """Run a simulation — serial or sharded, single- or multi-period.

    Exactly one of ``config`` (a single collection period; None means the
    default config) or ``periods`` (a scenario-style list of
    :class:`~repro.simulation.parallel.PeriodSpec`) describes the
    workload.  ``faults`` optionally injects a
    :class:`~repro.faults.FaultSpec` (or a path to its JSON form) into the
    run — for period lists, into every period.  Execution mode follows the
    config: ``workers > 1`` shards the run with telemetry identical to the
    serial path (docs/PARALLEL.md).
    """
    spec = _resolve_faults(faults)
    if periods is not None:
        if config is not None:
            raise ValueError(
                "pass either config (single period) or periods (scenario), not both"
            )
        return _run_periods(list(periods), spec)
    config = config or SimulationConfig()
    if spec is not None:
        config = replace(config, faults=spec)
    return _EXECUTORS[_execution_mode(config)](config)


def _execution_mode(config: SimulationConfig) -> str:
    """The process-level execution mode ("serial" | "sharded").

    Orthogonal to the stepping engine: ``config.engine`` selects *how each
    period steps* (resolved per period inside the driver via
    :data:`repro.engine.ENGINE_REGISTRY`), while the mode here selects
    *which processes* run those periods.
    """
    return "sharded" if config.workers > 1 else "serial"


def _execute_serial(config: SimulationConfig) -> RunResult:
    simulator = Simulator(config)
    result = simulator.run()
    return RunResult(
        datasets=[result.dataset], labels=("",), simulation=result, simulator=simulator
    )


def _execute_sharded(config: SimulationConfig) -> RunResult:
    result = ParallelSimulator(config).run()
    return RunResult(datasets=[result.dataset], labels=("",), simulation=result)


def _merge_periods(datasets: List[Dataset]) -> Dataset:
    """Combine per-period datasets into one, honouring the memory mode.

    Spilled periods merge lazily — the combined facade iterates every
    period's runs without materializing rows (docs/TELEMETRY.md)."""
    from .telemetry.spill import SpilledDataset

    if datasets and isinstance(datasets[0], SpilledDataset):
        return SpilledDataset.merge_all(datasets)
    return Dataset.merge_all(datasets, canonicalize=True)


def _execute_periods_serial(
    periods: List[PeriodSpec], exec_config: SimulationConfig, labels: Tuple[str, ...]
) -> RunResult:
    metrics = MetricsRegistry()
    datasets, simulator = execute_periods(periods, metrics=metrics)
    simulation = SimulationResult(
        dataset=_merge_periods(datasets),
        catalog=simulator.catalog,
        population=simulator.population,
        deployment=simulator.deployment,
        servers=simulator.servers,
        config=exec_config,
        shard_reports=[],
        metrics=metrics,
        trace=simulator.trace,
    )
    return RunResult(
        datasets=datasets, labels=labels, simulation=simulation, simulator=simulator
    )


def _execute_periods_sharded(
    periods: List[PeriodSpec], exec_config: SimulationConfig, labels: Tuple[str, ...]
) -> RunResult:
    runner = ParallelSimulator(exec_config)
    datasets, servers, reports = runner.run_periods(periods)
    # Rebuild the (deterministic) world for the result handle: the
    # workers built their own copies, which died with them.
    from .simulation.driver import build_world

    world = build_world(exec_config)
    simulation = SimulationResult(
        dataset=_merge_periods(datasets),
        catalog=world.catalog,
        population=world.population,
        deployment=world.deployment,
        servers=servers,
        config=exec_config,
        shard_reports=reports,
        metrics=runner.metrics,
        trace=runner.trace,
    )
    return RunResult(datasets=datasets, labels=labels, simulation=simulation)


#: Execution-mode dispatch tables.  Like :data:`repro.engine.ENGINE_REGISTRY`
#: for stepping engines, these replace per-call-site if/else chains: adding
#: an execution mode is a new entry here, and :func:`run` stays closed.
_EXECUTORS: Dict[str, Callable[[SimulationConfig], RunResult]] = {
    "serial": _execute_serial,
    "sharded": _execute_sharded,
}

_PERIOD_EXECUTORS: Dict[
    str, Callable[[List[PeriodSpec], SimulationConfig, Tuple[str, ...]], RunResult]
] = {
    "serial": _execute_periods_serial,
    "sharded": _execute_periods_sharded,
}


def _run_periods(
    periods: List[PeriodSpec], spec: Optional[FaultSpec]
) -> RunResult:
    if not periods:
        raise ValueError("periods must be non-empty")
    if spec is not None:
        periods = [
            replace(period, config=replace(period.config, faults=spec))
            for period in periods
        ]
    exec_config = periods[0].config
    labels = tuple(period.label for period in periods)
    return _PERIOD_EXECUTORS[_execution_mode(exec_config)](
        periods, exec_config, labels
    )
