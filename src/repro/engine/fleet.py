"""Fleet-vectorized stepping engine: cohorts of calm sessions in lockstep.

Sessions couple only through their CDN server (cache contents, load
EWMA), so the global event heap is overkill: the workload decomposes into
independent per-server groups, and each group can be advanced to
completion on its own — exactly the decomposition the shard runner
exploits across processes, applied in-process.  Within a group the engine
keeps the **cohort**: numpy state arrays (due time, congestion window,
smoothed RTT, RTO, playback-buffer level, chunk index) over the group's
calm sessions, and picks each next event with an ``argmin`` over the due
array instead of heap churn.  Sessions leave the cohort (are *demoted* to
a per-group scalar event heap) while they are trace-sampled, inside an
active fault epoch, inside a congestion episode, or switching bitrate —
and are *promoted* back as soon as they are calm again.

Determinism is structural, not re-derived: both engines execute the same
``SessionActor`` code against the same per-session RNG streams, and
within a group events replay in exactly the event loop's ``(time,
schedule order)`` order.  Groups are mutually independent, so advancing
them sequentially instead of interleaved changes no record: datasets,
metrics documents, and traces are canonically sorted/aggregated on
export.  The only engine-visible difference is span accounting — calm
chunks skip the ``session.chunk`` span wrapper (run manifests are not
byte-stable by design; see docs/PERFORMANCE.md for the caveats).

Demotion triggers are best-effort peeks (no RNG is consumed): the
congestion-episode check reads the path's last-advanced episode horizon,
and the fault check queries the pure time-indexed epoch schedule.
Correctness never depends on the predicate — a session stepped calmly
through an episode produces byte-identical records — so the predicate
can stay cheap.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..client.abr import make_abr
from ..simulation.session import SessionActor
from ..telemetry.collector import TelemetryCollector
from ..workload.sessions import SessionPlan

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a runtime cycle
    from ..cdn.mapping import MappingDecision
    from ..obs.trace import TraceRecorder
    from ..simulation.driver import Simulator

__all__ = ["FleetCohort", "run_fleet_period"]

_INF = float("inf")


class FleetCohort:
    """Numpy state arrays over one server group's sessions.

    ``due[i]`` is +inf while session *i* is demoted or finished; the
    mirrors (cwnd/srtt/rto/buffer level/chunk index) track the last
    processed chunk of every session that has started, demoted or not —
    they are the fleet-wide observable state, exposed for tests and
    diagnostics.
    """

    __slots__ = ("due", "seq", "cwnd", "srtt_ms", "rto_ms", "buffer_ms", "chunk_idx")

    def __init__(self, n: int) -> None:
        self.due = np.full(n, _INF)
        self.seq = np.zeros(n, dtype=np.int64)
        self.cwnd = np.zeros(n)
        self.srtt_ms = np.zeros(n)
        self.rto_ms = np.zeros(n)
        self.buffer_ms = np.zeros(n)
        self.chunk_idx = np.zeros(n, dtype=np.int64)


def _build_actor(
    sim: "Simulator",
    plan: SessionPlan,
    decision: "MappingDecision",
    collector: TelemetryCollector,
    trace: Optional["TraceRecorder"],
) -> SessionActor:
    config = sim.config
    return SessionActor(
        plan=plan,
        mapping=decision,
        server=sim.servers[decision.server_id],
        abr=make_abr(
            config.abr_name,
            plan.video.bitrates_kbps,
            **(
                {"screen_outliers": True}
                if config.abr_screen_outliers and config.abr_name != "buffer"
                else {}
            ),
        ),
        collector=collector,
        config=config,
        metrics=sim.metrics,
        faults=sim.faults,
        trace=trace,
    )


def _demoted(actor: SessionActor, at_ms: float, prev_bitrate: float) -> bool:
    """Should this session's next chunk run on the scalar event heap?"""
    if actor._trace is not None:
        return True  # trace-sampled: every chunk emits causal events
    path = actor.path
    if at_ms < path._episode_until_ms:
        return True  # inside a congestion episode (peek, no RNG consumed)
    if path.fault_probe is not None and actor.faults is not None:
        client = actor.plan.client
        if (
            actor.faults.path_state(client.prefix.org, client.prefix.prefix_id, at_ms)
            is not None
        ):
            return True  # active fault epoch on this session's path
    last = actor.last_bitrate_kbps
    if last is not None and prev_bitrate > 0.0 and last != prev_bitrate:
        return True  # mid-ABR-switch: ramp the next chunk scalar too
    return False


def _run_group(
    sim: "Simulator",
    members: List[Tuple[SessionPlan, "MappingDecision"]],
    collector: TelemetryCollector,
    trace: Optional["TraceRecorder"],
) -> Tuple[int, float]:
    """Advance one server group to completion.

    Returns ``(events_processed, final_clock_ms)`` — the bookkeeping the
    global event loop would have produced for these sessions.
    """
    n = len(members)
    cohort = FleetCohort(n)
    due = cohort.due
    seq_arr = cohort.seq
    actors: List[Optional[SessionActor]] = [None] * n
    prev_bitrate = np.zeros(n)
    demoted: List[Tuple[float, int, int]] = []  # (at_ms, seq, idx) heap
    heappush = heapq.heappush
    heappop = heapq.heappop
    argmin = np.argmin
    seq = 0
    for i, (plan, _) in enumerate(members):
        due[i] = plan.start_ms
        seq_arr[i] = seq
        seq += 1
    events = 0
    clock = 0.0
    while True:
        # Next event: min over the cohort's due array and the demoted
        # heap, ordered by (time, schedule sequence) exactly like the
        # event loop's heap.
        j = int(argmin(due))
        t_cohort = due[j]
        if demoted and (
            demoted[0][0] < t_cohort
            or (demoted[0][0] == t_cohort and demoted[0][1] < seq_arr[j])
        ):
            at, _, idx = heappop(demoted)
            from_heap = True
        elif t_cohort == _INF:
            break
        else:
            ties = np.flatnonzero(due == t_cohort)
            if len(ties) > 1:
                j = int(ties[argmin(seq_arr[ties])])
            at, idx = float(t_cohort), j
            due[idx] = _INF
            from_heap = False
        events += 1
        clock = at

        actor = actors[idx]
        if actor is None:
            # Session-start event: build the actor (pure per-session RNG
            # streams — identical to the event engine's on_start) and
            # schedule the first chunk request.
            plan, decision = members[idx]
            actor = _build_actor(sim, plan, decision, collector, trace)
            actors[idx] = actor
            next_at = at + actor.manifest_time_ms(at)
        else:
            if from_heap:
                next_at = actor.process_chunk(at)  # spanned, like the loop
            else:
                next_at = actor._process_chunk(at)  # calm: skip the span
            tcp = actor.tcp
            cohort.cwnd[idx] = tcp.cwnd
            cohort.srtt_ms[idx] = tcp.srtt_ms if tcp.srtt_ms is not None else 0.0
            cohort.rto_ms[idx] = tcp.rto_ms
            cohort.chunk_idx[idx] = actor.next_chunk
            if next_at is None:
                cohort.buffer_ms[idx] = 0.0
                actors[idx] = None  # session over: free eagerly
                continue
            cohort.buffer_ms[idx] = actor.buffer.level_at(next_at)

        if _demoted(actor, next_at, float(prev_bitrate[idx])):
            heappush(demoted, (next_at, seq, idx))
        else:
            due[idx] = next_at
            seq_arr[idx] = seq
        seq += 1
        if actor.last_bitrate_kbps is not None:
            prev_bitrate[idx] = actor.last_bitrate_kbps
    return events, clock


def run_fleet_period(
    sim: "Simulator",
    n_sessions: int,
    seed: int,
    collector: TelemetryCollector,
    start_ms: float,
    trace: Optional["TraceRecorder"] = None,
) -> float:
    """Run one collection period with the fleet engine.

    Folds the same ``engine.events_total`` counter and ``engine.clock_ms``
    gauge the event loop folds (the byte-stable metrics document depends
    on them), under the same ``engine.run`` span.
    """
    generator = sim._session_generator(seed)
    groups: Dict[str, List[Tuple[SessionPlan, "MappingDecision"]]] = {}
    for plan in generator.generate(n_sessions, start_ms=start_ms):
        if sim.shard is not None and not sim._owns_plan(plan):
            continue
        # The mapping decision is a pure function of stable ids: computed
        # here for grouping, it is the decision the session would get at
        # start time.
        decision = sim.mapping.assign(
            plan.client.prefix.geo,
            plan.video.video_id,
            plan.video.rank,
            plan.session_id,
        )
        groups.setdefault(decision.server_id, []).append((plan, decision))

    events = 0
    clock = 0.0
    metrics = sim.metrics
    span = metrics.span("engine.run") if metrics is not None else None
    try:
        if span is not None:
            span.__enter__()
        for server_id in sorted(groups):
            group_events, group_clock = _run_group(
                sim, groups[server_id], collector, trace
            )
            events += group_events
            if group_clock > clock:
                clock = group_clock
    finally:
        if span is not None:
            span.__exit__(None, None, None)
        if metrics is not None:
            metrics.counter("engine.events_total").inc(events)
            metrics.gauge("engine.clock_ms").set(clock)
    return clock
