"""The classic per-session event-loop stepping engine.

One global heap interleaves every session's chunk events in time order —
the reference execution: simple, exact, and the baseline every other
engine must match byte for byte.  This module is the old body of
``Simulator._run_period``, extracted behind the engine registry
(:mod:`repro.engine`) so the driver dispatches by name instead of
hard-coding one execution strategy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..client.abr import make_abr
from ..simulation.engine import EventLoop
from ..simulation.session import SessionActor
from ..telemetry.collector import TelemetryCollector
from ..workload.sessions import SessionPlan

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a runtime cycle
    from ..obs.trace import TraceRecorder
    from ..simulation.driver import Simulator

__all__ = ["run_event_period"]


def run_event_period(
    sim: "Simulator",
    n_sessions: int,
    seed: int,
    collector: TelemetryCollector,
    start_ms: float,
    trace: Optional["TraceRecorder"] = None,
) -> float:
    """Run one collection period through the global event loop."""
    config = sim.config
    generator = sim._session_generator(seed)
    loop = EventLoop(metrics=sim.metrics)

    def start_session(plan: SessionPlan):
        def on_start(now_ms: float) -> None:
            decision = sim.mapping.assign(
                plan.client.prefix.geo,
                plan.video.video_id,
                plan.video.rank,
                plan.session_id,
            )
            actor = SessionActor(
                plan=plan,
                mapping=decision,
                server=sim.servers[decision.server_id],
                abr=make_abr(
                    config.abr_name,
                    plan.video.bitrates_kbps,
                    **(
                        {"screen_outliers": True}
                        if config.abr_screen_outliers and config.abr_name != "buffer"
                        else {}
                    ),
                ),
                collector=collector,
                config=config,
                metrics=sim.metrics,
                faults=sim.faults,
                trace=trace,
            )
            # One chunk callback per session, rescheduling itself: the
            # previous closure-per-chunk allocated a fresh function and
            # cell for every event on the hot path.
            def on_chunk(now_ms: float, actor: SessionActor = actor) -> None:
                next_at = actor.process_chunk(now_ms)
                if next_at is not None:
                    loop.schedule(next_at, on_chunk)

            first_request_at = now_ms + actor.manifest_time_ms(now_ms)
            loop.schedule(first_request_at, on_chunk)

        return on_start

    for plan in generator.generate(n_sessions, start_ms=start_ms):
        if sim.shard is not None and not sim._owns_plan(plan):
            continue
        loop.schedule(plan.start_ms, start_session(plan))
    return loop.run()
