"""repro.engine — stepping engines behind an explicit selection registry.

A *stepping engine* is one strategy for advancing a collection period's
sessions through simulated time.  Every engine consumes the same inputs
(a :class:`~repro.simulation.driver.Simulator` plus period parameters)
and must produce byte-identical telemetry — datasets, metrics documents,
traces — because engine choice is an execution knob, excluded from the
workload identity hash (docs/ARCHITECTURE.md).

Two engines ship:

* ``"event"`` — the classic global heap event loop, the reference
  implementation (:mod:`repro.engine.event`);
* ``"fleet"`` — per-server cohorts advanced with numpy state arrays,
  demoting sessions to a scalar heap only while they are interesting
  (:mod:`repro.engine.fleet`).

``"auto"`` resolves per period via
:func:`~repro.simulation.execution.resolve_engine`.  The registry is the
extension point: a new engine is one entry here plus an
``ENGINE_NAMES`` entry, not another branch in the driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from .._execution import (
    AUTO_FLEET_MIN_SESSIONS,
    ENGINE_NAMES,
    resolve_engine,
)
from .event import run_event_period
from .fleet import FleetCohort, run_fleet_period

if TYPE_CHECKING:  # pragma: no cover — typing only
    from ..obs.trace import TraceRecorder
    from ..simulation.driver import Simulator
    from ..telemetry.collector import TelemetryCollector

__all__ = [
    "AUTO_FLEET_MIN_SESSIONS",
    "ENGINE_NAMES",
    "ENGINE_REGISTRY",
    "FleetCohort",
    "get_engine",
    "resolve_engine",
    "run_event_period",
    "run_fleet_period",
]

#: A period runner: ``(sim, n_sessions, seed, collector, start_ms,
#: trace) -> final clock (ms)``.
PeriodRunner = Callable[..., float]

#: Concrete engine name -> period runner.  ``"auto"`` is not a key: it
#: resolves to one of these before dispatch (resolve_engine).
ENGINE_REGISTRY: Dict[str, PeriodRunner] = {
    "event": run_event_period,
    "fleet": run_fleet_period,
}


def get_engine(name: str) -> PeriodRunner:
    """Look up a concrete engine by name (post-``auto`` resolution)."""
    try:
        return ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{sorted(ENGINE_REGISTRY)}"
        ) from None
