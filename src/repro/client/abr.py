"""Adaptive-bitrate algorithms.

§2: "The ABR algorithm, that has been tuned and tested in the wild to
balance between low startup delay, low re-buffering rate, high quality and
smoothness, chooses a bitrate for each chunk."  The paper does not publish
Yahoo's ABR, so we provide the three families its related-work section
names — rate-based [23, 32], buffer-based [20], and hybrid [37] — plus the
paper's own §4.3 recommendation as an option: screening download-stack
outliers out of the throughput estimate before adapting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence

import numpy as np

__all__ = [
    "ABR_NAMES",
    "ChunkObservation",
    "AbrAlgorithm",
    "RateBasedAbr",
    "BufferBasedAbr",
    "HybridAbr",
    "make_abr",
]

#: Every name :func:`make_abr` accepts (the registry config validation
#: checks ``abr_name`` against).
ABR_NAMES = ("rate", "buffer", "hybrid")


@dataclass(frozen=True)
class ChunkObservation:
    """What the player can measure about a completed chunk download."""

    bitrate_kbps: float
    dfb_ms: float
    dlb_ms: float
    chunk_bytes: int

    @property
    def download_ms(self) -> float:
        return self.dfb_ms + self.dlb_ms

    @property
    def throughput_kbps(self) -> float:
        """Client-side throughput over the whole chunk download (request to
        last byte).  Robust to download-stack bursts by construction."""
        if self.download_ms <= 0:
            return 0.0
        return self.chunk_bytes * 8.0 / self.download_ms  # bits/ms == kbps

    @property
    def instantaneous_throughput_kbps(self) -> float:
        """Throughput over the data-delivery window only (bytes / D_LB).

        This is the estimate the paper's over-shooting discussion targets:
        when the download stack buffers a chunk and releases it as a
        burst, D_LB collapses and this value becomes impossibly high.
        """
        if self.dlb_ms <= 0:
            return 0.0
        return self.chunk_bytes * 8.0 / self.dlb_ms


class AbrAlgorithm(ABC):
    """Chooses the next chunk's bitrate from client-visible history."""

    def __init__(self, ladder_kbps: Sequence[int]) -> None:
        if not ladder_kbps:
            raise ValueError("ladder must be non-empty")
        if list(ladder_kbps) != sorted(ladder_kbps):
            raise ValueError("ladder must be sorted ascending")
        self.ladder = tuple(ladder_kbps)

    @abstractmethod
    def choose_bitrate(self, buffer_level_ms: float) -> int:
        """Bitrate (kbps) for the next chunk request."""

    @abstractmethod
    def observe(self, observation: ChunkObservation) -> None:
        """Record a completed chunk download."""

    def _highest_not_above(self, target_kbps: float) -> int:
        """Largest ladder rung <= target (or the lowest rung)."""
        candidate = self.ladder[0]
        for rung in self.ladder:
            if rung <= target_kbps:
                candidate = rung
            else:
                break
        return candidate


class RateBasedAbr(AbrAlgorithm):
    """Throughput-rule ABR: harmonic mean of recent chunk throughputs.

    ``screen_outliers`` implements the paper's §4.3 recommendation: drop
    throughput samples more than two standard deviations above the window
    mean before estimating, so download-stack bursts (instantaneous-looking
    throughput) do not cause over-shooting.
    """

    def __init__(
        self,
        ladder_kbps: Sequence[int],
        window: int = 5,
        safety: float = 0.8,
        screen_outliers: bool = False,
        startup_rung: int = 4,
        use_instantaneous: bool = False,
    ) -> None:
        super().__init__(ladder_kbps)
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")
        self.window = window
        self.safety = safety
        self.screen_outliers = screen_outliers
        #: estimate from D_LB only (burst-vulnerable, the paper's
        #: over-shooting case) instead of the full download window
        self.use_instantaneous = use_instantaneous
        #: first-chunk rung before any throughput sample exists.  Production
        #: players do not start at the floor (the paper's §4.2-1 take-away
        #: recommends a "more conservative initial bitrate" for known-bad
        #: prefixes, implying the default start is mid-ladder).
        self.startup_rung = min(max(startup_rung, 0), len(self.ladder) - 1)
        self._samples: Deque[float] = deque(maxlen=window)

    def observe(self, observation: ChunkObservation) -> None:
        throughput = (
            observation.instantaneous_throughput_kbps
            if self.use_instantaneous
            else observation.throughput_kbps
        )
        if throughput > 0:
            self._samples.append(throughput)

    def estimate_kbps(self) -> Optional[float]:
        """Current throughput estimate; None before any samples."""
        samples = list(self._samples)
        if self.screen_outliers and len(samples) >= 3:
            # Leave-one-out screening: within a short window, a single
            # extreme sample inflates the window's own mean/std so much
            # that it can never exceed mean + 2*std (max z-score of n
            # samples is (n-1)/sqrt(n) < 2 for n <= 5).  Judging each
            # sample against the *other* samples' statistics fixes that.
            kept = []
            for i, sample in enumerate(samples):
                rest = samples[:i] + samples[i + 1 :]
                mean = float(np.mean(rest))
                # Floor the spread at 5% of the mean so a near-constant
                # window still rejects a wild sample (zero variance would
                # otherwise make the threshold degenerate).
                std = max(float(np.std(rest)), 0.05 * mean)
                if sample <= mean + 2.0 * std:
                    kept.append(sample)
            samples = kept or samples
        if not samples:
            return None
        return len(samples) / sum(1.0 / s for s in samples)  # harmonic mean

    def choose_bitrate(self, buffer_level_ms: float) -> int:
        estimate = self.estimate_kbps()
        if estimate is None:
            return self.ladder[self.startup_rung]
        return self._highest_not_above(self.safety * estimate)


class BufferBasedAbr(AbrAlgorithm):
    """BBA-style ABR [20]: bitrate is a function of buffer occupancy only.

    Below the reservoir -> lowest rung; above the cushion -> highest rung;
    linear ladder mapping in between.
    """

    def __init__(
        self,
        ladder_kbps: Sequence[int],
        reservoir_ms: float = 6_000.0,
        cushion_ms: float = 24_000.0,
    ) -> None:
        super().__init__(ladder_kbps)
        if reservoir_ms < 0 or cushion_ms <= reservoir_ms:
            raise ValueError("need 0 <= reservoir < cushion")
        self.reservoir_ms = reservoir_ms
        self.cushion_ms = cushion_ms

    def observe(self, observation: ChunkObservation) -> None:
        pass  # buffer-based ABR ignores throughput history

    def choose_bitrate(self, buffer_level_ms: float) -> int:
        if buffer_level_ms <= self.reservoir_ms:
            return self.ladder[0]
        if buffer_level_ms >= self.cushion_ms:
            return self.ladder[-1]
        fraction = (buffer_level_ms - self.reservoir_ms) / (
            self.cushion_ms - self.reservoir_ms
        )
        index = int(fraction * (len(self.ladder) - 1))
        return self.ladder[index]


class HybridAbr(AbrAlgorithm):
    """Rate-based choice, capped by a buffer-safety rule [37]-style.

    With a thin buffer the pick is clamped to at most one rung above the
    buffer-based choice; with a deep buffer the throughput rule wins.
    """

    def __init__(
        self,
        ladder_kbps: Sequence[int],
        window: int = 5,
        safety: float = 0.9,
        reservoir_ms: float = 6_000.0,
        cushion_ms: float = 24_000.0,
        screen_outliers: bool = False,
    ) -> None:
        super().__init__(ladder_kbps)
        self._rate = RateBasedAbr(
            ladder_kbps, window=window, safety=safety, screen_outliers=screen_outliers
        )
        self._buffer = BufferBasedAbr(
            ladder_kbps, reservoir_ms=reservoir_ms, cushion_ms=cushion_ms
        )

    def observe(self, observation: ChunkObservation) -> None:
        self._rate.observe(observation)

    def choose_bitrate(self, buffer_level_ms: float) -> int:
        rate_pick = self._rate.choose_bitrate(buffer_level_ms)
        buffer_pick = self._buffer.choose_bitrate(buffer_level_ms)
        buffer_index = self.ladder.index(buffer_pick)
        cap = self.ladder[min(buffer_index + 1, len(self.ladder) - 1)]
        return min(rate_pick, cap)


def make_abr(name: str, ladder_kbps: Sequence[int], **kwargs) -> AbrAlgorithm:
    """Factory: 'rate', 'buffer', or 'hybrid' (kwargs pass through)."""
    factories = {
        "rate": RateBasedAbr,
        "buffer": BufferBasedAbr,
        "hybrid": HybridAbr,
    }
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise ValueError(f"unknown ABR {name!r}; choose from {ABR_NAMES}") from None
    return factory(ladder_kbps, **kwargs)
