"""Client download-stack model: OS → browser → Flash runtime → player.

§4.3 identifies three download-stack phenomena, all reproduced here:

1. **Transient buffering** (~0.32% of chunks): the stack buffers a chunk's
   bytes and releases them late, in a burst.  The chunk's D_FB inflates by
   the buffering delay while its D_LB compresses — the player sees an
   impossibly high instantaneous throughput.  (Eq. 4's detection target.)
2. **Persistent per-platform latency** (17.6% of chunks overall): every
   delivery crosses the OS/browser/Flash layers; some platforms (Safari
   off-Mac ≈1 s, Table 5) are chronically slow.
3. **First-chunk setup cost** (~300 ms at the median): progress-event
   listener registration and data-path setup delay the first chunk's
   first byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.registry import MetricsRegistry
from .browsers import PlatformProfile

__all__ = ["DownloadStackEffect", "DownloadStackModel"]


@dataclass(frozen=True)
class DownloadStackEffect:
    """Per-chunk download-stack outcome (ground truth, in ms).

    ``first_byte_delay_ms`` is added to the chunk's D_FB.
    ``last_byte_shift_ms`` is *subtracted* from the network D_LB (bytes
    were accumulating while the first byte was held back), floored so the
    observed D_LB stays positive.
    ``transient`` marks a buffering burst event.
    """

    first_byte_delay_ms: float
    last_byte_shift_ms: float
    transient: bool

    @property
    def total_ms(self) -> float:
        return self.first_byte_delay_ms


class DownloadStackModel:
    """Samples per-chunk download-stack effects for one session's platform."""

    def __init__(
        self,
        platform: PlatformProfile,
        rng: np.random.Generator,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.platform = platform
        self.rng = rng
        self.metrics = metrics

    def _record(self, effect: "DownloadStackEffect") -> "DownloadStackEffect":
        if self.metrics is not None:
            self.metrics.histogram("client.ds_delay_ms").observe(
                effect.first_byte_delay_ms
            )
            if effect.transient:
                self.metrics.counter("client.ds_transients_total").inc()
        return effect

    def sample(self, chunk_index: int, network_dlb_ms: float) -> DownloadStackEffect:
        """Sample the stack's effect on the chunk at *chunk_index*.

        *network_dlb_ms* is the network-side last-byte delay, needed to size
        a transient burst (the stack cannot hold bytes longer than the
        transfer plus its own delay).
        """
        if chunk_index < 0:
            raise ValueError("chunk_index must be non-negative")
        if network_dlb_ms < 0:
            raise ValueError("network_dlb_ms must be non-negative")
        platform = self.platform
        rng = self.rng

        # Transient buffering burst: hold back a large share of the
        # transfer and release it at once.
        if rng.random() < platform.transient_buffer_prob:
            hold_fraction = float(rng.uniform(0.6, 0.95))
            held_ms = hold_fraction * network_dlb_ms + float(rng.uniform(300.0, 1500.0))
            return self._record(
                DownloadStackEffect(
                    first_byte_delay_ms=held_ms,
                    last_byte_shift_ms=min(held_ms, 0.95 * network_dlb_ms),
                    transient=True,
                )
            )

        delay = 0.0
        # Persistent platform latency, per-chunk Bernoulli.
        if rng.random() < platform.ds_chunk_prob:
            mu = np.log(platform.ds_mean_ms) - 0.5 * platform.ds_sigma**2
            delay += float(rng.lognormal(mu, platform.ds_sigma))
        # Small ever-present copy/poll overhead through the layers.
        delay += float(rng.lognormal(np.log(3.0), 0.8))
        # First-chunk event-registration and data-path setup cost.
        if chunk_index == 0:
            mu = np.log(platform.first_chunk_extra_ms) - 0.5 * 0.25**2
            delay += float(rng.lognormal(mu, 0.5))
        return self._record(
            DownloadStackEffect(
                first_byte_delay_ms=delay, last_byte_shift_ms=0.0, transient=False
            )
        )
