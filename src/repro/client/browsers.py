"""Browser/OS platform profiles: market share, download-stack and rendering.

§3 of the paper gives the population mix (Chrome 43%, Firefox 37%, IE 13%,
Safari 6%, other 2%; Windows 88.5%, OS X 9.38%) and §4.3/§4.4 characterize
per-platform behaviour: persistent download-stack latency (Table 5 — Safari
off-Mac ≈1 s, Firefox ≈280 ms) and rendering quality (Figs. 21-22 — browsers
with internal Flash or native HLS outperform; unpopular browsers such as
Yandex, Vivaldi, Opera, and Safari-on-Windows drop the most frames).

Each :class:`PlatformProfile` encodes those published numbers as model
parameters; the workload generator samples platforms from the share table
and the simulator consumes the parameters directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "PlatformProfile",
    "PLATFORM_PROFILES",
    "platform_key",
    "sample_platform",
    "user_agent_string",
]


@dataclass(frozen=True)
class PlatformProfile:
    """Behavioural parameters of one (OS, browser) combination.

    download-stack model (§4.3):

    * ``ds_chunk_prob`` — probability that a given chunk accrues a non-zero
      persistent download-stack delay (paper: 17.6% of all chunks overall,
      strongly platform-dependent).
    * ``ds_mean_ms`` / ``ds_sigma`` — lognormal magnitude of that delay;
      means are calibrated to Table 5.
    * ``first_chunk_extra_ms`` — extra first-chunk latency from progress-event
      registration and data-path setup (§4.3-3: median ≈300 ms higher).
    * ``transient_buffer_prob`` — probability a chunk is buffered inside the
      stack and released as a burst (§4.3-1: ≈0.32% of chunks overall).

    rendering model (§4.4):

    * ``render_inefficiency`` — multiplier on the dropped-frame fraction;
      1.0 is an average browser, <1 means internal-Flash/native pipelines,
      >2 the unpopular browsers of Fig. 22.
    """

    os: str
    browser: str
    share: float  # joint population share (sums to ~1 across the table)
    ds_chunk_prob: float
    ds_mean_ms: float
    ds_sigma: float
    first_chunk_extra_ms: float
    transient_buffer_prob: float
    render_inefficiency: float
    popular: bool = True

    @property
    def key(self) -> Tuple[str, str]:
        return (self.os, self.browser)


def _p(
    os: str,
    browser: str,
    share: float,
    ds_prob: float,
    ds_mean: float,
    ineff: float,
    popular: bool = True,
    first_extra: float = 300.0,
    transient: float = 0.0032,
    ds_sigma: float = 0.6,
) -> PlatformProfile:
    return PlatformProfile(
        os=os,
        browser=browser,
        share=share,
        ds_chunk_prob=ds_prob,
        ds_mean_ms=ds_mean,
        ds_sigma=ds_sigma,
        first_chunk_extra_ms=first_extra,
        transient_buffer_prob=transient,
        render_inefficiency=ineff,
        popular=popular,
    )


#: The platform table.  Shares reproduce §3's marginals: Windows 88.5%,
#: OS X 9.4%, Linux ~2.1%; Chrome 43%, Firefox 37%, IE 13%, Safari 6%,
#: other ~2% (split across named unpopular browsers).  Download-stack means
#: (given non-zero DS) reproduce Table 5; render inefficiencies reproduce
#: the orderings of Figs. 21-22.
PLATFORM_PROFILES: Tuple[PlatformProfile, ...] = (
    # --- Windows (88.5%) ---
    _p("Windows", "Chrome", 0.375, 0.10, 90.0, 0.70),
    _p("Windows", "Firefox", 0.315, 0.22, 283.0, 1.40),
    _p("Windows", "IE", 0.130, 0.14, 120.0, 1.00),
    _p("Windows", "Edge", 0.012, 0.14, 150.0, 1.10),
    _p("Windows", "Safari", 0.004, 0.55, 1028.0, 3.00, popular=False),
    _p("Windows", "Opera", 0.004, 0.30, 290.0, 2.50, popular=False),
    _p("Windows", "Yandex", 0.003, 0.40, 600.0, 3.50, popular=False),
    _p("Windows", "Vivaldi", 0.002, 0.30, 280.0, 3.00, popular=False),
    _p("Windows", "SeaMonkey", 0.002, 0.40, 550.0, 3.20, popular=False),
    _p("Windows", "Other", 0.038, 0.28, 281.0, 2.20, popular=False),
    # --- OS X (9.4%) ---
    _p("Mac", "Chrome", 0.036, 0.10, 85.0, 0.70),
    _p("Mac", "Firefox", 0.024, 0.20, 275.0, 1.30),
    _p("Mac", "Safari", 0.030, 0.08, 90.0, 0.60),
    _p("Mac", "Other", 0.004, 0.25, 260.0, 2.00, popular=False),
    # --- Linux (~2.1%) ---
    _p("Linux", "Chrome", 0.010, 0.12, 100.0, 0.80),
    _p("Linux", "Firefox", 0.009, 0.22, 290.0, 1.50),
    _p("Linux", "Safari", 0.002, 0.55, 1041.0, 3.20, popular=False),
)


def platform_key(os: str, browser: str) -> Tuple[str, str]:
    """Canonical dictionary key for an (OS, browser) combination."""
    return (os, browser)


_PROFILE_INDEX: Dict[Tuple[str, str], PlatformProfile] = {p.key: p for p in PLATFORM_PROFILES}


def get_profile(os: str, browser: str) -> PlatformProfile:
    """Look up the profile for an (OS, browser) pair."""
    try:
        return _PROFILE_INDEX[(os, browser)]
    except KeyError:
        raise KeyError(f"unknown platform {os}/{browser}") from None


def _platform_cdf() -> np.ndarray:
    shares = np.asarray([p.share for p in PLATFORM_PROFILES], dtype=float)
    shares /= shares.sum()
    cdf = shares.cumsum()
    cdf /= cdf[-1]
    return cdf


#: precomputed sampling CDF — the exact array Generator.choice(p=...) would
#: rebuild on every call; searchsorted over it consumes the same single
#: uniform draw and yields the same index
_PLATFORM_CDF = _platform_cdf()


def sample_platform(rng: np.random.Generator) -> PlatformProfile:
    """Sample a platform from the joint share table."""
    return PLATFORM_PROFILES[int(_PLATFORM_CDF.searchsorted(rng.random(), side="right"))]


def browser_shares_by_os() -> Dict[str, List[Tuple[str, float]]]:
    """Per-OS browser shares, normalized within each OS (Fig. 21 x-axis)."""
    by_os: Dict[str, List[Tuple[str, float]]] = {}
    for profile in PLATFORM_PROFILES:
        by_os.setdefault(profile.os, []).append((profile.browser, profile.share))
    normalized: Dict[str, List[Tuple[str, float]]] = {}
    for os_name, pairs in by_os.items():
        total = sum(share for _, share in pairs)
        normalized[os_name] = [(browser, share / total) for browser, share in pairs]
    return normalized


def user_agent_string(profile: PlatformProfile) -> str:
    """A synthetic but realistic-looking user-agent string for the profile."""
    os_token = {
        "Windows": "Windows NT 10.0; Win64; x64",
        "Mac": "Macintosh; Intel Mac OS X 10_11",
        "Linux": "X11; Linux x86_64",
    }[profile.os]
    return f"Mozilla/5.0 ({os_token}) {profile.browser}/Flash"
