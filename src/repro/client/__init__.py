"""Client substrate: platforms, ABR, playback buffer, download stack, rendering."""

from .abr import (
    AbrAlgorithm,
    BufferBasedAbr,
    ChunkObservation,
    HybridAbr,
    RateBasedAbr,
    make_abr,
)
from .browsers import PLATFORM_PROFILES, PlatformProfile, get_profile, sample_platform
from .buffer import PlaybackBuffer, RebufferEvent
from .downloadstack import DownloadStackEffect, DownloadStackModel
from .rendering import RenderingModel, RenderResult, rate_drop_term

__all__ = [
    "AbrAlgorithm",
    "RateBasedAbr",
    "BufferBasedAbr",
    "HybridAbr",
    "ChunkObservation",
    "make_abr",
    "PlatformProfile",
    "PLATFORM_PROFILES",
    "get_profile",
    "sample_platform",
    "PlaybackBuffer",
    "RebufferEvent",
    "DownloadStackEffect",
    "DownloadStackModel",
    "RenderingModel",
    "RenderResult",
    "rate_drop_term",
]
