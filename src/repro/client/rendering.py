"""Client rendering-path model: demux → decode → render.

§4.4's findings, all encoded here:

* Without a GPU the CPU does the work, so rendering quality is sensitive to
  CPU utilization (Fig. 20's controlled experiment: drops climb roughly
  linearly with the number of loaded cores).
* Chunks need to *arrive* fast enough to leave slack for processing: below
  a download rate of ~1.5 seconds-of-video per second, dropped frames climb
  steeply; above it, extra rate does not help (Fig. 19's knee).  A deep
  playback buffer can hide a slow chunk (the paper's 5.7% of
  low-rate-but-good-rendering chunks).
* Browsers differ: internal-Flash/native pipelines (Chrome, Safari-on-Mac)
  outperform; unpopular browsers drop the most frames (Figs. 21-22).
* Hidden/minimized players drop frames intentionally to save CPU (§2.1's
  ``vis`` flag exists to exclude them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.catalog import FRAMES_PER_SECOND
from .browsers import PlatformProfile

__all__ = ["RenderResult", "RenderingModel", "rate_drop_term"]

#: Download rate (sec of video per sec) above which more rate stops helping.
GOOD_RATE_THRESHOLD = 1.5


def rate_drop_term(download_rate: float) -> float:
    """Dropped-frame contribution of the chunk arrival rate (Fig. 19 shape).

    Piecewise: steep below 1.0 s/s, a knee from 1.0 to 1.5, flat beyond.
    """
    if download_rate < 0:
        raise ValueError("download_rate must be non-negative")
    if download_rate >= GOOD_RATE_THRESHOLD:
        return 0.03
    if download_rate >= 1.0:
        # 0.08 at rate 1.0 down to 0.03 at 1.5
        return 0.08 - 0.05 * (download_rate - 1.0) / 0.5
    # 0.08 at rate 1.0 climbing to 0.40 as the rate approaches zero
    return min(0.40, 0.08 + 0.32 * (1.0 - download_rate))


@dataclass(frozen=True)
class RenderResult:
    """Rendering outcome of one chunk."""

    dropped_fraction: float
    avg_fps: float
    dropped_frames: int
    total_frames: int


class RenderingModel:
    """Samples per-chunk rendering quality for one session's host."""

    def __init__(
        self,
        platform: PlatformProfile,
        gpu: bool,
        cpu_cores: int,
        cpu_background_load: float,
        rng: np.random.Generator,
        fps: float = FRAMES_PER_SECOND,
    ) -> None:
        if cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        if not 0.0 <= cpu_background_load <= 1.0:
            raise ValueError("cpu_background_load must be in [0, 1]")
        self.platform = platform
        self.gpu = gpu
        self.cpu_cores = cpu_cores
        self.cpu_background_load = cpu_background_load
        self.rng = rng
        self.fps = fps

    def drop_fraction(
        self,
        download_rate: float,
        visible: bool,
        bitrate_kbps: float,
        buffer_level_ms: float,
        extra_drop_fraction: float = 0.0,
    ) -> float:
        """Expected dropped-frame fraction for one chunk (before noise).

        ``extra_drop_fraction`` is the fault-injection hook (a player
        regression, docs/FAULTS.md): it is added after the model's own
        terms, and only on the software-rendered visible path — hidden
        players already drop on purpose and GPU pipelines are unaffected
        by a software-renderer bug.
        """
        if not visible:
            # Hidden tab / minimized window: frames dropped on purpose.
            return float(self.rng.uniform(0.6, 0.95))
        if self.gpu:
            return min(1.0, float(self.rng.uniform(0.0, 0.01)))

        rate_term = rate_drop_term(download_rate)
        # A deep buffer hides a slow arrival: frames already buffered keep
        # the decoder fed (the paper's low-rate/good-rendering chunks).
        if buffer_level_ms > 15_000.0 and rate_term > 0.03:
            rate_term = 0.03 + (rate_term - 0.03) * 0.25
        # Fig. 20: ~1% extra drops per loaded core on software rendering.
        cpu_term = 0.0125 * self.cpu_background_load * self.cpu_cores
        # Decoding cost grows mildly with bitrate (more data per frame).
        decode_term = 0.004 * bitrate_kbps / 1000.0
        raw = self.platform.render_inefficiency * (rate_term + cpu_term + decode_term)
        noise = float(self.rng.lognormal(0.0, 0.35))
        return float(np.clip(raw * noise + extra_drop_fraction, 0.0, 0.95))

    def render_chunk(
        self,
        download_rate: float,
        visible: bool,
        bitrate_kbps: float,
        buffer_level_ms: float,
        chunk_duration_ms: float,
        extra_drop_fraction: float = 0.0,
    ) -> RenderResult:
        """Render one chunk; returns frame statistics."""
        if chunk_duration_ms <= 0:
            raise ValueError("chunk_duration_ms must be positive")
        fraction = self.drop_fraction(
            download_rate, visible, bitrate_kbps, buffer_level_ms, extra_drop_fraction
        )
        total_frames = max(1, int(round(self.fps * chunk_duration_ms / 1000.0)))
        dropped = int(round(fraction * total_frames))
        dropped = min(dropped, total_frames)
        avg_fps = self.fps * (1.0 - dropped / total_frames)
        return RenderResult(
            dropped_fraction=dropped / total_frames,
            avg_fps=avg_fps,
            dropped_frames=dropped,
            total_frames=total_frames,
        )
