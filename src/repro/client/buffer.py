"""Playback buffer with rebuffering accounting.

§2.1, playout phase: "As a chunk is downloaded, it is added to the playback
buffer.  If the playback buffer does not contain enough data, the player
pauses and waits for sufficient data; in case of an already playing video,
this causes a rebuffering event."

The buffer operates on the chunk-arrival timeline: the player appends media
as chunks complete and the model tracks where the playhead would be in real
time, charging any stall to the chunk that was being waited for (that is
how the paper attributes ``bufcount``/``bufdur`` per chunk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.registry import MetricsRegistry

__all__ = ["RebufferEvent", "PlaybackBuffer"]


@dataclass(frozen=True)
class RebufferEvent:
    """One stall: when it started, how long it lasted, which chunk ended it."""

    start_ms: float
    duration_ms: float
    chunk_index: int


@dataclass
class PlaybackBuffer:
    """Chunk-granularity playback buffer model.

    The player calls :meth:`on_chunk_ready` for every chunk in order.
    Playback starts when the first chunk is complete (startup); afterwards
    the buffer drains at 1 media-ms per wall-ms.  If a chunk arrives after
    the buffer ran dry, the model records a rebuffer event covering the dry
    interval and resumes playback on arrival.
    """

    #: media time buffered ahead of the playhead, in ms
    level_ms: float = 0.0
    started: bool = False
    startup_at_ms: Optional[float] = None
    events: List[RebufferEvent] = field(default_factory=list)
    #: observability registry (stall events feed ``client.rebuffer_*``)
    metrics: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )
    _last_update_ms: Optional[float] = None
    _total_media_ms: float = 0.0

    def on_chunk_ready(self, chunk_index: int, media_ms: float, now_ms: float) -> Tuple[int, float]:
        """Append *media_ms* of content completing at *now_ms*.

        Returns ``(rebuffer_count, rebuffer_ms)`` charged to this chunk —
        zero for the first chunk, whose waiting time is startup delay, not
        rebuffering (the paper keeps the two metrics separate).
        """
        if media_ms <= 0:
            raise ValueError("media_ms must be positive")
        if self._last_update_ms is not None and now_ms < self._last_update_ms:
            raise ValueError("chunks must arrive in nondecreasing time order")

        rebuffer_count = 0
        rebuffer_ms = 0.0
        if not self.started:
            self.started = True
            self.startup_at_ms = now_ms
        else:
            previous = self._last_update_ms if self._last_update_ms is not None else now_ms
            elapsed = now_ms - previous
            if elapsed >= self.level_ms:
                # The buffer ran dry before this chunk arrived.
                stall = elapsed - self.level_ms
                if stall > 0:
                    rebuffer_count = 1
                    rebuffer_ms = stall
                    self.events.append(
                        RebufferEvent(
                            start_ms=now_ms - stall,
                            duration_ms=stall,
                            chunk_index=chunk_index,
                        )
                    )
                    if self.metrics is not None:
                        self.metrics.counter("client.rebuffer_events_total").inc()
                        self.metrics.histogram("client.rebuffer_ms").observe(stall)
                self.level_ms = 0.0
            else:
                self.level_ms -= elapsed
        self.level_ms += media_ms
        self._total_media_ms += media_ms
        self._last_update_ms = now_ms
        return rebuffer_count, rebuffer_ms

    def level_at(self, now_ms: float) -> float:
        """Buffered media remaining at wall time *now_ms* (>= last chunk)."""
        if self._last_update_ms is None:
            return 0.0
        if now_ms < self._last_update_ms:
            raise ValueError("cannot query the past")
        if not self.started:
            return self.level_ms
        return max(0.0, self.level_ms - (now_ms - self._last_update_ms))

    @property
    def total_rebuffer_ms(self) -> float:
        return sum(event.duration_ms for event in self.events)

    @property
    def total_rebuffer_count(self) -> int:
        return len(self.events)

    @property
    def total_media_ms(self) -> float:
        """All media appended so far (for rebuffering-rate denominators)."""
        return self._total_media_ms
