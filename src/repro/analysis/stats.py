"""Statistical primitives shared by all experiment reproductions.

These helpers mirror the presentation devices used throughout the paper:
empirical CDFs/CCDFs (Figs. 5, 8, 9, 10, 11, 16, 18), binned means/medians
with inter-quartile error bars (Figs. 4, 7, 19), and the coefficient of
variation used for the latency-fluctuation analysis (Fig. 10, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Cdf",
    "BinnedStat",
    "empirical_cdf",
    "empirical_ccdf",
    "binned_stats",
    "coefficient_of_variation",
    "quantile",
    "iqr",
    "zipf_weights",
]


@dataclass(frozen=True)
class Cdf:
    """An empirical (C)CDF as plottable arrays.

    ``xs`` are the sorted sample values and ``ps`` the cumulative (or
    complementary-cumulative) probabilities at those values.
    """

    xs: np.ndarray
    ps: np.ndarray
    complementary: bool = False

    def __post_init__(self) -> None:
        if self.xs.shape != self.ps.shape:
            raise ValueError("xs and ps must have identical shapes")

    def value_at(self, p: float) -> float:
        """Return the inverse CDF at probability *p* (nearest sample)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if len(self.xs) == 0:
            raise ValueError("empty CDF")
        probabilities = 1.0 - self.ps if self.complementary else self.ps
        index = int(np.searchsorted(probabilities, p, side="left"))
        index = min(index, len(self.xs) - 1)
        return float(self.xs[index])

    def prob_at(self, x: float) -> float:
        """Return P(X <= x) (or P(X > x) for a CCDF) at value *x*."""
        if len(self.xs) == 0:
            raise ValueError("empty CDF")
        index = int(np.searchsorted(self.xs, x, side="right")) - 1
        if index < 0:
            return 1.0 if self.complementary else 0.0
        return float(self.ps[index])

    @property
    def median(self) -> float:
        return self.value_at(0.5)

    def __len__(self) -> int:
        return len(self.xs)


def empirical_cdf(samples: Sequence[float]) -> Cdf:
    """Build an empirical CDF from raw samples."""
    values = np.sort(np.asarray(list(samples), dtype=float))
    if len(values) == 0:
        return Cdf(xs=values, ps=values.copy())
    probabilities = np.arange(1, len(values) + 1, dtype=float) / len(values)
    return Cdf(xs=values, ps=probabilities)


def empirical_ccdf(samples: Sequence[float]) -> Cdf:
    """Build an empirical CCDF (1 - CDF), as used in Figs. 3(a) and 11(c)."""
    values = np.sort(np.asarray(list(samples), dtype=float))
    if len(values) == 0:
        return Cdf(xs=values, ps=values.copy(), complementary=True)
    probabilities = 1.0 - np.arange(1, len(values) + 1, dtype=float) / len(values)
    return Cdf(xs=values, ps=probabilities, complementary=True)


@dataclass
class BinnedStat:
    """Per-bin summary statistics (mean, median, IQR) over an x/y relation.

    This is the data behind the paper's "average and median with IQR error
    bars" plots (Figs. 4, 7, 19).
    """

    bin_edges: np.ndarray
    centers: np.ndarray = field(default_factory=lambda: np.array([]))
    means: np.ndarray = field(default_factory=lambda: np.array([]))
    medians: np.ndarray = field(default_factory=lambda: np.array([]))
    q25: np.ndarray = field(default_factory=lambda: np.array([]))
    q75: np.ndarray = field(default_factory=lambda: np.array([]))
    counts: np.ndarray = field(default_factory=lambda: np.array([]))

    def rows(self) -> List[Tuple[float, float, float, float, float, int]]:
        """Return (center, mean, median, q25, q75, count) tuples."""
        return [
            (
                float(self.centers[i]),
                float(self.means[i]),
                float(self.medians[i]),
                float(self.q25[i]),
                float(self.q75[i]),
                int(self.counts[i]),
            )
            for i in range(len(self.centers))
        ]


def binned_stats(
    x: Sequence[float],
    y: Sequence[float],
    bin_edges: Sequence[float],
    min_count: int = 1,
) -> BinnedStat:
    """Bin *y* by *x* and compute mean/median/IQR per bin.

    Bins with fewer than *min_count* samples are dropped (their centers do
    not appear in the output), matching how sparse tails are omitted from
    the paper's binned plots.
    """
    x_values = np.asarray(list(x), dtype=float)
    y_values = np.asarray(list(y), dtype=float)
    if x_values.shape != y_values.shape:
        raise ValueError("x and y must have identical lengths")
    edges = np.asarray(list(bin_edges), dtype=float)
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("bin edges must be strictly increasing")

    centers: List[float] = []
    means: List[float] = []
    medians: List[float] = []
    q25s: List[float] = []
    q75s: List[float] = []
    counts: List[int] = []
    bin_index = np.digitize(x_values, edges) - 1
    for i in range(len(edges) - 1):
        in_bin = y_values[bin_index == i]
        if len(in_bin) < min_count:
            continue
        centers.append(0.5 * (edges[i] + edges[i + 1]))
        means.append(float(np.mean(in_bin)))
        medians.append(float(np.median(in_bin)))
        q25s.append(float(np.percentile(in_bin, 25)))
        q75s.append(float(np.percentile(in_bin, 75)))
        counts.append(len(in_bin))

    return BinnedStat(
        bin_edges=edges,
        centers=np.asarray(centers),
        means=np.asarray(means),
        medians=np.asarray(medians),
        q25=np.asarray(q25s),
        q75=np.asarray(q75s),
        counts=np.asarray(counts, dtype=int),
    )


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """CV = stddev / mean, the paper's latency-fluctuation metric (§4.2-2).

    Returns ``nan`` for fewer than two samples or a non-positive mean, since
    the ratio is undefined there.
    """
    values = np.asarray(list(samples), dtype=float)
    if len(values) < 2:
        return float("nan")
    mean = float(np.mean(values))
    if mean <= 0:
        return float("nan")
    return float(np.std(values) / mean)


def quantile(samples: Sequence[float], q: float) -> float:
    """Convenience wrapper with validation around :func:`numpy.percentile`."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    values = np.asarray(list(samples), dtype=float)
    if len(values) == 0:
        raise ValueError("cannot take the quantile of an empty sequence")
    return float(np.percentile(values, q * 100.0))


def iqr(samples: Sequence[float]) -> Tuple[float, float]:
    """Return the (25th, 75th) percentile pair used for the error bars."""
    return quantile(samples, 0.25), quantile(samples, 0.75)


def zipf_weights(n: int, alpha: float, top_mass_rank: Optional[int] = None) -> np.ndarray:
    """Normalized Zipf weights for ranks 1..n: w_k ∝ k^-alpha.

    When *top_mass_rank* is given, also validates that the ranks form a
    proper distribution; callers use this to assert skew properties like the
    paper's "top 10% of videos receive ~66% of playbacks".
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-alpha
    weights /= weights.sum()
    if top_mass_rank is not None and not 0 < top_mass_rank <= n:
        raise ValueError("top_mass_rank out of range")
    return weights
