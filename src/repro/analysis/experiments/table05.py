"""Table 5 — OS/browser combinations with the worst download stacks.

Mean positive Eq. 5 download-stack bound per platform.  The paper's
ordering: Safari off-Mac (Linux/Windows) around 1 s, then Firefox on
Windows / "other" browsers on Windows / Firefox on Mac around 280 ms,
with mainstream Chrome/IE/Safari-on-Mac far lower.  Also reproduces the
headline "17.6% of all chunks experience a non-zero download stack
latency".
"""

from __future__ import annotations

import numpy as np

from ...core.downstack import persistent_ds_bound_ms, platform_ds_table
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "table05"
TITLE = "Table 5: platforms by persistent download-stack latency"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, min_chunks: int = 30) -> ExperimentResult:
    rows = platform_ds_table(dataset, min_chunks=min_chunks)
    table = [
        (r.os, r.browser, round(r.mean_ds_ms, 1), r.n_chunks, round(r.nonzero_fraction, 3))
        for r in rows
    ]
    by_key = {(r.os, r.browser): r.mean_ds_ms for r in rows}
    burden = {(r.os, r.browser): r.expected_ds_ms for r in rows}

    bounds = [persistent_ds_bound_ms(c) for c in dataset.join_chunks()]
    bounds = [b for b in bounds if b is not None]
    nonzero_fraction = float(np.mean([b > 0 for b in bounds])) if bounds else 0.0

    safari_windows = by_key.get(("Windows", "Safari"))
    firefox_windows = by_key.get(("Windows", "Firefox"))
    chrome_windows = by_key.get(("Windows", "Chrome"))

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"platform_rows": table},
        summary={
            "n_platforms": float(len(rows)),
            "worst_platform_mean_ds_ms": rows[0].mean_ds_ms if rows else float("nan"),
            "nonzero_ds_chunk_fraction": nonzero_fraction,
            "safari_windows_ds_ms": safari_windows if safari_windows else float("nan"),
            "firefox_windows_ds_ms": firefox_windows if firefox_windows else float("nan"),
            "chrome_windows_ds_ms": chrome_windows if chrome_windows else float("nan"),
        },
        checks={
            "nonzero_ds_fraction_in_band": 0.05 <= nonzero_fraction <= 0.45,
            "safari_off_mac_worst": safari_windows is not None
            and firefox_windows is not None
            and safari_windows > firefox_windows,
            # per-chunk burden comparison is robust to a tiny, outlier-
            # dominated non-zero tail on the healthy platform
            "firefox_worse_than_chrome": burden.get(("Windows", "Firefox"), 0.0)
            > burden.get(("Windows", "Chrome"), float("inf")),
        },
    )
