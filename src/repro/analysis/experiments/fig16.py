"""Fig. 16 — latency vs throughput shares for good and bad chunks.

Chunks split by Eq. 2's performance score (τ/(D_FB+D_LB) ≷ 1):
(a) the latency share D_FB/(D_FB+D_LB) — bad chunks have *lower* latency
share, i.e. they are throughput-dominated; (b,c) raw D_FB and D_LB — both
higher for bad chunks, but the D_LB gap is the defining one.
"""

from __future__ import annotations

import numpy as np

from ...core.perfscore import latency_share, split_by_score
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig16"
TITLE = "Fig. 16: latency share, D_FB, D_LB by performance score"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    good, bad = split_by_score(dataset.join_chunks())
    good_shares = [latency_share(c.player) for c in good]
    bad_shares = [latency_share(c.player) for c in bad]
    good_dfb = [c.player.dfb_ms for c in good]
    bad_dfb = [c.player.dfb_ms for c in bad]
    good_dlb = [c.player.dlb_ms for c in good]
    bad_dlb = [c.player.dlb_ms for c in bad]

    def med(values):
        return float(np.median(values)) if values else float("nan")

    dfb_gap = med(bad_dfb) - med(good_dfb)
    dlb_gap = med(bad_dlb) - med(good_dlb)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "good_latency_shares": good_shares[:5000],
            "bad_latency_shares": bad_shares[:5000],
            "good_dfb_ms": good_dfb[:5000],
            "bad_dfb_ms": bad_dfb[:5000],
            "good_dlb_ms": good_dlb[:5000],
            "bad_dlb_ms": bad_dlb[:5000],
        },
        summary={
            "n_good": float(len(good)),
            "n_bad": float(len(bad)),
            "median_latency_share_good": med(good_shares),
            "median_latency_share_bad": med(bad_shares),
            "median_dfb_good_ms": med(good_dfb),
            "median_dfb_bad_ms": med(bad_dfb),
            "median_dlb_good_ms": med(good_dlb),
            "median_dlb_bad_ms": med(bad_dlb),
        },
        checks={
            "bad_chunks_exist": len(bad) > 20,
            "good_chunks_have_higher_latency_share": med(good_shares) > med(bad_shares),
            "bad_chunks_throughput_dominated": med(bad_shares) < 0.5,
            "dlb_gap_dwarfs_dfb_gap": dlb_gap > 3.0 * max(dfb_gap, 1.0),
        },
    )
