"""Fig. 13 — case study: loss *position* vs QoE.

Two scripted sessions with ~10 chunks, similar bitrates, cache statuses,
and SRTTs.  Case #1 concentrates its (few) losses in the first chunk and
suffers rebuffering; case #2 loses far more packets — but only after four
clean chunks built up the playback buffer, so it streams smoothly.  The
session-wide loss rate misleads: 0.75% beats 22% on QoE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ...client.buffer import PlaybackBuffer
from ...net.path import NetworkPath
from ...net.tcp import TcpConnection
from ...workload.catalog import CHUNK_DURATION_MS, chunk_size_bytes
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig13"
TITLE = "Fig. 13: early vs late loss case study"


@dataclass
class ScriptedSessionResult:
    """Per-chunk outcomes of a scripted session."""

    loss_pct_per_chunk: List[float]
    rebuffer_ms_per_chunk: List[float]
    buffer_level_before_ms: List[float]
    session_retx_rate_pct: float

    @property
    def total_rebuffer_ms(self) -> float:
        return sum(self.rebuffer_ms_per_chunk)

    @property
    def rebuffered(self) -> bool:
        return self.total_rebuffer_ms > 0


def simulate_scripted_session(
    loss_by_chunk: Dict[int, float],
    n_chunks: int = 10,
    bitrate_kbps: float = 1750.0,
    base_rtt_ms: float = 60.0,
    bottleneck_kbps: float = 8_000.0,
    max_buffer_ms: float = 18_000.0,
    seed: int = 0,
) -> ScriptedSessionResult:
    """Run one session whose per-chunk random-loss rate is scripted.

    Congestion episodes are disabled so the loss schedule is the only
    difference between scripted cases.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    rng = np.random.default_rng(seed)
    path = NetworkPath(
        base_rtt_ms=base_rtt_ms,
        bottleneck_kbps=bottleneck_kbps,
        loss_rate=0.0,
        jitter_sigma=0.05,
        rng=rng,
        episode_gap_mean_ms=1e12,  # no episodes: the script is in control
        buffer_bdp_multiple=2.0,
    )
    conn = TcpConnection(path, rng, max_window_segments=256)
    buffer = PlaybackBuffer()
    size = chunk_size_bytes(bitrate_kbps)

    loss_pct: List[float] = []
    rebuffer_ms: List[float] = []
    levels: List[float] = []
    total_retx = 0
    total_sent = 0
    t = 0.0
    for index in range(n_chunks):
        path.loss_rate = float(loss_by_chunk.get(index, 0.0))
        level_before = buffer.level_at(t)
        levels.append(level_before)
        rtt0 = path.sample_rtt(t)
        transfer = conn.transfer(size, t + rtt0 / 2.0 + 2.0 + rtt0 / 2.0)
        complete = t + rtt0 + 2.0 + transfer.duration_ms
        _, stall = buffer.on_chunk_ready(index, CHUNK_DURATION_MS, complete)
        rebuffer_ms.append(stall)
        loss_pct.append(100.0 * transfer.retx_rate)
        total_retx += transfer.segments_retx
        total_sent += transfer.segments_sent
        level_after = buffer.level_at(complete)
        t = complete + max(0.0, level_after - max_buffer_ms)

    return ScriptedSessionResult(
        loss_pct_per_chunk=loss_pct,
        rebuffer_ms_per_chunk=rebuffer_ms,
        buffer_level_before_ms=levels,
        session_retx_rate_pct=100.0 * total_retx / max(total_sent, 1),
    )


@register(EXPERIMENT_ID)
def run(seed: int = 3) -> ExperimentResult:
    # Case #1: a burst of loss over the session's first two chunks, clean
    # after — the thin startup buffer cannot absorb the slow chunks.
    case1 = simulate_scripted_session(
        {0: 0.30, 1: 0.18},
        bitrate_kbps=560.0,
        bottleneck_kbps=12_000.0,
        seed=seed,
    )
    # Case #2: four clean chunks build a deep buffer (the paper's example
    # reached 29.8 s), then sustained loss for the rest of the session —
    # TCP's degraded goodput still roughly keeps pace, and the buffer
    # absorbs the shortfall.
    case2 = simulate_scripted_session(
        {k: 0.10 for k in range(4, 10)},
        bitrate_kbps=560.0,
        bottleneck_kbps=12_000.0,
        max_buffer_ms=30_000.0,
        seed=seed + 1,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "case1_loss_pct_per_chunk": case1.loss_pct_per_chunk,
            "case2_loss_pct_per_chunk": case2.loss_pct_per_chunk,
            "case1_rebuffer_ms_per_chunk": case1.rebuffer_ms_per_chunk,
            "case2_rebuffer_ms_per_chunk": case2.rebuffer_ms_per_chunk,
            "case2_buffer_before_ms": case2.buffer_level_before_ms,
        },
        summary={
            "case1_session_retx_pct": case1.session_retx_rate_pct,
            "case2_session_retx_pct": case2.session_retx_rate_pct,
            "case1_total_rebuffer_ms": case1.total_rebuffer_ms,
            "case2_total_rebuffer_ms": case2.total_rebuffer_ms,
            "case2_buffer_at_first_loss_ms": case2.buffer_level_before_ms[4],
        },
        checks={
            # the paradox: the low-loss session rebuffers, the high-loss
            # session does not
            "case1_lower_session_loss": case1.session_retx_rate_pct
            < case2.session_retx_rate_pct,
            "case1_rebuffers": case1.rebuffered,
            "case2_plays_smoothly": not case2.rebuffered,
            "case2_built_buffer_before_loss": case2.buffer_level_before_ms[4]
            > 10_000.0,
        },
    )
