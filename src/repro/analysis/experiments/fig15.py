"""Fig. 15 — average per-chunk retransmission rate.

The first chunk carries by far the highest retransmission rate: slow
start doubles the window until it overruns the bottleneck queue, and the
resulting burst loss lands in chunk 0.  Later chunks, in congestion
avoidance, lose little.
"""

from __future__ import annotations

import numpy as np

from ...core.netdiag import per_chunk_retx_rates
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig15"
TITLE = "Fig. 15: average retransmission rate per chunk position"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, max_chunk_id: int = 12) -> ExperimentResult:
    rows = per_chunk_retx_rates(dataset, max_chunk_id=max_chunk_id)
    rates = {cid: rate for cid, rate in rows}
    first = rates.get(0, 0.0)
    later = [rate for cid, rate in rows if cid >= 2]
    later_mean = float(np.mean(later)) if later else 0.0
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"retx_rate_by_chunk": [(cid, 100.0 * r) for cid, r in rows]},
        summary={
            "first_chunk_retx_pct": 100.0 * first,
            "later_chunks_retx_pct": 100.0 * later_mean,
            "first_to_later_ratio": first / later_mean if later_mean > 0 else float("inf"),
        },
        checks={
            "first_chunk_highest": bool(rows)
            and first >= max(rate for _, rate in rows) - 1e-12,
            "first_chunk_much_higher": later_mean > 0 and first > 2.0 * later_mean,
        },
    )
