"""Fig. 12 — re-buffering rate vs retransmission rate across sessions.

Higher loss rates generally indicate higher re-buffering, though §4.2-3
stresses the relation is noisy because loss *position* matters too.
"""

from __future__ import annotations

import numpy as np

from ...core.netdiag import session_rebuffer_vs_retx
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig12"
TITLE = "Fig. 12: rebuffering rate vs retransmission rate"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    rows = session_rebuffer_vs_retx(dataset)
    centers = [c for c, _, _ in rows]
    means = [m for _, m, _ in rows]
    # Correlation over the binned relation.
    trend = 0.0
    if len(rows) >= 3 and np.std(centers) > 0 and np.std(means) > 0:
        trend = float(np.corrcoef(centers, means)[0, 1])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"retx_pct_center__rebuffer_pct__n": rows},
        summary={
            "n_bins": float(len(rows)),
            "rebuffer_pct_lowest_retx": means[0] if means else float("nan"),
            "rebuffer_pct_highest_retx": means[-1] if means else float("nan"),
            "binned_correlation": trend,
        },
        checks={
            "rebuffering_rises_with_loss": len(means) >= 2 and means[-1] > means[0],
            "positive_trend": trend > 0.3,
        },
    )
