"""Fig. 12 — re-buffering rate vs retransmission rate across sessions.

Higher loss rates generally indicate higher re-buffering, though §4.2-3
stresses the relation is noisy because loss *position* matters too.
"""

from __future__ import annotations

import numpy as np

from ...core.netdiag import session_rebuffer_vs_retx
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig12"
TITLE = "Fig. 12: rebuffering rate vs retransmission rate"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    rows = session_rebuffer_vs_retx(dataset)
    centers = np.array([c for c, _, _ in rows])
    means = np.array([m for _, m, _ in rows])
    counts = np.array([n for _, _, n in rows])
    # Session-count-weighted correlation over the binned relation: the
    # sparse high-retx tail bins hold a handful of sessions each, so an
    # unweighted correlation is dominated by their noise (the paper calls
    # the relation noisy — loss position matters as much as loss rate).
    trend = 0.0
    if len(rows) >= 3:
        cov = np.cov(np.vstack([centers, means]), aweights=counts)
        if cov[0, 0] > 0 and cov[1, 1] > 0:
            trend = float(cov[0, 1] / np.sqrt(cov[0, 0] * cov[1, 1]))
    # Pooled low/high comparison: rebuffering among sessions with >= 2%
    # retransmissions vs the (large) < 1% population.
    sessions = dataset.sessions()
    low = [100.0 * s.rebuffer_rate for s in sessions if 100.0 * s.session_retx_rate < 1.0]
    high = [100.0 * s.rebuffer_rate for s in sessions if 100.0 * s.session_retx_rate >= 2.0]
    low_mean = float(np.mean(low)) if low else float("nan")
    high_mean = float(np.mean(high)) if high else float("nan")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"retx_pct_center__rebuffer_pct__n": [tuple(r) for r in rows]},
        summary={
            "n_bins": float(len(rows)),
            "rebuffer_pct_low_retx": low_mean,
            "rebuffer_pct_high_retx": high_mean,
            "weighted_binned_correlation": trend,
        },
        checks={
            "rebuffering_rises_with_loss": bool(
                low and high and high_mean > 1.5 * max(low_mean, 1e-9)
            ),
            "positive_trend": trend > 0.3,
        },
    )
