"""Table 1 — the paper's key-findings summary, verified end to end.

Runs every Table-1 check (see :mod:`repro.core.report`) against the
standard dataset and reports the support status of all thirteen findings.
"""

from __future__ import annotations

from ...core.proxy_filter import filter_proxies
from ...core.report import evaluate_key_findings
from ...simulation.driver import SimulationResult
from .base import ExperimentResult, register
from .common import pop_locations

EXPERIMENT_ID = "table01"
TITLE = "Table 1: all thirteen key findings"


@register(EXPERIMENT_ID)
def run(result: SimulationResult) -> ExperimentResult:
    dataset, _ = filter_proxies(result.dataset)
    report = evaluate_key_findings(dataset, pop_locations(result))
    checks = {check.finding_id: check.passed for check in report.checks}
    evidence = {
        f"{check.finding_id}.{key}": value
        for check in report.checks
        for key, value in check.evidence.items()
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"report_text": str(report)},
        summary={
            "n_findings": float(len(report.checks)),
            "n_supported": float(report.n_passed),
            **evidence,
        },
        checks=checks,
    )
