"""Fig. 17 — case study: a chunk buffered inside the client download stack.

A session whose chunk 7 is held by the stack: its first-byte delay spikes
with no matching spike in SRTT, server latency, or backend latency, and
its instantaneous download throughput exceeds anything the connection's
CWND/SRTT could deliver (Eq. 3).  Eq. 4 flags exactly that chunk.

The session here is built from synthetic telemetry records (a controlled
fixture, like the paper's hand-picked production example), then fed to the
production detector.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...core.downstack import detect_transient_outliers, instantaneous_throughput_kbps
from ...telemetry.collector import TelemetryCollector
from ...telemetry.records import (
    CdnChunkRecord,
    CdnSessionRecord,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)
from ...workload.catalog import CHUNK_DURATION_MS
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig17"
TITLE = "Fig. 17: download-stack buffering case study (Eq. 4 detection)"

SESSION_ID = "fig17-case"


def build_case_dataset(
    n_chunks: int = 22,
    ds_chunk: int = 7,
    held_ms: float = 2500.0,
    seed: int = 1,
):
    """Synthesize the case-study session: stable except one buffered chunk."""
    rng = np.random.default_rng(seed)
    collector = TelemetryCollector()
    collector.add_player_session(
        PlayerSessionRecord(
            session_id=SESSION_ID,
            client_ip="10.1.2.3",
            user_agent="Mozilla/5.0 (Windows NT 10.0) Firefox/Flash",
            video_id=1,
            video_duration_ms=n_chunks * CHUNK_DURATION_MS,
            start_ms=0.0,
            os="Windows",
            browser="Firefox",
        )
    )
    collector.add_cdn_session(
        CdnSessionRecord(
            session_id=SESSION_ID,
            client_ip="10.1.2.3",
            user_agent="Mozilla/5.0 (Windows NT 10.0) Firefox/Flash",
            pop_id="pop-chicago",
            server_id="srv-chicago-00",
            org="Comcast",
            conn_type="cable",
            country="US",
            city="Chicago",
            lat=41.88,
            lon=-87.63,
        )
    )
    chunk_bytes = 1_300_000
    t = 0.0
    for index in range(n_chunks):
        srtt = float(rng.normal(60.0, 2.0))
        server = float(rng.normal(2.0, 0.3))
        network_dlb = float(rng.normal(900.0, 50.0))
        if index == ds_chunk:
            dfb = srtt + server + held_ms
            dlb = max(120.0, network_dlb - held_ms)
        else:
            dfb = srtt + server + float(rng.normal(15.0, 3.0))
            dlb = network_dlb
        collector.add_player_chunk(
            PlayerChunkRecord(
                session_id=SESSION_ID,
                chunk_id=index,
                dfb_ms=dfb,
                dlb_ms=dlb,
                bitrate_kbps=1750.0,
                chunk_duration_ms=CHUNK_DURATION_MS,
                rebuffer_count=0,
                rebuffer_ms=0.0,
                visible=True,
                avg_fps=30.0,
                dropped_frames=0,
                total_frames=180,
                request_sent_ms=t,
            )
        )
        collector.add_cdn_chunk(
            CdnChunkRecord(
                session_id=SESSION_ID,
                chunk_id=index,
                d_wait_ms=0.3,
                d_open_ms=0.1,
                d_read_ms=server,
                d_be_ms=0.0,
                cache_status="hit_ram",
                chunk_bytes=chunk_bytes,
                server_id="srv-chicago-00",
                pop_id="pop-chicago",
                served_at_ms=t + srtt / 2,
            )
        )
        collector.add_tcp_snapshot(
            TcpInfoRecord(
                session_id=SESSION_ID,
                chunk_id=index,
                t_ms=t + dfb + dlb,
                cwnd_segments=int(rng.normal(90, 5)),
                srtt_ms=srtt,
                rttvar_ms=4.0,
                retx_total=0,
                mss=1460,
            )
        )
        t += dfb + dlb + 500.0
    return collector.dataset()


@register(EXPERIMENT_ID)
def run(ds_chunk: int = 7) -> ExperimentResult:
    dataset = build_case_dataset(ds_chunk=ds_chunk)
    session = dataset.sessions()[0]
    flagged = detect_transient_outliers(session)
    flagged_ids = [c.chunk_id for c in flagged]

    dfb_series = [(c.chunk_id, c.player.dfb_ms) for c in session.chunks]
    download_tp = [
        (c.chunk_id, instantaneous_throughput_kbps(c) / 1000.0) for c in session.chunks
    ]
    connection_tp = [
        (c.chunk_id, c.last_tcp.throughput_kbps / 1000.0)
        for c in session.chunks
        if c.last_tcp is not None
    ]
    case = session.chunks[ds_chunk]
    tp_ratio = instantaneous_throughput_kbps(case) / max(
        case.last_tcp.throughput_kbps, 1e-9
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "dfb_ms_by_chunk": dfb_series,
            "download_tp_mbps_by_chunk": download_tp,
            "connection_tp_mbps_by_chunk": connection_tp,
        },
        summary={
            "flagged_chunk": float(flagged_ids[0]) if flagged_ids else -1.0,
            "n_flagged": float(len(flagged_ids)),
            "case_tp_over_connection_tp": tp_ratio,
            "case_dfb_ms": case.player.dfb_ms,
        },
        checks={
            "detector_flags_exactly_one": len(flagged_ids) == 1,
            "detector_flags_the_buffered_chunk": flagged_ids == [ds_chunk],
            "tp_exceeds_connection_capability": tp_ratio > 1.5,
        },
    )
