"""Fig. 21 — browser popularity and rendering quality per platform.

Per-OS browser chunk shares (normalized within Windows and Mac) side by
side with each browser's mean dropped-frame percentage.  The paper's
ordering: browsers with internal Flash (Chrome) or native HLS (Safari on
Mac) outperform; Firefox (Flash as a separate process) trails; the
"Other" bucket is worst.
"""

from __future__ import annotations

import numpy as np

from ...core.rendering_diag import browser_rendering_table
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig21"
TITLE = "Fig. 21: browser share and dropped frames, Windows vs Mac"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, min_chunks: int = 50) -> ExperimentResult:
    rows = browser_rendering_table(dataset, min_chunks=min_chunks)
    table = [
        (r.os, r.browser, round(r.chunk_share_pct, 2), round(r.mean_dropped_pct, 2))
        for r in rows
    ]
    drops = {(r.os, r.browser): r.mean_dropped_pct for r in rows}
    shares = {(r.os, r.browser): r.chunk_share_pct for r in rows}

    chrome_win = drops.get(("Windows", "Chrome"))
    firefox_win = drops.get(("Windows", "Firefox"))
    safari_mac = drops.get(("Mac", "Safari"))
    firefox_mac = drops.get(("Mac", "Firefox"))

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"rows_os_browser_share_drops": table},
        summary={
            "chrome_windows_drop_pct": chrome_win if chrome_win else float("nan"),
            "firefox_windows_drop_pct": firefox_win if firefox_win else float("nan"),
            "safari_mac_drop_pct": safari_mac if safari_mac else float("nan"),
            "chrome_windows_share_pct": shares.get(("Windows", "Chrome"), float("nan")),
        },
        checks={
            "both_platforms_present": any(os == "Windows" for os, *_ in table)
            and any(os == "Mac" for os, *_ in table),
            "chrome_beats_firefox_on_windows": chrome_win is not None
            and firefox_win is not None
            and chrome_win < firefox_win,
            "safari_beats_firefox_on_mac": safari_mac is not None
            and firefox_mac is not None
            and safari_mac < firefox_mac,
            "shares_normalized": abs(
                sum(share for os, _, share, _ in table if os == "Windows") - 100.0
            )
            < 15.0,
        },
    )
