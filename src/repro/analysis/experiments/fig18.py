"""Fig. 18 — first-chunk D_FB vs other chunks in equivalent conditions.

The paper's equivalence filter (no loss, CWND > IW, similar SRTT, low
server latency, cache hit) isolates the download stack's first-chunk
setup cost: event-listener registration and data-path initialization add
~300 ms to the first chunk's median D_FB.
"""

from __future__ import annotations

import numpy as np

from ...core.rendering_diag import first_chunk_equivalence_split
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig18"
TITLE = "Fig. 18: D_FB of first vs other chunks, equivalent conditions"


@register(EXPERIMENT_ID)
def run(
    dataset: Dataset,
    srtt_band_ms=(40.0, 90.0),
) -> ExperimentResult:
    first, other = first_chunk_equivalence_split(dataset, srtt_band_ms=srtt_band_ms)
    median_first = float(np.median(first)) if first else float("nan")
    median_other = float(np.median(other)) if other else float("nan")
    gap = median_first - median_other
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"first_dfb_ms": first[:5000], "other_dfb_ms": other[:5000]},
        summary={
            "n_first": float(len(first)),
            "n_other": float(len(other)),
            "median_first_dfb_ms": median_first,
            "median_other_dfb_ms": median_other,
            "median_gap_ms": gap,
        },
        checks={
            "enough_samples": len(first) >= 20 and len(other) >= 100,
            "first_chunk_slower": gap > 0,
            # paper: "the median D_FB is 300ms higher than other chunks"
            "gap_hundreds_of_ms": 100.0 <= gap <= 1000.0,
        },
    )
