"""Fig. 10 — CDF of path latency fluctuation: CV of SRTT per (prefix, PoP).

Sessions grouped by (client /24 prefix, serving PoP); each session
contributes its mean SRTT; the CV across a path's sessions measures
long-term path stability.  The paper finds ~40% of paths with CV > 1.
"""

from __future__ import annotations

import numpy as np

from ...analysis.stats import empirical_cdf
from ...core.netdiag import path_cv_values
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig10"
TITLE = "Fig. 10: CV of latency per (prefix, PoP) path"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, min_sessions: int = 5) -> ExperimentResult:
    values = path_cv_values(dataset, min_sessions=min_sessions)
    cdf = empirical_cdf(values)
    high_fraction = float(np.mean([v > 1.0 for v in values])) if values else 0.0
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"path_cv_values": values},
        summary={
            "n_paths": float(len(values)),
            "median_path_cv": cdf.median if len(cdf) else float("nan"),
            "fraction_paths_cv_above_1": high_fraction,
        },
        checks={
            "paths_measured": len(values) >= 20,
            "high_variation_paths_exist": high_fraction > 0.02,
            "cv_distribution_skewed": len(cdf) > 0
            and cdf.value_at(0.95) > 2.0 * max(cdf.median, 1e-9),
        },
    )
