"""Fig. 8 — CDF of baseline latency and latency variation across sessions.

srtt_min (the per-session baseline, computed from per-chunk minima of SRTT
and the rtt0 upper bound) and σ(SRTT) (the per-session standard deviation).
Both problems coexist in the population: a heavy baseline tail (distance,
enterprise paths) and a heavy variation tail (episodes).
"""

from __future__ import annotations

import numpy as np

from ...analysis.stats import empirical_cdf
from ...core.decomposition import session_min_rtt, session_srtt_sigma
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig08"
TITLE = "Fig. 8: CDFs of srtt_min and sigma(SRTT) across sessions"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    minima = []
    sigmas = []
    for session in dataset.sessions():
        baseline = session_min_rtt(session)
        if baseline is not None:
            minima.append(baseline)
        sigma = session_srtt_sigma(session)
        if sigma is not None:
            sigmas.append(sigma)

    min_cdf = empirical_cdf(minima)
    sigma_cdf = empirical_cdf(sigmas)
    tail_fraction = float(np.mean([m > 100.0 for m in minima])) if minima else 0.0

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "srtt_min_ms": minima[:5000],
            "sigma_srtt_ms": sigmas[:5000],
        },
        summary={
            "median_srtt_min_ms": min_cdf.median if len(min_cdf) else float("nan"),
            "p90_srtt_min_ms": min_cdf.value_at(0.9) if len(min_cdf) else float("nan"),
            "median_sigma_srtt_ms": sigma_cdf.median if len(sigma_cdf) else float("nan"),
            "p90_sigma_srtt_ms": sigma_cdf.value_at(0.9) if len(sigma_cdf) else float("nan"),
            "fraction_srtt_min_above_100ms": tail_fraction,
        },
        checks={
            "baseline_tail_exists": tail_fraction > 0.01,
            "variation_tail_exists": len(sigma_cdf) > 0
            and sigma_cdf.value_at(0.9) > 3.0 * max(sigma_cdf.median, 1e-9),
            "median_baseline_reasonable": len(min_cdf) > 0
            and 5.0 <= min_cdf.median <= 200.0,
        },
    )
