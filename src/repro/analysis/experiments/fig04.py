"""Fig. 4 — impact of first-chunk server latency on startup time.

Startup delay (time to play) binned by the first chunk's server-side
latency (D_CDN + D_BE), with mean, median, and IQR error bars.  The paper's
shape: a clear monotone increase — server latency passes straight through
to the user's startup experience.
"""

from __future__ import annotations

import numpy as np

from ...core.qoe import startup_vs_first_chunk_server_latency
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig04"
TITLE = "Fig. 4: startup time vs first-chunk server latency"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    binned = startup_vs_first_chunk_server_latency(dataset)
    rows = binned.rows()
    means = [mean for _, mean, _, _, _, _ in rows]
    # Judge the trend on binned *medians*: startup's download-phase tail
    # makes bin means noisy at simulation scale (the paper plots both and
    # its medians carry the trend too).
    medians = [median for _, _, median, _, _, _ in rows]
    increase = medians[-1] - medians[0] if len(medians) >= 2 else 0.0

    # Startup has a heavy-tailed download component, so raw-mean
    # regressions are fragile; the robust pass-through evidence is the
    # *median* startup and first-byte delay of miss-sessions (high server
    # latency) versus RAM-hit sessions (sub-millisecond server latency).
    startup_by_status: dict = {"hit_ram": [], "hit_disk": [], "miss": []}
    dfb_by_status: dict = {"hit_ram": [], "hit_disk": [], "miss": []}
    for session in dataset.sessions():
        if not session.chunks or session.chunks[0].chunk_id != 0:
            continue
        startup = session.startup_delay_ms
        if startup is None:
            continue
        first = session.chunks[0]
        startup_by_status.setdefault(first.cdn.cache_status, []).append(startup)
        dfb_by_status.setdefault(first.cdn.cache_status, []).append(first.player.dfb_ms)

    def med(values):
        return float(np.median(values)) if values else float("nan")

    median_startup_hit = med(startup_by_status["hit_ram"])
    median_startup_slow = med(
        startup_by_status["miss"] + startup_by_status["hit_disk"]
    )
    median_dfb_hit = med(dfb_by_status["hit_ram"])
    median_dfb_miss = med(dfb_by_status["miss"])

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"rows_center_mean_median_q25_q75_n": rows},
        summary={
            "n_bins": float(len(rows)),
            "startup_ms_low_server_latency": means[0] if means else float("nan"),
            "startup_ms_high_server_latency": means[-1] if means else float("nan"),
            "startup_increase_ms": increase,
            "median_startup_fast_server_ms": median_startup_hit,
            "median_startup_slow_server_ms": median_startup_slow,
            "median_first_dfb_hit_ms": median_dfb_hit,
            "median_first_dfb_miss_ms": median_dfb_miss,
        },
        checks={
            "startup_grows_with_server_latency": increase > 0,
            "slow_server_slower_startup": np.isfinite(median_startup_slow)
            and median_startup_slow > median_startup_hit,
            "server_latency_reaches_first_byte": np.isfinite(median_dfb_miss)
            and median_dfb_miss > median_dfb_hit + 30.0,
        },
    )
