"""One module per paper figure/table, all registered under their ids.

Usage::

    from repro.analysis.experiments import run_experiment, common
    result = run_experiment("fig05", common.filtered_dataset("small"))
    print(result.format_report())

Experiments take different inputs depending on what they reproduce:
figures over the production dataset take a :class:`~repro.telemetry.dataset.Dataset`;
geography/fleet analyses (fig09, table01) take the full
:class:`~repro.simulation.driver.SimulationResult`; scripted case studies
(fig13, fig17, fig20) and the workload-shape figure (fig03) build their
own fixtures and take only parameters.
"""

from . import (  # noqa: F401  (import for registration side effects)
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig22,
    table01,
    table04,
    table05,
)
from . import common
from .base import ExperimentResult, all_experiments, get_experiment

#: experiments whose ``run`` takes the joined/filtered Dataset
DATASET_EXPERIMENTS = (
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig16",
    "fig18",
    "fig19",
    "fig21",
    "fig22",
    "table04",
    "table05",
)
#: experiments whose ``run`` takes the full SimulationResult
RESULT_EXPERIMENTS = ("fig09", "table01")
#: experiments that build their own fixtures
STANDALONE_EXPERIMENTS = ("fig03", "fig13", "fig17", "fig20")


def run_experiment(experiment_id: str, *args, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    return get_experiment(experiment_id)(*args, **kwargs)


def run_all(scale: str = "medium", seed: int = 7, workers: int = 1) -> dict:
    """Run the entire suite against one shared simulation; returns {id: result}.

    ``workers > 1`` shards the shared simulation across worker processes
    (identical telemetry under the default ``server`` sharding).
    """
    results = {}
    for experiment_id in STANDALONE_EXPERIMENTS:
        results[experiment_id] = run_experiment(experiment_id)
    dataset = common.filtered_dataset(scale, seed, workers)
    for experiment_id in DATASET_EXPERIMENTS:
        results[experiment_id] = run_experiment(experiment_id, dataset)
    sim_result = common.standard_result(scale, seed, workers)
    for experiment_id in RESULT_EXPERIMENTS:
        results[experiment_id] = run_experiment(experiment_id, sim_result)
    return results


__all__ = [
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
    "run_all",
    "common",
    "DATASET_EXPERIMENTS",
    "RESULT_EXPERIMENTS",
    "STANDALONE_EXPERIMENTS",
]
