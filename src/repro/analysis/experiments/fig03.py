"""Fig. 3 — dataset shape: video-length CCDF and rank-vs-popularity.

(a) CCDF of video durations over the catalog (long tail from tens of
seconds to hours); (b) normalized rank vs normalized request frequency on
log-log axes, with the headline skew statistic: the top 10% of videos
receive ~66% of all playbacks (§3).
"""

from __future__ import annotations

import numpy as np

from ...analysis.stats import empirical_ccdf
from ...workload.catalog import generate_catalog
from ...workload.popularity import PopularityModel
from ...workload.randomness import spawn
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig03"
TITLE = "Fig. 3: video length CCDF and rank-vs-popularity skew"


@register(EXPERIMENT_ID)
def run(
    n_videos: int = 10_000,
    zipf_alpha: float = 0.8,
    n_requests: int = 200_000,
    seed: int = 7,
) -> ExperimentResult:
    """Build a full-size catalog and sample one day of requests."""
    catalog = generate_catalog(n_videos=n_videos, seed=seed, zipf_alpha=zipf_alpha)

    # (a) video-length CCDF, in seconds as the paper plots it.
    durations_s = [video.duration_ms / 1000.0 for video in catalog.videos]
    ccdf = empirical_ccdf(durations_s)

    # (b) rank vs observed frequency from sampled requests.
    rng = spawn(seed, "fig03-requests")
    ranks = catalog.popularity.sample_ranks(rng, n_requests)
    counts = np.bincount(ranks, minlength=n_videos).astype(float)
    order = np.argsort(-counts)
    frequencies = counts[order] / n_requests
    normalized_rank = (np.arange(n_videos) + 1) / n_videos

    top10_mass = catalog.popularity.top_fraction_mass(0.10)
    observed_top10 = float(frequencies[: max(1, n_videos // 10)].sum())

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "length_ccdf_xs_s": ccdf.xs.tolist(),
            "length_ccdf_ps": ccdf.ps.tolist(),
            "normalized_rank": normalized_rank.tolist(),
            "normalized_frequency": frequencies.tolist(),
        },
        summary={
            "median_video_length_s": float(np.median(durations_s)),
            "p99_video_length_s": float(np.percentile(durations_s, 99)),
            "top10pct_playback_share_model": top10_mass,
            "top10pct_playback_share_observed": observed_top10,
        },
        checks={
            "length_tail_spans_decades": max(durations_s) / max(min(durations_s), 1e-9) > 100,
            # §3: "top 10% of most popular videos receive about 66% of all
            # playbacks" — allow a band around the paper's 0.66.
            "top10pct_share_near_66pct": 0.55 <= observed_top10 <= 0.78,
            "popularity_monotone": bool(np.all(np.diff(frequencies[:100]) <= 1e-12)),
        },
    )
