"""Fig. 20 — controlled experiment: dropped frames vs CPU load.

The lab replay (see :mod:`repro.simulation.controlled`): Firefox on an
8-core Mac over GigE, 10 chunks per level.  GPU rendering drops almost
nothing; software rendering degrades roughly linearly as background load
occupies more cores.
"""

from __future__ import annotations

import numpy as np

from ...simulation.controlled import run_controlled_rendering_experiment
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig20"
TITLE = "Fig. 20: dropped frames vs CPU load (controlled)"


@register(EXPERIMENT_ID)
def run(n_cores: int = 8, seed: int = 0) -> ExperimentResult:
    result = run_controlled_rendering_experiment(n_cores=n_cores, seed=seed)
    gpu = result.dropped_pct[0]
    software = list(result.dropped_pct[1:])
    loads = list(range(len(software)))
    slope = 0.0
    if len(software) >= 3 and np.std(loads) > 0:
        slope = float(np.polyfit(loads, software, 1)[0])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"labels": list(result.labels), "dropped_pct": list(result.dropped_pct)},
        summary={
            "gpu_drop_pct": gpu,
            "software_idle_drop_pct": software[0] if software else float("nan"),
            "software_full_load_drop_pct": software[-1] if software else float("nan"),
            "drop_pct_per_loaded_core": slope,
        },
        checks={
            "gpu_near_zero": gpu < 1.5,
            "software_worse_than_gpu": bool(software) and software[0] > gpu,
            "drops_grow_with_load": bool(software) and software[-1] > software[0],
            "roughly_linear_growth": slope > 0.3,
        },
    )
