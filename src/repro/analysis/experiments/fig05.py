"""Fig. 5 — CDN latency breakdown across all chunks.

CDFs of D_wait, D_open, D_read, plus total server latency split by cache
hit vs miss.  The paper's signatures, all asserted here:

* D_wait < 1 ms for most chunks; D_open negligible;
* D_read bimodal, the two modes separated by the ~10 ms open-read-retry
  timer (which affects ~35% of chunks in the paper);
* median total: ~2 ms on a hit vs ~80 ms on a miss (~40x);
* misses dominate the ~5% of chunks where server latency exceeds the
  network RTT.
"""

from __future__ import annotations

import numpy as np

from ...analysis.stats import empirical_cdf
from ...core.decomposition import server_latency_exceeds_network
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig05"
TITLE = "Fig. 5: CDN latency breakdown (wait/open/read, hit vs miss)"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    chunks = dataset.join_chunks()
    waits = [c.cdn.d_wait_ms for c in chunks]
    opens = [c.cdn.d_open_ms for c in chunks]
    reads = [c.cdn.d_read_ms for c in chunks]
    hit_total = [c.cdn.total_server_ms for c in chunks if c.cdn.is_hit]
    miss_total = [c.cdn.total_server_ms for c in chunks if not c.cdn.is_hit]

    retry_affected = float(np.mean([r >= 10.0 for r in reads])) if reads else 0.0
    median_hit = float(np.median(hit_total)) if hit_total else float("nan")
    median_miss = float(np.median(miss_total)) if miss_total else float("nan")

    # "for 95% of chunks, network latency is higher than server latency;
    # however, among the remaining 5%, the cache miss ratio is 40%".
    server_dominant = [c for c in chunks if server_latency_exceeds_network(c)]
    dominant_fraction = len(server_dominant) / len(chunks) if chunks else 0.0
    miss_ratio_overall = float(np.mean([not c.cdn.is_hit for c in chunks])) if chunks else 0.0
    miss_ratio_dominant = (
        float(np.mean([not c.cdn.is_hit for c in server_dominant]))
        if server_dominant
        else 0.0
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "wait_cdf": empirical_cdf(waits).xs.tolist()[:: max(1, len(waits) // 500)],
            "read_values_ms": reads[:5000],
            "hit_total_ms": hit_total[:5000],
            "miss_total_ms": miss_total[:5000],
        },
        summary={
            "median_wait_ms": float(np.median(waits)) if waits else float("nan"),
            "median_open_ms": float(np.median(opens)) if opens else float("nan"),
            "median_read_ms": float(np.median(reads)) if reads else float("nan"),
            "median_hit_total_ms": median_hit,
            "median_miss_total_ms": median_miss,
            "hit_miss_ratio": median_miss / median_hit if hit_total else float("nan"),
            "retry_timer_chunk_fraction": retry_affected,
            "server_dominant_fraction": dominant_fraction,
            "miss_ratio_among_server_dominant": miss_ratio_dominant,
            "miss_ratio_overall": miss_ratio_overall,
        },
        checks={
            "wait_negligible": bool(waits) and float(np.median(waits)) < 1.0,
            "open_negligible": bool(opens) and float(np.median(opens)) < 1.0,
            "read_bimodal_retry_timer": bool(reads)
            and float(np.percentile(reads, 95)) >= 10.0
            and float(np.median(reads)) < 10.0,
            "miss_order_of_magnitude": bool(miss_total)
            and median_miss / median_hit >= 10.0,
            "misses_dominate_server_dominant_chunks": miss_ratio_dominant
            > 2.0 * max(miss_ratio_overall, 1e-9),
        },
    )
