"""Fig. 7 — startup delay vs first-chunk network latency (SRTT).

Same presentation as Fig. 4 but against the first chunk's SRTT: high
network round-trip times push startup delay up roughly linearly (every
slow-start round costs one RTT).
"""

from __future__ import annotations

from ...core.qoe import startup_vs_first_chunk_srtt
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig07"
TITLE = "Fig. 7: startup delay vs first-chunk SRTT"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    binned = startup_vs_first_chunk_srtt(dataset)
    rows = binned.rows()
    means = [mean for _, mean, _, _, _, _ in rows]
    increase = means[-1] - means[0] if len(means) >= 2 else 0.0
    monotone_pairs = sum(1 for a, b in zip(means[:-1], means[1:]) if b >= a)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"rows_center_mean_median_q25_q75_n": rows},
        summary={
            "n_bins": float(len(rows)),
            "startup_ms_low_srtt": means[0] if means else float("nan"),
            "startup_ms_high_srtt": means[-1] if means else float("nan"),
            "startup_increase_ms": increase,
        },
        checks={
            "startup_grows_with_srtt": increase > 0,
            "mostly_monotone": len(means) >= 3
            and monotone_pairs >= 0.7 * (len(means) - 1),
        },
    )
