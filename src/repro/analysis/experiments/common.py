"""Shared simulated datasets for the experiment suite.

Most experiments analyze the same "collection period", so the suite shares
one simulation per scale (cached in-process).  ``standard_result`` is the
equivalent of the paper's two-week production dataset: sessions from the
full client population against the full CDN fleet, with caches warmed to
steady state and proxies still present (each experiment applies the §3
proxy filter itself, as the paper does).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from ...core.proxy_filter import filter_proxies
from ...simulation.config import SimulationConfig
from ...simulation.driver import SimulationResult, Simulator
from ...telemetry.dataset import Dataset
from ...workload.geo import GeoPoint

__all__ = [
    "standard_config",
    "standard_result",
    "filtered_dataset",
    "pop_locations",
    "SCALES",
]

#: (n_sessions, warmup_sessions) per named scale.
SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (400, 800),
    "small": (1500, 3000),
    "medium": (6000, 10_000),
    "large": (20_000, 25_000),
}


def standard_config(scale: str = "medium", seed: int = 7) -> SimulationConfig:
    """The canonical experiment configuration at a named scale."""
    try:
        n_sessions, warmup = SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None
    return SimulationConfig(
        n_sessions=n_sessions,
        warmup_sessions=warmup,
        seed=seed,
    )


@lru_cache(maxsize=4)
def standard_result(scale: str = "medium", seed: int = 7, workers: int = 1) -> SimulationResult:
    """Run (once per process) and cache the standard simulation.

    ``workers > 1`` shards the simulation across worker processes; the
    default ``server`` sharding produces the same records as the serial
    run (canonically ordered), so every experiment sees identical data.
    """
    config = standard_config(scale, seed)
    if workers > 1:
        from ...simulation.parallel import ParallelSimulator

        return ParallelSimulator(config, workers=workers).run()
    return Simulator(config).run()


@lru_cache(maxsize=4)
def filtered_dataset(scale: str = "medium", seed: int = 7, workers: int = 1) -> Dataset:
    """The standard dataset after §3 proxy filtering."""
    dataset, _ = filter_proxies(standard_result(scale, seed, workers).dataset)
    return dataset


def pop_locations(result: SimulationResult) -> Dict[str, GeoPoint]:
    """pop_id → location map for geography-aware analyses."""
    return {pop.pop_id: pop.location for pop in result.deployment.pops}
