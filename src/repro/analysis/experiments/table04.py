"""Table 4 — organizations with the most latency-variable sessions.

Share of sessions with CV(SRTT) > 1 per ISP/organization (minimum 50
sessions).  The paper's table is headed entirely by enterprises
(~40-43% of sessions each), while major residential ISPs sit near 1%.
"""

from __future__ import annotations

import numpy as np

from ...core.netdiag import org_cv_table
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "table04"
TITLE = "Table 4: orgs by share of sessions with CV(SRTT) > 1"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, min_sessions: int = 30, top_n: int = 5) -> ExperimentResult:
    rows = org_cv_table(dataset, min_sessions=min_sessions)
    table = [
        (r.org, r.n_high_cv, r.n_sessions, round(r.percentage, 2)) for r in rows
    ]
    enterprise_rows = [r for r in rows if r.org.startswith("Enterprise")]
    residential_rows = [r for r in rows if not r.org.startswith("Enterprise")]
    enterprise_pcts = [r.percentage for r in enterprise_rows]
    residential_pcts = [r.percentage for r in residential_rows]
    # The table head: as many rows as there are qualifying enterprises,
    # capped at top_n (the paper shows its top five, all enterprises; at
    # simulation scale fewer enterprises may clear the session minimum).
    # Only orgs with at least one high-CV session rank — the relative
    # order of 0.000% rows is arbitrary, and padding the head with them
    # makes the share flip on a single tail session out of thousands.
    ranked = [r for r in rows if r.n_high_cv > 0]
    head = ranked[: min(top_n, max(len(enterprise_rows), 1))]
    head_enterprise_share = (
        float(np.mean([r.org.startswith("Enterprise") for r in head])) if head else 0.0
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"org_rows": table},
        summary={
            "n_orgs": float(len(rows)),
            "n_enterprise_orgs": float(len(enterprise_rows)),
            "max_enterprise_pct": max(enterprise_pcts) if enterprise_pcts else float("nan"),
            "max_residential_pct": max(residential_pcts) if residential_pcts else float("nan"),
            "head_enterprise_share": head_enterprise_share,
        },
        checks={
            "worst_org_is_enterprise": bool(rows)
            and rows[0].org.startswith("Enterprise"),
            "enterprises_head_the_table": head_enterprise_share >= 0.6,
            "enterprise_much_worse_than_residential": bool(enterprise_pcts)
            and bool(residential_pcts)
            and max(enterprise_pcts) > 5.0 * max(max(residential_pcts), 0.1),
        },
    )
