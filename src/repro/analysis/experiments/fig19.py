"""Fig. 19 — dropped frames vs chunk download rate.

Mean/median dropped-frame percentage binned by download rate (seconds of
video per second of wall time), with hardware-rendered chunks reported
separately (the figure's first bar).  The paper's shape: steep drops below
1 s/s, a knee at ~1.5 s/s, and a flat floor beyond — plus the 85.5% /
5.7% / 6.9% rule-validation split.
"""

from __future__ import annotations

import numpy as np

from ...core.rendering_diag import (
    drops_vs_download_rate,
    hardware_rendering_drop_pct,
    rate_rule_validation,
)
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig19"
TITLE = "Fig. 19: dropped frames vs chunk download rate"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    binned = drops_vs_download_rate(dataset)
    rows = binned.rows()
    hw_drop = hardware_rendering_drop_pct(dataset)
    split = rate_rule_validation(dataset)

    below_1 = [mean for center, mean, *_ in rows if center < 1.0]
    knee = [mean for center, mean, *_ in rows if 1.0 <= center < 1.5]
    beyond = [mean for center, mean, *_ in rows if center >= 1.5]
    floor = float(np.mean(beyond)) if beyond else float("nan")

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "rows_center_mean_median_q25_q75_n": rows,
            "hw_rendering_drop_pct": hw_drop,
        },
        summary={
            "drop_pct_below_1": float(np.mean(below_1)) if below_1 else float("nan"),
            "drop_pct_beyond_1_5": floor,
            "hw_drop_pct": hw_drop if hw_drop is not None else float("nan"),
            "rule_confirming_fraction": split.confirming_fraction,
            "low_rate_good_render_fraction": split.low_rate_good_render,
            "good_rate_bad_render_fraction": split.good_rate_bad_render,
        },
        checks={
            "drops_fall_until_1_5": bool(below_1)
            and bool(beyond)
            and min(below_1) > 1.5 * max(floor, 1e-9),
            "flat_beyond_1_5": len(beyond) >= 2
            and (max(beyond) - min(beyond)) < 0.5 * max(beyond),
            "hw_rendering_near_zero": hw_drop is not None and hw_drop < 2.0,
            # paper: 85.5% of chunks confirm the 1.5 s/s hypothesis
            "rule_mostly_confirmed": split.confirming_fraction > 0.7,
        },
    )
