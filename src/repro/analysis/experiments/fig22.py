"""Fig. 22 — the unpopular-browser rendering penalty.

Mean dropped-frame percentage of Yandex/Vivaldi/Opera/Safari-on-Windows
(and similar) against the average of everything else, restricted to
chunks with a good download rate (>= 1.5 s/s) and a visible player —
so what remains is pure rendering-path inefficiency.
"""

from __future__ import annotations

import numpy as np

from ...core.rendering_diag import unpopular_browser_drops
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig22"
TITLE = "Fig. 22: dropped % of unpopular browsers vs the rest"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, min_chunks: int = 30) -> ExperimentResult:
    rows, rest_mean = unpopular_browser_drops(dataset, min_chunks=min_chunks)
    worst = rows[0] if rows else (None, float("nan"))
    mean_unpopular = float(np.mean([r[1] for r in rows])) if rows else float("nan")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"unpopular_rows": rows, "rest_mean_drop_pct": rest_mean},
        summary={
            "n_unpopular_browsers": float(len(rows)),
            "worst_browser_drop_pct": worst[1],
            "mean_unpopular_drop_pct": mean_unpopular,
            "rest_drop_pct": rest_mean,
        },
        checks={
            "unpopular_browsers_measured": len(rows) >= 2,
            "unpopular_worse_than_rest": bool(rows) and mean_unpopular > rest_mean,
            "penalty_is_large": bool(rows) and mean_unpopular > 1.5 * max(rest_mean, 1e-9),
        },
    )
