"""Experiment plumbing: result container and registry.

Every paper figure/table maps to one module in this package exposing

* ``EXPERIMENT_ID`` — e.g. ``"fig05"`` / ``"table04"``;
* ``TITLE`` — the paper artifact it reproduces;
* ``run(...)`` — returns an :class:`ExperimentResult` whose ``series``
  holds the plottable data (the same rows/curves the paper shows) and
  whose ``summary`` holds scalar headline numbers.

``checks`` carries named boolean shape-assertions (the qualitative claims
that must survive the simulator substitution); EXPERIMENTS.md records the
paper-vs-measured comparison for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

__all__ = ["ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass
class ExperimentResult:
    """Output of one experiment reproduction."""

    experiment_id: str
    title: str
    series: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, float] = field(default_factory=dict)
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_passed(self) -> bool:
        return all(self.checks.values())

    def format_report(self) -> str:
        """Human-readable report block (used by the bench harness)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for key, value in self.summary.items():
            lines.append(f"  {key} = {value:.4g}" if isinstance(value, float) else f"  {key} = {value}")
        for key, passed in self.checks.items():
            lines.append(f"  [{'PASS' if passed else 'FAIL'}] {key}")
        return "\n".join(lines)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator: register an experiment's ``run`` under *experiment_id*."""

    def decorator(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return decorator


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment's run function."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)
