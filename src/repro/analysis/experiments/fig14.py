"""Fig. 14 — rebuffering probability per chunk position, and given loss.

P(rebuffering at chunk = X) and P(rebuffering at chunk = X | loss at
chunk = X).  Loss anywhere raises rebuffering odds, but early losses —
when the buffer is thin — raise them the most.
"""

from __future__ import annotations

import numpy as np

from ...core.netdiag import rebuffer_given_loss_by_chunk
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig14"
TITLE = "Fig. 14: P(rebuffer at chunk X) and P(rebuffer | loss at X)"


@register(EXPERIMENT_ID)
def run(dataset: Dataset, max_chunk_id: int = 12) -> ExperimentResult:
    rows = rebuffer_given_loss_by_chunk(dataset, max_chunk_id=max_chunk_id)
    # Position 0 is startup (cannot rebuffer by definition); analyze 1+.
    unconditional = {cid: p for cid, p, _ in rows if cid >= 1}
    conditional = {cid: p for cid, _, p in rows if p is not None and cid >= 1}

    early_cond = [p for cid, p in conditional.items() if cid <= 2]
    late_cond = [p for cid, p in conditional.items() if cid >= 5]
    lift_pairs = [
        (conditional[cid], unconditional[cid])
        for cid in conditional
        if cid in unconditional and unconditional[cid] > 0
    ]
    mean_lift = (
        float(np.mean([c / u for c, u in lift_pairs])) if lift_pairs else float("nan")
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"rows_chunkid_p_pgivenloss": rows},
        summary={
            "p_rebuffer_early_given_loss": max(early_cond) if early_cond else float("nan"),
            "p_rebuffer_late_given_loss": float(np.mean(late_cond))
            if late_cond
            else float("nan"),
            "mean_conditional_lift": mean_lift,
        },
        checks={
            "loss_raises_rebuffer_odds": mean_lift > 1.2,
            "early_loss_worst": bool(early_cond)
            and bool(late_cond)
            and max(early_cond) > float(np.mean(late_cond)),
        },
    )
