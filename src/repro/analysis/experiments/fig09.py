"""Fig. 9 — geography of persistent tail-latency prefixes.

§4.2-1's pipeline: aggregate to /24 prefixes, keep those whose srtt_min
exceeds 100 ms recurrently across days, and look at where they are.  The
paper: 75% are outside the US (distance-limited); among US prefixes, a
large cluster sits within a few km of a CDN server — and ~90% of those
nearby prefixes are enterprises, not residential ISPs.
"""

from __future__ import annotations

import numpy as np

from ...core.persistence import tail_latency_prefixes
from ...simulation.driver import SimulationResult
from ...core.proxy_filter import filter_proxies
from .base import ExperimentResult, register
from .common import pop_locations

EXPERIMENT_ID = "fig09"
TITLE = "Fig. 9: distance of persistent tail-latency US prefixes"


@register(EXPERIMENT_ID)
def run(result: SimulationResult) -> ExperimentResult:
    dataset, _ = filter_proxies(result.dataset)
    report = tail_latency_prefixes(dataset, pop_locations(result))

    distances = report.us_distances_km
    close_fraction = (
        float(np.mean([d <= 200.0 for d in distances])) if distances else 0.0
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={"us_prefix_distances_km": distances},
        summary={
            "n_persistent_prefixes": float(report.n_persistent),
            "non_us_fraction": report.non_us_fraction,
            "n_us_prefixes": float(len(distances)),
            "us_close_fraction": close_fraction,
            "us_close_enterprise_fraction": report.us_enterprise_close_fraction,
        },
        checks={
            "tail_prefixes_found": report.n_persistent > 10,
            # paper: 75% of tail prefixes outside the US
            "non_us_majority": report.non_us_fraction > 0.5,
            # paper: ~90% of nearby US tail prefixes are enterprises
            "nearby_us_mostly_enterprise": report.us_enterprise_close_fraction > 0.6,
        },
    )
