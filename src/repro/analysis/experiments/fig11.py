"""Fig. 11 — sessions with vs without loss: length, bitrate, re-buffering.

The paper's three panels: the session-length and average-bitrate
distributions are nearly identical between the two groups, but the
re-buffering CCDF separates clearly — loss sessions rebuffer more.
"""

from __future__ import annotations

import numpy as np

from ...core.netdiag import split_sessions_by_loss
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig11"
TITLE = "Fig. 11: session length / bitrate / rebuffering, loss vs no-loss"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    split = split_sessions_by_loss(dataset)
    summary = split.summary()
    loss = summary["loss"]
    no_loss = summary["no_loss"]

    chunks_similar = (
        no_loss["n"] > 0
        and loss["n"] > 0
        and abs(loss["median_chunks"] - no_loss["median_chunks"])
        <= max(2.0, 0.5 * no_loss["median_chunks"])
    )
    bitrate_similar = (
        no_loss["n"] > 0
        and loss["n"] > 0
        and abs(loss["median_bitrate_kbps"] - no_loss["median_bitrate_kbps"])
        <= 0.35 * max(no_loss["median_bitrate_kbps"], 1.0)
    )
    rebuffer_separates = (
        loss.get("rebuffer_session_fraction", 0.0)
        > 2.0 * max(no_loss.get("rebuffer_session_fraction", 0.0), 1e-4)
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "loss_session_chunks": [s.n_chunks for s in split.with_loss[:5000]],
            "no_loss_session_chunks": [s.n_chunks for s in split.without_loss[:5000]],
            "loss_session_bitrate": [s.avg_bitrate_kbps for s in split.with_loss[:5000]],
            "no_loss_session_bitrate": [
                s.avg_bitrate_kbps for s in split.without_loss[:5000]
            ],
            "loss_rebuffer_rates_pct": [
                100.0 * s.rebuffer_rate for s in split.with_loss[:5000]
            ],
            "no_loss_rebuffer_rates_pct": [
                100.0 * s.rebuffer_rate for s in split.without_loss[:5000]
            ],
        },
        summary={
            "n_loss_sessions": loss["n"],
            "n_no_loss_sessions": no_loss["n"],
            "median_chunks_loss": loss.get("median_chunks", float("nan")),
            "median_chunks_no_loss": no_loss.get("median_chunks", float("nan")),
            "median_bitrate_loss": loss.get("median_bitrate_kbps", float("nan")),
            "median_bitrate_no_loss": no_loss.get("median_bitrate_kbps", float("nan")),
            "rebuffer_fraction_loss": loss.get("rebuffer_session_fraction", float("nan")),
            "rebuffer_fraction_no_loss": no_loss.get(
                "rebuffer_session_fraction", float("nan")
            ),
        },
        checks={
            "both_groups_populated": loss["n"] > 50 and no_loss["n"] > 50,
            "session_length_similar": bool(chunks_similar),
            "bitrate_similar": bool(bitrate_similar),
            "rebuffering_separates_groups": bool(rebuffer_separates),
        },
    )
