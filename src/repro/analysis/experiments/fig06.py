"""Fig. 6 — performance vs popularity.

(a) cache-miss percentage among videos ranked >= x — rises steeply into
the unpopular tail; (b) median hit-only server delay among videos ranked
>= x — even hits get slower with rank because cold content reads from
disk (retry timer + seek).
"""

from __future__ import annotations

import numpy as np

from ...core.popularity import rank_tail_hit_latency, rank_tail_miss_percentage
from ...telemetry.dataset import Dataset
from .base import ExperimentResult, register

EXPERIMENT_ID = "fig06"
TITLE = "Fig. 6: cache miss rate and hit latency vs video rank"


@register(EXPERIMENT_ID)
def run(dataset: Dataset) -> ExperimentResult:
    miss_rows = rank_tail_miss_percentage(dataset)
    latency_rows = rank_tail_hit_latency(dataset)

    miss_values = [pct for _, pct in miss_rows]
    latency_values = [ms for _, ms in latency_rows]

    def mostly_increasing(values) -> bool:
        if len(values) < 3:
            return False
        # Dips below 1% of the running value are seed noise, not a trend
        # reversal — the paper's claim is about the decade-scale rise.
        ups = sum(1 for a, b in zip(values[:-1], values[1:]) if b >= 0.99 * a)
        return ups >= 0.7 * (len(values) - 1)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        series={
            "miss_pct_vs_rank_tail": miss_rows,
            "hit_latency_ms_vs_rank_tail": latency_rows,
        },
        summary={
            "head_miss_pct": miss_values[0] if miss_values else float("nan"),
            "tail_miss_pct": miss_values[-1] if miss_values else float("nan"),
            "head_hit_latency_ms": latency_values[0] if latency_values else float("nan"),
            "tail_hit_latency_ms": latency_values[-1] if latency_values else float("nan"),
        },
        checks={
            "miss_rate_rises_with_rank": mostly_increasing(miss_values),
            "hit_latency_rises_with_rank": mostly_increasing(latency_values),
            "tail_miss_much_higher": len(miss_values) >= 2
            and miss_values[-1] > 1.5 * max(miss_values[0], 1e-9),
        },
    )
