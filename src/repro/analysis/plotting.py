"""Terminal plotting: render the paper's figure shapes without matplotlib.

The execution environment is offline and plot-library-free, so the CLI and
examples render CDFs, bar charts, and x/y series as Unicode text.  These
are presentation helpers only — experiment data stays numeric in
:class:`~repro.analysis.experiments.base.ExperimentResult`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .stats import empirical_cdf

__all__ = [
    "ascii_bars",
    "ascii_cdf",
    "ascii_series",
    "format_table",
    "render_series_auto",
]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A horizontal bar of *fraction* of *width* columns, sub-char precise."""
    fraction = min(max(fraction, 0.0), 1.0)
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * full + partial


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """A labelled horizontal bar chart (Figs. 20-22 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal lengths")
    if not labels:
        return ""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(str(label)) for label in labels)
    peak = max(max(values), 1e-12)
    for label, value in zip(labels, values):
        bar = _bar(value / peak, width)
        lines.append(f"  {str(label):>{label_width}} |{bar:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_cdf(
    samples: Sequence[float],
    width: int = 50,
    height: int = 12,
    log_x: bool = False,
    title: Optional[str] = None,
) -> str:
    """A CDF curve as a character grid (Figs. 5, 8, 10, 16, 18 style)."""
    values = [float(v) for v in samples]
    if not values:
        return "(no samples)"
    cdf = empirical_cdf(values)
    xs = np.asarray(cdf.xs)
    if log_x:
        positive = xs[xs > 0]
        if len(positive) == 0:
            raise ValueError("log_x requires positive samples")
        xs = np.log10(np.maximum(xs, positive.min()))
    lo, hi = float(xs.min()), float(xs.max())
    span = max(hi - lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for x, p in zip(xs, cdf.ps):
        col = min(int((x - lo) / span * (width - 1)), width - 1)
        row = min(int((1.0 - p) * (height - 1)), height - 1)
        grid[row][col] = "•"
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_label = f"{1.0 - i / (height - 1):.1f}" if height > 1 else "1.0"
        lines.append(f"  {y_label} |" + "".join(row))
    x_lo = f"{10**lo:.3g}" if log_x else f"{cdf.xs.min():.3g}"
    x_hi = f"{10**hi:.3g}" if log_x else f"{cdf.xs.max():.3g}"
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_lo}{' ' * max(1, width - len(x_lo) - len(x_hi))}{x_hi}")
    return "\n".join(lines)


def ascii_series(
    points: Sequence[Tuple[float, float]],
    width: int = 50,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """An x/y scatter/step series (Figs. 14-15 style)."""
    if not points:
        return "(no points)"
    xs = np.asarray([p[0] for p in points], dtype=float)
    ys = np.asarray([p[1] for p in points], dtype=float)
    x_span = max(float(xs.max() - xs.min()), 1e-12)
    y_span = max(float(ys.max() - ys.min()), 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(int((x - xs.min()) / x_span * (width - 1)), width - 1)
        row = min(int((1.0 - (y - ys.min()) / y_span) * (height - 1)), height - 1)
        grid[row][col] = "●"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"  {ys.max():.3g}")
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.append(f"  {ys.min():.3g}  x: {xs.min():.3g} .. {xs.max():.3g}")
    return "\n".join(lines)


def render_series_auto(name: str, value: object, max_samples: int = 5000) -> Optional[str]:
    """Best-effort terminal rendering for an experiment's series entry.

    Dispatches on shape: a list of numbers becomes a CDF, a list of
    (x, y) pairs a series plot, a list of (x, y, ...) stat rows a series
    of its first two columns.  Returns None for shapes with no obvious
    visual (strings, scalars, tables with labels).
    """
    if isinstance(value, (int, float)):
        return None
    if not isinstance(value, (list, tuple)) or not value:
        return None
    sample = value[0]
    values = list(value)[:max_samples]
    if isinstance(sample, (int, float)) and len(values) >= 8:
        return ascii_cdf([float(v) for v in values], title=f"{name} (CDF)")
    if (
        isinstance(sample, (list, tuple))
        and len(sample) >= 2
        and all(isinstance(x, (int, float)) for x in sample[:2])
    ):
        points = [
            (float(row[0]), float(row[1]))
            for row in values
            if row[1] is not None
        ]
        if len(points) >= 2:
            return ascii_series(points, title=f"{name} (x vs y)")
    return None


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """A plain aligned table (Tables 4-5 style)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(cells):
        lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("  " + "-+-".join("-" * w for w in widths))
    return "\n".join(lines)
