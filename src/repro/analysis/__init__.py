"""Statistics helpers and per-figure/table experiment reproductions."""

from .stats import (
    BinnedStat,
    Cdf,
    binned_stats,
    coefficient_of_variation,
    empirical_ccdf,
    empirical_cdf,
    iqr,
    quantile,
    zipf_weights,
)

__all__ = [
    "Cdf",
    "BinnedStat",
    "empirical_cdf",
    "empirical_ccdf",
    "binned_stats",
    "coefficient_of_variation",
    "quantile",
    "iqr",
    "zipf_weights",
]
