"""Bottleneck localization: *where* is a chunk's problem, per the paper.

The paper's stated purpose is not measuring QoE but *locating* the cause:
"understanding the location and root causes of performance problems
enables content providers to take the right corrective (or even proactive)
actions ... In some cases, knowing the bottleneck can help the content
provider decide not to act" (§1).  This module composes the per-signal
detectors of :mod:`repro.core` into a per-chunk attribution and a
per-session diagnosis — the operator-facing deliverable of the whole
methodology.

Attribution rules (applied in order, mirroring §4's decision logic):

1. **client-download-stack** — the chunk carries the Eq. 4 / TP-signature
   burst fingerprint, or the Eq. 5 bound shows the stack dominating D_FB;
2. **server** — server latency (D_CDN + D_BE) exceeds the network
   baseline (sub-caused as ``miss`` / ``disk`` / ``other``);
3. **network-throughput** — the chunk's Eq. 2 performance score is bad and
   its download time is throughput-dominated;
4. **network-latency** — the score is bad with a latency-dominated split,
   or the baseline RTT alone is tail-grade;
5. **client-rendering** — delivery was fine but frames dropped on a
   visible, well-fed player;
6. **none** — the chunk was healthy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from ..telemetry.dataset import Dataset, JoinedChunk, SessionView
from . import downstack, perfscore
from .decomposition import chunk_baseline_rtt

__all__ = [
    "Bottleneck",
    "ChunkAttribution",
    "SessionDiagnosis",
    "attribute_chunk",
    "diagnose_session",
    "diagnose_dataset",
]


class Bottleneck(str, Enum):
    """Where a chunk's performance problem lives."""

    NONE = "none"
    SERVER = "server"
    NETWORK_LATENCY = "network-latency"
    NETWORK_THROUGHPUT = "network-throughput"
    CLIENT_DOWNLOAD_STACK = "client-download-stack"
    CLIENT_RENDERING = "client-rendering"


@dataclass(frozen=True)
class ChunkAttribution:
    """Attribution of one chunk: the verdict plus the evidence behind it."""

    session_id: str
    chunk_id: int
    bottleneck: Bottleneck
    #: sub-cause detail, e.g. "miss"/"disk" for server verdicts
    detail: str
    perf_score: float
    server_ms: float
    baseline_rtt_ms: float
    ds_bound_ms: float
    dropped_fraction: float


#: performance-score threshold below which a chunk is "suffering" (Eq. 2)
BAD_SCORE = 1.0
#: dropped-frame fraction above which rendering is considered degraded
BAD_RENDER_FRACTION = 0.25
#: baseline RTT considered tail-grade (§4.2-1's 100 ms threshold)
TAIL_RTT_MS = 100.0


def attribute_chunk(
    chunk: JoinedChunk, transient_flagged: bool = False
) -> ChunkAttribution:
    """Attribute one chunk's problem (or lack of one) to a location.

    *transient_flagged* carries the session-level Eq. 4 verdict for this
    chunk; callers without session context can rely on the per-chunk
    TP-signature alone.
    """
    score = perfscore.perf_score(chunk.player)
    server_ms = chunk.cdn.total_server_ms
    baseline = chunk_baseline_rtt(chunk)
    ds_bound = downstack.persistent_ds_bound_ms(chunk) or 0.0
    drops = chunk.player.dropped_fraction

    def build(bottleneck: Bottleneck, detail: str = "") -> ChunkAttribution:
        return ChunkAttribution(
            session_id=chunk.session_id,
            chunk_id=chunk.chunk_id,
            bottleneck=bottleneck,
            detail=detail,
            perf_score=score,
            server_ms=server_ms,
            baseline_rtt_ms=baseline,
            ds_bound_ms=ds_bound,
            dropped_fraction=drops,
        )

    # 1. download-stack buffering or dominant persistent stack latency
    if transient_flagged or downstack.transient_signature(chunk):
        return build(Bottleneck.CLIENT_DOWNLOAD_STACK, "transient-burst")
    if ds_bound > max(server_ms, baseline) and ds_bound > 100.0:
        detail = "first-chunk-setup" if chunk.chunk_id == 0 else "persistent-stack"
        return build(Bottleneck.CLIENT_DOWNLOAD_STACK, detail)

    # 2. the server out-costs the network (the paper's ~5% of chunks) by a
    #    QoE-relevant amount — an ordinary ~15 ms disk read is not a problem
    if server_ms > baseline and server_ms > 40.0:
        if not chunk.cdn.is_hit:
            return build(Bottleneck.SERVER, "miss")
        if chunk.cdn.cache_status == "hit_disk":
            return build(Bottleneck.SERVER, "disk")
        return build(Bottleneck.SERVER, "other")

    # 3/4. a suffering chunk is split by Eq. 2's latency/throughput shares
    if score < BAD_SCORE:
        if perfscore.throughput_share(chunk.player) >= 0.5:
            return build(Bottleneck.NETWORK_THROUGHPUT, "bad-score")
        return build(Bottleneck.NETWORK_LATENCY, "bad-score")
    if baseline > TAIL_RTT_MS and chunk.player.rebuffer_count > 0:
        return build(Bottleneck.NETWORK_LATENCY, "tail-baseline")

    # 5. delivery was fine; did the rendering path drop the ball?
    if (
        chunk.player.visible
        and not chunk.player.hw_rendered
        and drops > BAD_RENDER_FRACTION
        and chunk.player.download_rate >= 1.5
    ):
        return build(Bottleneck.CLIENT_RENDERING, "software-rendering")

    return build(Bottleneck.NONE)


@dataclass
class SessionDiagnosis:
    """Per-session localization summary."""

    session_id: str
    attributions: List[ChunkAttribution]
    dominant: Bottleneck
    problem_fraction: float

    @property
    def counts(self) -> Dict[Bottleneck, int]:
        return Counter(a.bottleneck for a in self.attributions)


def diagnose_session(session: SessionView) -> SessionDiagnosis:
    """Attribute every chunk of a session and summarize.

    Runs the Eq. 4 detector once over the session so transient verdicts
    use within-session statistics where available.
    """
    flagged_ids = {
        c.chunk_id for c in downstack.detect_transient_outliers(session)
    }
    attributions = [
        attribute_chunk(chunk, transient_flagged=chunk.chunk_id in flagged_ids)
        for chunk in session.chunks
    ]
    problems = [a for a in attributions if a.bottleneck is not Bottleneck.NONE]
    if problems:
        dominant = Counter(a.bottleneck for a in problems).most_common(1)[0][0]
    else:
        dominant = Bottleneck.NONE
    return SessionDiagnosis(
        session_id=session.session_id,
        attributions=attributions,
        dominant=dominant,
        problem_fraction=len(problems) / len(attributions) if attributions else 0.0,
    )


def diagnose_dataset(dataset: Dataset, analysis: str = "auto") -> Dict[str, float]:
    """Fleet-level localization: share of chunks per bottleneck location.

    The operator's dashboard number: of all delivered chunks, how many had
    a problem, and where did the problems live?  *analysis* selects the
    read path (docs/PERFORMANCE.md "The read path"): ``"columnar"`` runs
    the vectorized cascade (:mod:`~repro.core.columnar_analysis`),
    ``"records"`` streams one session at a time
    (:class:`~repro.core.streaming.LocalizationAccumulator`), ``"auto"``
    picks per dataset; results are bit-identical either way and spilled
    datasets diagnose under a flat memory ceiling.
    """
    from .columnar_analysis import analyze_dataset, resolve_analysis_mode

    if resolve_analysis_mode(dataset, analysis) == "columnar":
        return analyze_dataset(dataset, analyses=("localization",))["localization"]
    from .streaming import LocalizationAccumulator, consume

    return consume(dataset, LocalizationAccumulator())[0]
