"""Popularity analysis — §4.1: rank vs cache behaviour, and the load paradox.

Ranks are *observed*: videos are ranked by request volume within the
dataset, exactly as the paper does ("most popular video is ranked first"
using one day of data).  The analyses:

* cache-miss percentage vs video rank (Fig. 6(a));
* hit-only server delay vs rank (Fig. 6(b)) — even cache hits are slower
  for unpopular titles because they come from disk;
* the load-performance paradox (§4.1-3): under cache-focused mapping, the
  busier servers are the *faster* ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.dataset import Dataset

__all__ = [
    "video_ranks",
    "rank_tail_miss_percentage",
    "rank_tail_hit_latency",
    "ServerLoadRow",
    "server_load_vs_latency",
    "load_latency_correlation",
]


def video_ranks(dataset: Dataset) -> Dict[int, int]:
    """Rank videos by observed session count: {video_id: rank}, rank 0 hottest."""
    counts: Dict[int, int] = {}
    for session in dataset.player_sessions:
        counts[session.video_id] = counts.get(session.video_id, 0) + 1
    ordered = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    return {video_id: rank for rank, (video_id, _) in enumerate(ordered)}


def _per_video_stats(dataset: Dataset) -> Dict[int, Tuple[int, int, List[float]]]:
    """{video_id: (n_chunks, n_misses, hit-only server latencies)}."""
    video_of = {s.session_id: s.video_id for s in dataset.player_sessions}
    stats: Dict[int, Tuple[int, int, List[float]]] = {}
    for chunk in dataset.cdn_chunks:
        video_id = video_of.get(chunk.session_id)
        if video_id is None:
            continue
        n, misses, hits = stats.setdefault(video_id, (0, 0, []))
        n += 1
        if chunk.cache_status == "miss":
            misses += 1
        else:
            hits.append(chunk.d_cdn_ms)
        stats[video_id] = (n, misses, hits)
    return stats


def rank_tail_miss_percentage(
    dataset: Dataset, rank_points: Optional[Sequence[int]] = None
) -> List[Tuple[int, float]]:
    """Fig. 6(a): miss percentage among videos with rank >= x.

    Returns (x, miss % over all chunks of videos ranked x or colder).
    Monotone increase with x is the paper's unpopularity signature.
    """
    ranks = video_ranks(dataset)
    stats = _per_video_stats(dataset)
    n_videos = len(ranks)
    if n_videos == 0:
        return []
    if rank_points is None:
        rank_points = [int(round(f * n_videos)) for f in (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)]
    by_rank = sorted(
        (rank, stats.get(video_id, (0, 0, [])))
        for video_id, rank in ranks.items()
    )
    rows: List[Tuple[int, float]] = []
    for x in rank_points:
        chunks = sum(n for rank, (n, _, _) in by_rank if rank >= x)
        misses = sum(m for rank, (_, m, _) in by_rank if rank >= x)
        if chunks == 0:
            continue
        rows.append((x, 100.0 * misses / chunks))
    return rows


def rank_tail_hit_latency(
    dataset: Dataset, rank_points: Optional[Sequence[int]] = None
) -> List[Tuple[int, float]]:
    """Fig. 6(b): median hit-only server delay among videos ranked >= x.

    Cache misses are excluded ("no backend communication"); the residual
    increase with rank is the disk-read (seek + retry-timer) cost of
    content that is not fresh in memory.
    """
    ranks = video_ranks(dataset)
    stats = _per_video_stats(dataset)
    n_videos = len(ranks)
    if n_videos == 0:
        return []
    if rank_points is None:
        rank_points = [int(round(f * n_videos)) for f in (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)]
    by_rank = sorted(
        (rank, stats.get(video_id, (0, 0, [])))
        for video_id, rank in ranks.items()
    )
    rows: List[Tuple[int, float]] = []
    for x in rank_points:
        latencies = [
            latency
            for rank, (_, _, hit_latencies) in by_rank
            if rank >= x
            for latency in hit_latencies
        ]
        if not latencies:
            continue
        rows.append((x, float(np.median(latencies))))
    return rows


@dataclass(frozen=True)
class ServerLoadRow:
    """Per-server load and latency summary (§4.1-3)."""

    server_id: str
    n_requests: int
    median_d_cdn_ms: float
    miss_ratio: float


def server_load_vs_latency(dataset: Dataset, min_requests: int = 20) -> List[ServerLoadRow]:
    """Per-server request volume vs median serving latency."""
    by_server: Dict[str, List[Tuple[float, bool]]] = {}
    for chunk in dataset.cdn_chunks:
        by_server.setdefault(chunk.server_id, []).append(
            (chunk.d_cdn_ms, chunk.cache_status == "miss")
        )
    rows: List[ServerLoadRow] = []
    for server_id, samples in by_server.items():
        if len(samples) < min_requests:
            continue
        rows.append(
            ServerLoadRow(
                server_id=server_id,
                n_requests=len(samples),
                median_d_cdn_ms=float(np.median([s[0] for s in samples])),
                miss_ratio=float(np.mean([s[1] for s in samples])),
            )
        )
    rows.sort(key=lambda r: r.n_requests, reverse=True)
    return rows


def load_latency_correlation(dataset: Dataset, min_requests: int = 20) -> Optional[float]:
    """Pearson correlation between server load and median latency.

    §4.1-3's paradox: under cache-focused mapping this is *negative* —
    busier servers hold hotter content and serve it faster.  None when
    fewer than three servers qualify.
    """
    rows = server_load_vs_latency(dataset, min_requests=min_requests)
    if len(rows) < 3:
        return None
    loads = np.asarray([r.n_requests for r in rows], dtype=float)
    latencies = np.asarray([r.median_d_cdn_ms for r in rows], dtype=float)
    if np.std(loads) == 0 or np.std(latencies) == 0:
        return None
    return float(np.corrcoef(loads, latencies)[0, 1])
