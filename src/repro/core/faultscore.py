"""Score localization verdicts against injected fault ground truth.

The localizer (:mod:`repro.core.localization`) reads only production
telemetry; the fault injector (:mod:`repro.faults`) stamps what it
actually did into :class:`~repro.telemetry.records.ChunkGroundTruth.fault_labels`.
This module joins the two per chunk and reports, per fault class:

* **recall** — of the chunks a fault of class X demonstrably touched, how
  many did the localizer attribute to X's expected layer?
* **precision** — of the chunks the localizer attributed to X's expected
  layer, how many were actually touched by a fault mapping there?  (An
  un-faulted run has organic problems too, so precision is measured
  against the *layer*, pooling fault classes that share one.)
* a **confusion matrix** truth-class × predicted-bottleneck, the full
  picture behind both numbers.

This is validation tooling: it needs ground truth and therefore only works
on simulated datasets recorded with ``record_ground_truth=True``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..telemetry.dataset import Dataset
from .localization import Bottleneck

__all__ = [
    "EXPECTED_BOTTLENECK",
    "ClassScore",
    "FaultScoreReport",
    "parse_fault_labels",
    "score_fault_localization",
]

#: fault class → the Bottleneck verdict(s) a correct localizer may emit.
#: The network classes accept both network verdicts: an RTT inflation also
#: collapses TCP throughput (Eq. 3: throughput ∝ 1/SRTT) and loss recovery
#: stretches D_FB as well as D_LB, so the latency/throughput split of a
#: *correctly network-attributed* chunk follows Eq. 2's shares, not the
#: injection mechanism — exactly the paper's Fig. 16 observation that
#: bad-score chunks skew throughput-limited.
EXPECTED_BOTTLENECK: Dict[str, Tuple[Bottleneck, ...]] = {
    "server-degraded": (Bottleneck.SERVER,),
    "server-overload": (Bottleneck.SERVER,),
    "cache-brownout": (Bottleneck.SERVER,),
    "origin-slowdown": (Bottleneck.SERVER,),
    "network-latency": (Bottleneck.NETWORK_LATENCY, Bottleneck.NETWORK_THROUGHPUT),
    "network-loss": (Bottleneck.NETWORK_THROUGHPUT, Bottleneck.NETWORK_LATENCY),
    "client-render": (Bottleneck.CLIENT_RENDERING,),
}


def parse_fault_labels(labels: str) -> List[Tuple[str, str]]:
    """``"class:id,class:id"`` → ``[(class, id), ...]`` (unknowns kept)."""
    result: List[Tuple[str, str]] = []
    for token in labels.split(","):
        token = token.strip()
        if not token:
            continue
        fault_class, _, fault_id = token.partition(":")
        result.append((fault_class, fault_id))
    return result


@dataclass
class ClassScore:
    """Precision/recall of one fault class against its expected layer."""

    fault_class: str
    expected: Tuple[str, ...]  # Bottleneck values counting as correct
    true_positives: int = 0
    false_negatives: int = 0
    false_positives: int = 0

    @property
    def labeled(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def recall(self) -> float:
        if self.labeled == 0:
            return 0.0
        return self.true_positives / self.labeled

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        if predicted == 0:
            return 0.0
        return self.true_positives / predicted


@dataclass
class FaultScoreReport:
    """Chunk-level scoring of localization against injected ground truth."""

    n_chunks: int = 0
    #: chunks carrying at least one ground-truth fault label
    n_labeled: int = 0
    #: chunks lacking a ground-truth record entirely (cannot be scored)
    n_unscored: int = 0
    classes: Dict[str, ClassScore] = field(default_factory=dict)
    #: truth category (fault class, or "none") → predicted bottleneck counts
    confusion: Dict[str, Counter] = field(default_factory=dict)

    @property
    def truth_categories(self) -> List[str]:
        return sorted(self.confusion)

    def format_report(self) -> str:
        lines = [
            f"scored {self.n_chunks} chunks "
            f"({self.n_labeled} fault-labeled, {self.n_unscored} without ground truth)",
            "",
            "Per-fault-class precision/recall (vs expected localization verdict):",
            f"  {'class':<18} {'expected':<24} {'labeled':>7} "
            f"{'recall':>7} {'precision':>9}",
        ]
        for name in sorted(self.classes):
            score = self.classes[name]
            expected = "|".join(score.expected)
            lines.append(
                f"  {name:<18} {expected:<24} {score.labeled:>7} "
                f"{score.recall:>7.3f} {score.precision:>9.3f}"
            )
        predicted_values = [b.value for b in Bottleneck]
        lines.append("")
        lines.append("Confusion matrix (rows: injected truth; cols: localizer verdict):")
        corner = "truth \\ verdict"
        header = "  " + f"{corner:<20}" + "".join(
            f"{v:>22}" for v in predicted_values
        )
        lines.append(header)
        for truth in self.truth_categories:
            row = self.confusion[truth]
            lines.append(
                "  "
                + f"{truth:<20}"
                + "".join(f"{row.get(v, 0):>22}" for v in predicted_values)
            )
        return "\n".join(lines)


def score_fault_localization(
    dataset: Dataset, analysis: str = "auto"
) -> FaultScoreReport:
    """Attribute every chunk, then grade verdicts against ``fault_labels``.

    Uses :func:`~repro.core.localization.diagnose_session` (so transient
    download-stack flags use within-session statistics, exactly as the
    operator-facing pipeline does), then joins each attribution with the
    chunk's ground-truth labels.  *analysis* selects the read path
    (docs/PERFORMANCE.md "The read path"): ``"columnar"`` runs the
    vectorized pass (:mod:`~repro.core.columnar_analysis`), ``"records"``
    streams one session at a time
    (:class:`~repro.core.streaming.FaultScoreAccumulator`), ``"auto"``
    picks per dataset.  Report state is O(fault classes) either way, so
    spilled datasets score under a flat ceiling with identical results.
    """
    from .columnar_analysis import analyze_dataset, resolve_analysis_mode

    if resolve_analysis_mode(dataset, analysis) == "columnar":
        return analyze_dataset(dataset, analyses=("faultscore",))["faultscore"]
    from .streaming import FaultScoreAccumulator, consume

    return consume(dataset, FaultScoreAccumulator())[0]
