"""Download-stack diagnosis — Eq. 4 outlier detection and the Eq. 5 bound.

§4.3's two detectors, implemented exactly as published:

**Transient buffering (Eq. 4).**  Within a session, a chunk buffered by the
download stack shows an abnormally high first-byte delay *and* an
abnormally high instantaneous throughput, while the network and server
metrics for that chunk are unremarkable::

    D_FB_i   > mu(D_FB)    + 2 sigma(D_FB)
    TPinst_i > mu(TPinst)  + 2 sigma(TPinst)
    SRTT_i, D_server_i, CWND_i < mu + sigma

**Persistent download-stack latency (Eq. 5).**  Using the kernel's
retransmission timeout as a conservative overestimate of rtt0
(RTO = 200 ms + srtt + 4·srttvar, the paper's footnote 5)::

    D_DS >= D_FB − D_CDN − D_BE − RTO

A positive bound proves the stack added latency; aggregating the bound by
(OS, browser) reproduces Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.dataset import Dataset, JoinedChunk, SessionView

__all__ = [
    "instantaneous_throughput_kbps",
    "detect_transient_outliers",
    "detect_transient_outliers_dataset",
    "transient_signature",
    "chunk_rto_ms",
    "persistent_ds_bound_ms",
    "platform_ds_table",
    "PlatformDsRow",
]

#: Linux's minimum-RTO contribution used in the paper's footnote-5 formula.
RTO_FLOOR_MS = 200.0


def instantaneous_throughput_kbps(chunk: JoinedChunk) -> float:
    """TP_inst: chunk bytes over last-byte delay, as seen by the player."""
    if chunk.player.dlb_ms <= 0:
        return float("inf")
    return chunk.cdn.chunk_bytes * 8.0 / chunk.player.dlb_ms  # bits/ms == kbps


def _chunk_features(chunk: JoinedChunk) -> Optional[Tuple[float, float, float, float, float]]:
    """(D_FB, TP_inst, SRTT, D_server, CWND) or None without TCP data."""
    last = chunk.last_tcp
    if last is None or last.srtt_ms <= 0:
        return None
    return (
        chunk.player.dfb_ms,
        instantaneous_throughput_kbps(chunk),
        last.srtt_ms,
        chunk.cdn.total_server_ms,
        float(last.cwnd_segments),
    )


def detect_transient_outliers(
    session: SessionView, min_chunks: int = 5
) -> List[JoinedChunk]:
    """Eq. 4 within one session: chunks buffered by the download stack.

    Requires at least *min_chunks* chunks with TCP data — the statistics
    are within-session, so short sessions carry no signal.
    """
    rows: List[Tuple[JoinedChunk, Tuple[float, float, float, float, float]]] = []
    for chunk in session.chunks:
        features = _chunk_features(chunk)
        if features is not None:
            rows.append((chunk, features))
    if len(rows) < min_chunks:
        return []
    matrix = np.asarray([features for _, features in rows])
    mu = matrix.mean(axis=0)
    sigma = matrix.std(axis=0)

    flagged: List[JoinedChunk] = []
    for (chunk, _), row in zip(rows, matrix):
        dfb, tp_inst, srtt, d_server, cwnd = row
        high_dfb = dfb > mu[0] + 2.0 * sigma[0] and sigma[0] > 0
        high_tp = tp_inst > mu[1] + 2.0 * sigma[1] and sigma[1] > 0
        normal_net = (
            srtt < mu[2] + sigma[2]
            and d_server < mu[3] + sigma[3]
            and cwnd < mu[4] + sigma[4]
        )
        if high_dfb and high_tp and normal_net:
            flagged.append(chunk)
    return flagged


def detect_transient_outliers_dataset(
    dataset: Dataset, min_chunks: int = 5
) -> Dict[str, List[JoinedChunk]]:
    """Run Eq. 4 over every session; returns {session_id: flagged chunks}."""
    result: Dict[str, List[JoinedChunk]] = {}
    for session in dataset.sessions():
        flagged = detect_transient_outliers(session, min_chunks=min_chunks)
        if flagged:
            result[session.session_id] = flagged
    return result


def transient_signature(chunk: JoinedChunk, tp_factor: float = 2.5) -> bool:
    """Per-chunk transient-burst signature (no session statistics needed).

    A chunk delivered as a download-stack burst shows an instantaneous
    throughput that the connection could not have achieved: TP_inst far
    above the Eq. 3 estimate MSS·CWND/SRTT (the paper's Fig. 17(b)
    rationale).  Works even in sessions too short for Eq. 4.
    """
    last = chunk.last_tcp
    if last is None or last.srtt_ms <= 0:
        return False
    connection_tp = last.throughput_kbps
    if connection_tp <= 0:
        return False
    return instantaneous_throughput_kbps(chunk) > tp_factor * connection_tp


def chunk_rto_ms(chunk: JoinedChunk) -> Optional[float]:
    """The kernel's RTO for the chunk (footnote 5): 200 + srtt + 4*srttvar.

    Taken as the *maximum* over the chunk's snapshots: RTO must remain a
    conservative overestimate of rtt0 even when the request round landed
    in a transient latency spike that had decayed by the last snapshot —
    otherwise Eq. 5 produces spurious positive download-stack bounds.
    """
    candidates = [
        RTO_FLOOR_MS + snap.srtt_ms + 4.0 * snap.rttvar_ms
        for snap in chunk.tcp
        if snap.srtt_ms > 0
    ]
    if not candidates:
        return None
    return max(candidates)


def persistent_ds_bound_ms(chunk: JoinedChunk) -> Optional[float]:
    """Eq. 5: conservative lower bound on the chunk's download-stack latency.

    Returns None when no TCP data exists; returns 0.0 when the bound is
    non-positive (no provable stack latency).
    """
    rto = chunk_rto_ms(chunk)
    if rto is None:
        return None
    bound = chunk.player.dfb_ms - chunk.cdn.d_cdn_ms - chunk.cdn.d_be_ms - rto
    return max(bound, 0.0)


@dataclass(frozen=True)
class PlatformDsRow:
    """One row of the Table 5 reproduction.

    ``mean_ds_ms`` is the paper's presentation: the mean bound among
    chunks with a *non-zero* bound.  ``expected_ds_ms`` is the
    unconditional per-chunk burden (mean over all chunks) — more robust
    for cross-platform comparisons when a platform's non-zero tail is
    tiny and outlier-dominated.
    """

    os: str
    browser: str
    mean_ds_ms: float
    n_chunks: int
    nonzero_fraction: float

    @property
    def expected_ds_ms(self) -> float:
        return self.mean_ds_ms * self.nonzero_fraction


def platform_ds_table(
    dataset: Dataset,
    min_chunks: int = 50,
    skip_first_chunk: bool = True,
    exclude_transients: bool = True,
    transient_tp_factor: float = 1.6,
) -> List[PlatformDsRow]:
    """Mean positive Eq. 5 bound per (OS, browser), sorted worst-first.

    Reproduces Table 5: platforms whose download stacks add the most
    *persistent* latency.  Two exclusions keep the estimate clean:

    * first chunks (their event-registration setup cost, §4.3-3, hits
      every platform alike and would mask per-platform differences);
    * chunks flagged by the Eq. 4 transient detector (one multi-second
      buffering burst would dominate a well-behaved platform's mean), plus
      the per-chunk TP-signature with an aggressive threshold
      (*transient_tp_factor*) — over-excluding a few legitimate chunks
      only costs samples here, while missed bursts corrupt the mean.
    """
    flagged: set = set()
    if exclude_transients:
        for session_id, chunks in detect_transient_outliers_dataset(dataset).items():
            flagged.update((session_id, c.chunk_id) for c in chunks)

    by_platform: Dict[Tuple[str, str], List[float]] = {}
    platform_of = {
        s.session_id: (s.os, s.browser) for s in dataset.player_sessions
    }
    for chunk in dataset.join_chunks():
        if skip_first_chunk and chunk.chunk_id == 0:
            continue
        if (chunk.session_id, chunk.chunk_id) in flagged:
            continue
        if exclude_transients and transient_signature(chunk, tp_factor=transient_tp_factor):
            continue
        platform = platform_of.get(chunk.session_id)
        if platform is None:
            continue
        bound = persistent_ds_bound_ms(chunk)
        if bound is None:
            continue
        by_platform.setdefault(platform, []).append(bound)

    rows: List[PlatformDsRow] = []
    for (os_name, browser), bounds in by_platform.items():
        if len(bounds) < min_chunks:
            continue
        positive = [b for b in bounds if b > 0]
        rows.append(
            PlatformDsRow(
                os=os_name,
                browser=browser,
                mean_ds_ms=float(np.mean(positive)) if positive else 0.0,
                n_chunks=len(bounds),
                nonzero_fraction=len(positive) / len(bounds),
            )
        )
    rows.sort(key=lambda r: r.mean_ds_ms, reverse=True)
    return rows
