"""The paper's analysis pipeline — its primary methodological contribution.

Everything in this package consumes only production-observable telemetry
(the :class:`~repro.telemetry.dataset.Dataset` join); simulator ground
truth is used exclusively by the test suite to validate the estimators.
"""

from . import (
    comparison,
    decomposition,
    downstack,
    faultscore,
    localization,
    netdiag,
    perfscore,
    persistence,
    popularity,
    qoe,
    rendering_diag,
    report,
    streaming,
    whatif,
)
from .comparison import ComparisonReport, compare_datasets
from .faultscore import FaultScoreReport, score_fault_localization
from .localization import Bottleneck, diagnose_dataset, diagnose_session
from .proxy_filter import ProxyFilterReport, filter_proxies
from .report import FindingCheck, KeyFindingsReport, evaluate_key_findings

__all__ = [
    "comparison",
    "compare_datasets",
    "ComparisonReport",
    "decomposition",
    "downstack",
    "faultscore",
    "FaultScoreReport",
    "score_fault_localization",
    "localization",
    "netdiag",
    "perfscore",
    "persistence",
    "popularity",
    "qoe",
    "rendering_diag",
    "report",
    "streaming",
    "whatif",
    "filter_proxies",
    "ProxyFilterReport",
    "evaluate_key_findings",
    "KeyFindingsReport",
    "FindingCheck",
    "Bottleneck",
    "diagnose_session",
    "diagnose_dataset",
]
