"""Proxy filtering — the paper's §3 data-preprocessing step.

"A possible pitfall in our analysis is the existence of enterprise or ISP
HTTP proxies, since the CDN server's TCP connection would terminate at the
proxy ... We filter sessions using a proxy when: (i) we see different
client IP addresses or user agents between HTTP requests and client-side
beacons, or (ii) the client IP address appears in a very large number of
sessions (e.g., more minutes of video per day than there are minutes in a
day).  After filtering proxies, our dataset consists of 77% of sessions."

Rule (ii) is stated in absolute wall-clock terms; for arbitrary collection
windows we generalize it to *physical impossibility*: one client IP cannot
watch more media time than the collection window contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..telemetry.dataset import Dataset

__all__ = ["ProxyFilterReport", "filter_proxies"]


@dataclass
class ProxyFilterReport:
    """What the filter removed and why."""

    n_input_sessions: int
    n_kept_sessions: int
    ip_mismatch_sessions: Set[str] = field(default_factory=set)
    ua_mismatch_sessions: Set[str] = field(default_factory=set)
    mega_ip_sessions: Set[str] = field(default_factory=set)
    mega_ips: Set[str] = field(default_factory=set)

    @property
    def n_removed(self) -> int:
        return self.n_input_sessions - self.n_kept_sessions

    @property
    def kept_fraction(self) -> float:
        if self.n_input_sessions == 0:
            return 0.0
        return self.n_kept_sessions / self.n_input_sessions

    def removal_reasons(self) -> Dict[str, int]:
        """Counts per rule (a session can match several)."""
        return {
            "ip_mismatch": len(self.ip_mismatch_sessions),
            "ua_mismatch": len(self.ua_mismatch_sessions),
            "mega_ip": len(self.mega_ip_sessions),
        }


def _collection_window_ms(dataset: Dataset) -> float:
    """Length of the collection window, from session-start spread.

    Adds one hour of slack so the last sessions' own watch time does not
    make legitimate tail clients look impossible.
    """
    starts = [s.start_ms for s in dataset.player_sessions]
    if not starts:
        return 0.0
    return (max(starts) - min(starts)) + 3_600_000.0


def filter_proxies(
    dataset: Dataset,
    media_budget_factor: float = 1.0,
    min_sessions_for_mega_ip: int = 20,
) -> Tuple[Dataset, ProxyFilterReport]:
    """Remove proxy sessions; returns (filtered dataset, report).

    *media_budget_factor* scales the physical watch-time budget of one IP
    (1.0 = exactly the collection window, the paper's "more minutes of
    video per day than there are minutes in a day" generalized).
    *min_sessions_for_mega_ip* guards the volume rule against tiny datasets.
    """
    if media_budget_factor <= 0:
        raise ValueError("media_budget_factor must be positive")

    player_sessions = {s.session_id: s for s in dataset.player_sessions}
    report = ProxyFilterReport(
        n_input_sessions=len(dataset.player_sessions), n_kept_sessions=0
    )

    # Rule (i): IP / user-agent mismatch between CDN logs and beacons.
    for cdn_session in dataset.cdn_sessions:
        beacon = player_sessions.get(cdn_session.session_id)
        if beacon is None:
            continue
        if beacon.client_ip != cdn_session.client_ip:
            report.ip_mismatch_sessions.add(cdn_session.session_id)
        if beacon.user_agent != cdn_session.user_agent:
            report.ua_mismatch_sessions.add(cdn_session.session_id)

    # Rule (ii): one CDN-visible IP watching more media than time allows.
    window_ms = _collection_window_ms(dataset)
    media_by_session: Dict[str, float] = {}
    for chunk in dataset.player_chunks:
        media_by_session[chunk.session_id] = (
            media_by_session.get(chunk.session_id, 0.0) + chunk.chunk_duration_ms
        )
    sessions_by_ip: Dict[str, List[str]] = {}
    media_by_ip: Dict[str, float] = {}
    for cdn_session in dataset.cdn_sessions:
        sessions_by_ip.setdefault(cdn_session.client_ip, []).append(cdn_session.session_id)
        media_by_ip[cdn_session.client_ip] = media_by_ip.get(
            cdn_session.client_ip, 0.0
        ) + media_by_session.get(cdn_session.session_id, 0.0)
    if window_ms > 0:
        for ip, media_ms in media_by_ip.items():
            too_many = len(sessions_by_ip[ip]) >= min_sessions_for_mega_ip
            impossible = media_ms > media_budget_factor * window_ms
            if too_many and impossible:
                report.mega_ips.add(ip)
                report.mega_ip_sessions.update(sessions_by_ip[ip])

    removed = (
        report.ip_mismatch_sessions
        | report.ua_mismatch_sessions
        | report.mega_ip_sessions
    )
    kept_ids = [s.session_id for s in dataset.player_sessions if s.session_id not in removed]
    filtered = dataset.filter_sessions(kept_ids)
    report.n_kept_sessions = len(kept_ids)
    return filtered, report
