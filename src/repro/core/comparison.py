"""A/B comparison of two telemetry datasets, with bootstrap uncertainty.

The operational loop the paper motivates: change something (cache policy,
ABR, pacing, a new PoP), collect a new period, and ask *did QoE move, and
is the movement larger than sampling noise?*  Sessions are the resampling
unit (chunks within a session are correlated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.dataset import Dataset, SessionView

__all__ = ["MetricDelta", "ComparisonReport", "bootstrap_ci", "compare_datasets"]


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for *statistic* of *samples*."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    values = np.asarray(list(samples), dtype=float)
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = values[rng.integers(0, len(values), len(values))]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.percentile(estimates, 100 * alpha)),
        float(np.percentile(estimates, 100 * (1 - alpha))),
    )


@dataclass(frozen=True)
class MetricDelta:
    """One metric's A-vs-B movement."""

    metric: str
    value_a: float
    value_b: float
    ci_a: Tuple[float, float]
    ci_b: Tuple[float, float]

    @property
    def delta(self) -> float:
        return self.value_b - self.value_a

    @property
    def relative_delta(self) -> float:
        if self.value_a == 0:
            return float("inf") if self.delta else 0.0
        return self.delta / abs(self.value_a)

    @property
    def significant(self) -> bool:
        """True when the two confidence intervals do not overlap."""
        return self.ci_a[1] < self.ci_b[0] or self.ci_b[1] < self.ci_a[0]

    def __str__(self) -> str:
        marker = "*" if self.significant else " "
        return (
            f"{marker} {self.metric}: {self.value_a:.4g} -> {self.value_b:.4g} "
            f"({self.relative_delta:+.1%})"
        )


#: session-level metric extractors used by :func:`compare_datasets`
_SESSION_METRICS: Dict[str, Callable[[SessionView], Optional[float]]] = {
    "startup_ms": lambda s: s.startup_delay_ms,
    "rebuffer_rate_pct": lambda s: 100.0 * s.rebuffer_rate,
    "avg_bitrate_kbps": lambda s: s.avg_bitrate_kbps,
    "retx_rate_pct": lambda s: 100.0 * s.session_retx_rate,
    "dropped_frame_pct": lambda s: (
        100.0
        * sum(c.player.dropped_frames for c in s.chunks)
        / max(sum(c.player.total_frames for c in s.chunks), 1)
    ),
}


@dataclass
class ComparisonReport:
    """All metric deltas between dataset A (baseline) and B (candidate)."""

    deltas: List[MetricDelta]
    n_sessions_a: int
    n_sessions_b: int

    def by_metric(self, metric: str) -> MetricDelta:
        for delta in self.deltas:
            if delta.metric == metric:
                return delta
        raise KeyError(metric)

    @property
    def significant_changes(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.significant]

    def __str__(self) -> str:
        lines = [
            f"A: {self.n_sessions_a} sessions vs B: {self.n_sessions_b} sessions "
            f"('*' = significant at the bootstrap CI level)"
        ]
        lines.extend(str(d) for d in self.deltas)
        return "\n".join(lines)


def compare_datasets(
    dataset_a: Dataset,
    dataset_b: Dataset,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> ComparisonReport:
    """Compare the session-level QoE of two collection periods.

    Dataset A is the baseline, B the candidate; each metric reports both
    values, bootstrap CIs, and whether the CIs separate.
    """
    sessions_a = dataset_a.sessions()
    sessions_b = dataset_b.sessions()
    deltas: List[MetricDelta] = []
    for metric, extractor in _SESSION_METRICS.items():
        values_a = [v for v in (extractor(s) for s in sessions_a) if v is not None]
        values_b = [v for v in (extractor(s) for s in sessions_b) if v is not None]
        if not values_a or not values_b:
            continue
        deltas.append(
            MetricDelta(
                metric=metric,
                value_a=float(np.mean(values_a)),
                value_b=float(np.mean(values_b)),
                ci_a=bootstrap_ci(
                    values_a, n_resamples=n_resamples, confidence=confidence, seed=seed
                ),
                ci_b=bootstrap_ci(
                    values_b,
                    n_resamples=n_resamples,
                    confidence=confidence,
                    seed=seed + 1,
                ),
            )
        )
    return ComparisonReport(
        deltas=deltas,
        n_sessions_a=len(sessions_a),
        n_sessions_b=len(sessions_b),
    )
