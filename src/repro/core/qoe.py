"""QoE metrics — §4's outcome variables: startup delay, re-buffering, bitrate.

Prior work ([14, 37] in the paper) established the QoE metrics that matter:
startup delay, re-buffering ratio, average bitrate, and rendering quality.
This module computes them per session and builds the cause→QoE relations of
Figs. 4 and 7 (startup delay vs first-chunk server latency / SRTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.stats import BinnedStat, binned_stats
from ..telemetry.dataset import Dataset, SessionView

__all__ = [
    "SessionQoe",
    "session_qoe",
    "startup_vs_first_chunk_server_latency",
    "startup_vs_first_chunk_srtt",
    "summarize",
]


@dataclass(frozen=True)
class SessionQoe:
    """The QoE vector of one session."""

    session_id: str
    startup_ms: Optional[float]
    rebuffer_rate: float
    rebuffer_count: int
    avg_bitrate_kbps: float
    dropped_frame_pct: float
    n_chunks: int


def session_qoe(session: SessionView) -> SessionQoe:
    """Compute the per-session QoE vector."""
    total_frames = sum(c.player.total_frames for c in session.chunks)
    dropped = sum(c.player.dropped_frames for c in session.chunks)
    return SessionQoe(
        session_id=session.session_id,
        startup_ms=session.startup_delay_ms,
        rebuffer_rate=session.rebuffer_rate,
        rebuffer_count=session.total_rebuffer_count,
        avg_bitrate_kbps=session.avg_bitrate_kbps,
        dropped_frame_pct=100.0 * dropped / total_frames if total_frames else 0.0,
        n_chunks=session.n_chunks,
    )


def _first_chunk_relation(
    dataset: Dataset,
    x_of_session,
    bin_edges: Sequence[float],
) -> BinnedStat:
    """Bin per-session startup delay by a first-chunk covariate."""
    xs: List[float] = []
    ys: List[float] = []
    for session in dataset.iter_sessions():
        if not session.chunks or session.chunks[0].chunk_id != 0:
            continue
        startup = session.startup_delay_ms
        if startup is None:
            continue
        x = x_of_session(session)
        if x is None:
            continue
        xs.append(x)
        ys.append(startup)
    return binned_stats(xs, ys, bin_edges, min_count=5)


def startup_vs_first_chunk_server_latency(
    dataset: Dataset,
    bin_edges: Sequence[float] = (0, 25, 50, 100, 150, 200, 300, 400, 600),
) -> BinnedStat:
    """Fig. 4: startup time binned by the first chunk's server latency.

    Server latency is D_CDN + D_BE of chunk 0; startup time is the first
    chunk's full download time (time to play).
    """

    def server_latency(session: SessionView) -> Optional[float]:
        return session.chunks[0].cdn.total_server_ms

    return _first_chunk_relation(dataset, server_latency, bin_edges)


def startup_vs_first_chunk_srtt(
    dataset: Dataset,
    bin_edges: Sequence[float] = (0, 25, 50, 100, 150, 200, 300, 400, 600),
) -> BinnedStat:
    """Fig. 7: startup time binned by the first chunk's SRTT."""

    def first_srtt(session: SessionView) -> Optional[float]:
        samples = session.chunks[0].srtt_samples
        return samples[0] if samples else None

    return _first_chunk_relation(dataset, first_srtt, bin_edges)


def summarize(dataset: Dataset, analysis: str = "auto") -> Dict[str, float]:
    """Headline QoE numbers for a dataset (used by examples and reports).

    *analysis* selects the read path (docs/PERFORMANCE.md "The read
    path"): ``"columnar"`` computes on whole telemetry columns
    (:mod:`~repro.core.columnar_analysis`), ``"records"`` streams sessions
    one at a time (:class:`~repro.core.streaming.QoeAccumulator`), and
    ``"auto"`` picks per dataset.  Both spellings return bit-identical
    results under a flat memory ceiling (docs/TELEMETRY.md).
    """
    from .columnar_analysis import analyze_dataset, resolve_analysis_mode

    if resolve_analysis_mode(dataset, analysis) == "columnar":
        return analyze_dataset(dataset, analyses=("qoe",))["qoe"]
    from .streaming import QoeAccumulator, consume

    return consume(dataset, QoeAccumulator())[0]
