"""Rendering-path diagnosis — §4.4: download rate, browsers, and frame drops.

Implements the paper's client rendering analyses:

* dropped frames vs chunk download rate, with the hardware-rendering
  series separated (Fig. 19) and the 1.5 s/s rule-of-thumb validation
  (the 85.5% / 5.7% / 6.9% split);
* browser share and rendering quality per platform (Fig. 21);
* the unpopular-browser breakdown under good conditions (Fig. 22);
* first-chunk D_FB vs other chunks under performance-equivalent
  conditions (Fig. 18 — §4.3-3, kept here with the other per-platform
  client analyses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import BinnedStat, binned_stats
from ..telemetry.dataset import Dataset, JoinedChunk

__all__ = [
    "drops_vs_download_rate",
    "hardware_rendering_drop_pct",
    "RateRuleSplit",
    "rate_rule_validation",
    "BrowserRenderRow",
    "browser_rendering_table",
    "unpopular_browser_drops",
    "first_chunk_equivalence_split",
]

GOOD_RATE = 1.5
BAD_FRAMERATE_DROP = 0.30


def drops_vs_download_rate(
    dataset: Dataset,
    bin_edges: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
    include_hw: bool = False,
) -> BinnedStat:
    """Fig. 19: dropped-frame % binned by chunk download rate (s/s).

    Hidden chunks are excluded (their drops are intentional); hardware-
    rendered chunks are excluded by default and reported separately.
    """
    xs: List[float] = []
    ys: List[float] = []
    for chunk in dataset.player_chunks:
        if not chunk.visible:
            continue
        if chunk.hw_rendered and not include_hw:
            continue
        rate = chunk.download_rate
        if not np.isfinite(rate):
            continue
        xs.append(min(rate, bin_edges[-1] - 1e-9))
        ys.append(100.0 * chunk.dropped_fraction)
    return binned_stats(xs, ys, bin_edges, min_count=5)


def hardware_rendering_drop_pct(dataset: Dataset) -> Optional[float]:
    """Mean dropped-frame % of hardware-rendered, visible chunks (Fig. 19's
    first bar)."""
    drops = [
        100.0 * chunk.dropped_fraction
        for chunk in dataset.player_chunks
        if chunk.visible and chunk.hw_rendered
    ]
    return float(np.mean(drops)) if drops else None


@dataclass(frozen=True)
class RateRuleSplit:
    """Validation of the 1.5 s/s rule (§4.4-1's 85.5/5.7/6.9 split)."""

    confirming_fraction: float  # rate and framerate agree with the rule
    low_rate_good_render: float  # buffered frames hid the slow arrival
    good_rate_bad_render: float  # CPU-bound despite fast arrival
    n_chunks: int


def rate_rule_validation(dataset: Dataset) -> RateRuleSplit:
    """Classify visible, software-rendered chunks against the 1.5 s/s rule."""
    confirming = low_good = high_bad = 0
    total = 0
    for chunk in dataset.player_chunks:
        if not chunk.visible or chunk.hw_rendered:
            continue
        rate = chunk.download_rate
        if not np.isfinite(rate):
            continue
        bad_frames = chunk.dropped_fraction > BAD_FRAMERATE_DROP
        total += 1
        if rate < GOOD_RATE and bad_frames:
            confirming += 1
        elif rate >= GOOD_RATE and not bad_frames:
            confirming += 1
        elif rate < GOOD_RATE and not bad_frames:
            low_good += 1
        else:
            high_bad += 1
    if total == 0:
        return RateRuleSplit(0.0, 0.0, 0.0, 0)
    return RateRuleSplit(
        confirming_fraction=confirming / total,
        low_rate_good_render=low_good / total,
        good_rate_bad_render=high_bad / total,
        n_chunks=total,
    )


@dataclass(frozen=True)
class BrowserRenderRow:
    """One bar pair of Fig. 21: share of chunks and mean dropped %."""

    os: str
    browser: str
    chunk_share_pct: float  # normalized within the OS
    mean_dropped_pct: float
    n_chunks: int


def browser_rendering_table(
    dataset: Dataset, min_chunks: int = 50
) -> List[BrowserRenderRow]:
    """Fig. 21: per-(OS, browser) chunk share and rendering quality."""
    platform_of = {s.session_id: (s.os, s.browser) for s in dataset.player_sessions}
    drops: Dict[Tuple[str, str], List[float]] = {}
    for chunk in dataset.player_chunks:
        platform = platform_of.get(chunk.session_id)
        if platform is None or not chunk.visible:
            continue
        drops.setdefault(platform, []).append(100.0 * chunk.dropped_fraction)

    os_totals: Dict[str, int] = {}
    for (os_name, _), values in drops.items():
        os_totals[os_name] = os_totals.get(os_name, 0) + len(values)

    rows: List[BrowserRenderRow] = []
    for (os_name, browser), values in drops.items():
        if len(values) < min_chunks:
            continue
        rows.append(
            BrowserRenderRow(
                os=os_name,
                browser=browser,
                chunk_share_pct=100.0 * len(values) / os_totals[os_name],
                mean_dropped_pct=float(np.mean(values)),
                n_chunks=len(values),
            )
        )
    rows.sort(key=lambda r: (r.os, -r.chunk_share_pct))
    return rows


def unpopular_browser_drops(
    dataset: Dataset,
    browsers: Sequence[str] = ("Yandex", "Vivaldi", "Opera", "Safari", "SeaMonkey"),
    os_name: str = "Windows",
    min_chunks: int = 30,
) -> Tuple[List[Tuple[str, float]], float]:
    """Fig. 22: drops of unpopular (browser, Windows) combos vs everyone else.

    Restricted, as in the paper, to chunks with good performance
    (rate >= 1.5 s/s) that are visible.  Returns ([(browser, mean %)],
    mean % of the rest).
    """
    platform_of = {s.session_id: (s.os, s.browser) for s in dataset.player_sessions}
    targets = {(os_name, b) for b in browsers}
    per_target: Dict[str, List[float]] = {}
    rest: List[float] = []
    for chunk in dataset.player_chunks:
        if not chunk.visible or chunk.download_rate < GOOD_RATE:
            continue
        platform = platform_of.get(chunk.session_id)
        if platform is None:
            continue
        drop_pct = 100.0 * chunk.dropped_fraction
        if platform in targets:
            per_target.setdefault(platform[1], []).append(drop_pct)
        else:
            rest.append(drop_pct)
    rows = [
        (browser, float(np.mean(values)))
        for browser, values in per_target.items()
        if len(values) >= min_chunks
    ]
    rows.sort(key=lambda r: r[1], reverse=True)
    rest_mean = float(np.mean(rest)) if rest else 0.0
    return rows, rest_mean


def first_chunk_equivalence_split(
    dataset: Dataset,
    srtt_band_ms: Tuple[float, float] = (60.0, 65.0),
    max_d_cdn_ms: float = 5.0,
    initial_window: int = 10,
) -> Tuple[List[float], List[float]]:
    """Fig. 18: D_FB of first vs other chunks in equivalent conditions.

    The paper's equivalence filter: no packet loss in the chunk,
    CWND > IW, similar SRTT (a narrow band), low server latency, cache
    hit.  What remains is the download stack's first-chunk setup cost.
    Returns (first-chunk D_FBs, other-chunk D_FBs).
    """
    first: List[float] = []
    other: List[float] = []
    for session in dataset.sessions():
        for (chunk_id, retx), chunk in zip(session.chunk_retx_counts(), session.chunks):
            if retx > 0:
                continue
            last = chunk.last_tcp
            if last is None or last.cwnd_segments <= initial_window:
                continue
            if not chunk.srtt_samples:
                continue
            srtt = chunk.srtt_samples[0]
            if not srtt_band_ms[0] <= srtt <= srtt_band_ms[1]:
                continue
            if chunk.cdn.d_cdn_ms >= max_d_cdn_ms or not chunk.cdn.is_hit:
                continue
            (first if chunk_id == 0 else other).append(chunk.player.dfb_ms)
    return first, other
