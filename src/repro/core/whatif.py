"""Counterfactual estimators: what would the paper's fixes buy?

The paper closes each section with recommendations (pre-fetch and warm
caches, fix the download stack, improve peering).  This module estimates
the headroom of each fix directly from collected telemetry, per session,
by surgically replacing the offending latency component and re-deriving
the QoE metric:

* **perfect caching** — replace every first-chunk miss/disk latency with
  the fleet's RAM-hit latency and measure the startup-delay headroom
  (§4.1's pre-fetch/warm take-aways);
* **no download-stack latency** — subtract the Eq. 5 bound from D_FB and
  measure the first-byte headroom (§4.3's client-side fixes);

These are *upper bounds on the direct effect* — second-order effects (ABR
choosing differently on a faster path) need re-simulation, which
``repro.simulation`` provides for the closed loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..telemetry.dataset import Dataset
from .downstack import persistent_ds_bound_ms

__all__ = ["WhatIfReport", "perfect_caching_headroom", "no_downloadstack_headroom"]


@dataclass(frozen=True)
class WhatIfReport:
    """Headroom of one counterfactual fix."""

    fix: str
    metric: str
    current_median_ms: float
    counterfactual_median_ms: float
    affected_session_fraction: float
    n_sessions: int

    @property
    def median_improvement_ms(self) -> float:
        return self.current_median_ms - self.counterfactual_median_ms

    @property
    def relative_improvement(self) -> float:
        if self.current_median_ms <= 0:
            return 0.0
        return self.median_improvement_ms / self.current_median_ms

    def __str__(self) -> str:
        return (
            f"{self.fix}: median {self.metric} "
            f"{self.current_median_ms:.0f} -> {self.counterfactual_median_ms:.0f} ms "
            f"({self.relative_improvement:+.1%}, "
            f"{100 * self.affected_session_fraction:.1f}% of sessions affected)"
        )


def perfect_caching_headroom(dataset: Dataset) -> Optional[WhatIfReport]:
    """Startup-delay headroom if every first chunk were a RAM hit.

    Replaces each session's first-chunk server latency (D_CDN + D_BE)
    with the fleet's median RAM-hit latency.
    """
    ram_hit_latencies = [
        c.total_server_ms for c in dataset.cdn_chunks if c.cache_status == "hit_ram"
    ]
    if not ram_hit_latencies:
        return None
    ideal_server_ms = float(np.median(ram_hit_latencies))

    current: List[float] = []
    counterfactual: List[float] = []
    affected = 0
    for session in dataset.sessions():
        if not session.chunks or session.chunks[0].chunk_id != 0:
            continue
        startup = session.startup_delay_ms
        if startup is None:
            continue
        first = session.chunks[0]
        saving = max(0.0, first.cdn.total_server_ms - ideal_server_ms)
        current.append(startup)
        counterfactual.append(startup - saving)
        if first.cdn.cache_status != "hit_ram":
            affected += 1
    if not current:
        return None
    return WhatIfReport(
        fix="perfect-first-chunk-caching",
        metric="startup",
        current_median_ms=float(np.median(current)),
        counterfactual_median_ms=float(np.median(counterfactual)),
        affected_session_fraction=affected / len(current),
        n_sessions=len(current),
    )


def no_downloadstack_headroom(dataset: Dataset) -> Optional[WhatIfReport]:
    """First-byte-delay headroom if the download stack added zero latency.

    Subtracts the (conservative, so this *under*-states the win) Eq. 5
    bound from every chunk's D_FB and compares the medians.
    """
    current: List[float] = []
    counterfactual: List[float] = []
    sessions_affected = 0
    n_sessions = 0
    for session in dataset.sessions():
        if not session.chunks:
            continue
        n_sessions += 1
        session_affected = False
        for chunk in session.chunks:
            bound = persistent_ds_bound_ms(chunk)
            dfb = chunk.player.dfb_ms
            current.append(dfb)
            if bound is None or bound <= 0:
                counterfactual.append(dfb)
            else:
                counterfactual.append(max(dfb - bound, 1.0))
                session_affected = True
        sessions_affected += session_affected
    if not current:
        return None
    return WhatIfReport(
        fix="no-download-stack-latency",
        metric="first-byte delay",
        current_median_ms=float(np.median(current)),
        counterfactual_median_ms=float(np.median(counterfactual)),
        affected_session_fraction=sessions_affected / max(n_sessions, 1),
        n_sessions=n_sessions,
    )


def all_headrooms(dataset: Dataset) -> Dict[str, WhatIfReport]:
    """Every available counterfactual, keyed by fix name."""
    reports = {}
    for builder in (perfect_caching_headroom, no_downloadstack_headroom):
        report = builder(dataset)
        if report is not None:
            reports[report.fix] = report
    return reports
