"""First-byte-delay decomposition — the paper's Eq. 1 and its estimators.

Eq. 1:  D_FB = D_CDN + D_BE + D_DS + rtt0

The player measures D_FB; the CDN logs D_CDN and D_BE; neither side can
observe D_DS or rtt0 directly.  §4.2 derives the workable estimators this
module implements:

* ``rtt0_upper_bound`` — D_FB − (D_CDN + D_BE) bounds rtt0 from above
  (the residual also contains D_DS);
* ``chunk_baseline_rtt`` — min(SRTT samples, rtt0 upper bound), the
  per-chunk baseline latency sample that avoids self-loading inflation;
* ``session_min_rtt`` / σ(SRTT) — the per-session baseline and variation
  statistics behind Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..telemetry.dataset import JoinedChunk, SessionView

__all__ = [
    "rtt0_upper_bound",
    "chunk_baseline_rtt",
    "session_min_rtt",
    "session_srtt_samples",
    "session_srtt_sigma",
    "server_latency_exceeds_network",
]


def rtt0_upper_bound(chunk: JoinedChunk) -> float:
    """Upper bound on the chunk's request round-trip time (Eq. 1 residual).

    D_FB − (D_CDN + D_BE) = rtt0 + D_DS >= rtt0.  Floored at a small
    positive value: clock skew between the two measurement points can push
    the raw residual below zero.
    """
    residual = chunk.player.dfb_ms - (chunk.cdn.d_cdn_ms + chunk.cdn.d_be_ms)
    return max(residual, 0.1)


def chunk_baseline_rtt(chunk: JoinedChunk) -> float:
    """Per-chunk baseline network latency sample (§4.2-1).

    SRTT samples taken mid-transfer may include self-loading queueing
    delay, so the paper takes the minimum of the chunk's SRTT samples and
    the rtt0 upper bound.
    """
    candidates: List[float] = [rtt0_upper_bound(chunk)]
    candidates.extend(chunk.srtt_samples)
    return min(candidates)


def session_min_rtt(session: SessionView) -> Optional[float]:
    """srtt_min for a session: min over all per-chunk baselines (Fig. 8)."""
    if not session.chunks:
        return None
    return min(chunk_baseline_rtt(chunk) for chunk in session.chunks)


def session_srtt_samples(session: SessionView) -> List[float]:
    """All SRTT snapshot values of the session, in time order."""
    samples: List[float] = []
    for chunk in session.chunks:
        samples.extend(chunk.srtt_samples)
    return samples


def session_srtt_sigma(session: SessionView) -> Optional[float]:
    """σ(SRTT) across the session's snapshots (the Fig. 8 variation curve)."""
    samples = session_srtt_samples(session)
    if len(samples) < 2:
        return None
    return float(np.std(samples))


def server_latency_exceeds_network(chunk: JoinedChunk) -> bool:
    """Does the server contribute more to D_FB than the network RTT?

    §4.1: true for ~5% of chunks, and cache misses dominate that 5%.
    """
    return chunk.cdn.total_server_ms > chunk_baseline_rtt(chunk)
