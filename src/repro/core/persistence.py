"""Persistent-problem analysis — §4.1-2 and §4.2-1: prefixes and sessions.

Two families of persistence the paper characterizes:

* **Prefix-level network persistence** (§4.2-1): aggregate sessions into
  /24 prefixes, find the tail-latency prefixes (srtt_min > 100 ms), repeat
  per day, and keep the prefixes that recur — then explain them by
  geography (international distance) vs enterprise paths (Fig. 9).
* **Session-level server persistence** (§4.1-2): once a session has one
  cache miss (or one high-latency read), further ones become much more
  likely — the unpopular-video signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..net.prefix import is_valid_ipv4, prefix_of
from ..telemetry.dataset import Dataset, SessionView
from ..workload.geo import GeoPoint, haversine_km
from .decomposition import chunk_baseline_rtt, session_min_rtt

__all__ = [
    "prefix_min_rtt",
    "TailPrefixReport",
    "tail_latency_prefixes",
    "SessionPersistenceReport",
    "session_server_persistence",
]


def prefix_min_rtt(dataset: Dataset) -> Dict[str, float]:
    """srtt_min per /24 prefix: minimum of all per-chunk baselines (§4.2-1).

    "A prefix has more RTT samples than a session; hence, congestion is
    less likely to inflate all samples."
    """
    ip_of = {s.session_id: s.client_ip for s in dataset.cdn_sessions}
    minima: Dict[str, float] = {}
    for session in dataset.sessions():
        ip = ip_of.get(session.session_id)
        if ip is None or not is_valid_ipv4(ip):
            continue
        baseline = session_min_rtt(session)
        if baseline is None:
            continue
        key = prefix_of(ip)
        minima[key] = min(minima.get(key, float("inf")), baseline)
    return minima


@dataclass
class TailPrefixReport:
    """Persistent tail-latency prefixes and their explanation (Fig. 9)."""

    persistent_prefixes: List[str]
    recurrence: Dict[str, float]
    non_us_fraction: float
    us_distances_km: List[float]
    us_enterprise_close_fraction: float

    @property
    def n_persistent(self) -> int:
        return len(self.persistent_prefixes)


def _split_into_days(dataset: Dataset, n_days: int) -> List[Dataset]:
    """Partition the dataset into *n_days* equal sub-windows by session start."""
    starts = {s.session_id: s.start_ms for s in dataset.player_sessions}
    if not starts:
        return []
    lo = min(starts.values())
    hi = max(starts.values()) + 1.0
    width = (hi - lo) / n_days
    buckets: List[List[str]] = [[] for _ in range(n_days)]
    for session_id, start in starts.items():
        index = min(int((start - lo) / width), n_days - 1)
        buckets[index].append(session_id)
    return [dataset.filter_sessions(ids) for ids in buckets if ids]


def tail_latency_prefixes(
    dataset: Dataset,
    pop_locations: Mapping[str, GeoPoint],
    latency_threshold_ms: float = 100.0,
    n_days: int = 3,
    top_recurrence_fraction: float = 0.10,
    close_km: float = 200.0,
) -> TailPrefixReport:
    """§4.2-1's full pipeline: tail prefixes → recurrence → geography.

    *pop_locations* maps pop_id → location (the provider knows its own
    deployment).  Distances are client-prefix to *serving* PoP, averaged
    when a prefix is served from several.
    """
    if not 0 < top_recurrence_fraction <= 1:
        raise ValueError("top_recurrence_fraction must be in (0, 1]")
    days = _split_into_days(dataset, n_days)
    if not days:
        return TailPrefixReport([], {}, 0.0, [], 0.0)

    appearances: Dict[str, int] = {}
    for day in days:
        minima = prefix_min_rtt(day)
        for prefix, minimum in minima.items():
            if minimum > latency_threshold_ms:
                appearances[prefix] = appearances.get(prefix, 0) + 1
    recurrence = {p: count / len(days) for p, count in appearances.items()}
    if not recurrence:
        return TailPrefixReport([], {}, 0.0, [], 0.0)

    ranked = sorted(recurrence.items(), key=lambda kv: kv[1], reverse=True)
    keep = max(1, int(round(len(ranked) * top_recurrence_fraction)))
    cutoff = ranked[keep - 1][1]
    persistent = [p for p, freq in ranked if freq >= cutoff]

    # Geography of the persistent prefixes, from the CDN session metadata.
    info: Dict[str, Tuple[str, str, float, float, List[str]]] = {}
    for cdn_session in dataset.cdn_sessions:
        if not is_valid_ipv4(cdn_session.client_ip):
            continue
        prefix = prefix_of(cdn_session.client_ip)
        if prefix not in info:
            info[prefix] = (
                cdn_session.country,
                cdn_session.conn_type,
                cdn_session.lat,
                cdn_session.lon,
                [],
            )
        info[prefix][4].append(cdn_session.pop_id)

    non_us = 0
    us_distances: List[float] = []
    us_close_enterprise = 0
    us_close_total = 0
    for prefix in persistent:
        meta = info.get(prefix)
        if meta is None:
            continue
        country, conn_type, lat, lon, pops = meta
        if country != "US":
            non_us += 1
            continue
        distances = [
            haversine_km(lat, lon, pop_locations[p].lat, pop_locations[p].lon)
            for p in pops
            if p in pop_locations
        ]
        if not distances:
            continue
        mean_distance = float(np.mean(distances))
        us_distances.append(mean_distance)
        if mean_distance <= close_km:
            us_close_total += 1
            if conn_type == "corporate":
                us_close_enterprise += 1

    return TailPrefixReport(
        persistent_prefixes=persistent,
        recurrence=recurrence,
        non_us_fraction=non_us / len(persistent) if persistent else 0.0,
        us_distances_km=us_distances,
        us_enterprise_close_fraction=(
            us_close_enterprise / us_close_total if us_close_total else 0.0
        ),
    )


@dataclass
class SessionPersistenceReport:
    """§4.1-2: conditional persistence of server-side problems."""

    overall_miss_ratio: float
    mean_miss_ratio_given_one_miss: float
    median_miss_ratio_given_one_miss: float
    overall_slow_read_ratio: float
    mean_slow_ratio_given_one_slow: float
    median_slow_ratio_given_one_slow: float
    n_sessions_with_miss: int
    n_sessions_with_slow: int


def session_server_persistence(
    dataset: Dataset, slow_read_threshold_ms: float = 10.0
) -> SessionPersistenceReport:
    """Cache-miss and slow-read persistence within sessions (§4.1-2).

    "Once a session has a cache miss on one chunk, the chance of further
    cache misses increases dramatically; the mean cache miss ratio among
    sessions with at least one cache miss is 60%."
    """
    miss_ratios_all: List[float] = []
    miss_ratios_conditional: List[float] = []
    slow_ratios_all: List[float] = []
    slow_ratios_conditional: List[float] = []
    for session in dataset.sessions():
        if not session.chunks:
            continue
        misses = [not chunk.cdn.is_hit for chunk in session.chunks]
        slows = [chunk.cdn.d_read_ms > slow_read_threshold_ms for chunk in session.chunks]
        miss_ratio = float(np.mean(misses))
        slow_ratio = float(np.mean(slows))
        miss_ratios_all.append(miss_ratio)
        slow_ratios_all.append(slow_ratio)
        if any(misses):
            miss_ratios_conditional.append(miss_ratio)
        if any(slows):
            slow_ratios_conditional.append(slow_ratio)

    def mean_or_zero(values: List[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    def median_or_zero(values: List[float]) -> float:
        return float(np.median(values)) if values else 0.0

    return SessionPersistenceReport(
        overall_miss_ratio=mean_or_zero(miss_ratios_all),
        mean_miss_ratio_given_one_miss=mean_or_zero(miss_ratios_conditional),
        median_miss_ratio_given_one_miss=median_or_zero(miss_ratios_conditional),
        overall_slow_read_ratio=mean_or_zero(slow_ratios_all),
        mean_slow_ratio_given_one_slow=mean_or_zero(slow_ratios_conditional),
        median_slow_ratio_given_one_slow=median_or_zero(slow_ratios_conditional),
        n_sessions_with_miss=len(miss_ratios_conditional),
        n_sessions_with_slow=len(slow_ratios_conditional),
    )
