"""Network diagnosis — §4.2: latency baselines, variability, and loss timing.

Implements the paper's session- and path-level network statistics:

* per-session srtt_min and σ(SRTT) (Fig. 8) via :mod:`.decomposition`;
* coefficient of variation of SRTT per session, aggregated per
  ISP/organization (Table 4) and per (prefix, PoP) path (Fig. 10);
* loss analysis from the retransmission counters: loss vs no-loss session
  QoE (Figs. 11-12), per-chunk retransmission rates (Fig. 15), and the
  rebuffering-given-loss-position conditionals (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import coefficient_of_variation
from ..net.prefix import is_valid_ipv4, prefix_of
from ..telemetry.dataset import Dataset, SessionView
from .decomposition import session_srtt_samples

__all__ = [
    "session_srtt_cv",
    "OrgCvRow",
    "org_cv_table",
    "path_cv_values",
    "LossSplit",
    "split_sessions_by_loss",
    "per_chunk_retx_rates",
    "rebuffer_given_loss_by_chunk",
    "session_rebuffer_vs_retx",
]


def session_srtt_cv(session: SessionView) -> Optional[float]:
    """CV(SRTT) of one session (§4.2-2); None without enough samples."""
    samples = session_srtt_samples(session)
    if len(samples) < 2:
        return None
    cv = coefficient_of_variation(samples)
    return None if np.isnan(cv) else cv


@dataclass(frozen=True)
class OrgCvRow:
    """One row of the Table 4 reproduction."""

    org: str
    n_high_cv: int
    n_sessions: int

    @property
    def percentage(self) -> float:
        return 100.0 * self.n_high_cv / self.n_sessions if self.n_sessions else 0.0


def org_cv_table(
    dataset: Dataset,
    min_sessions: int = 50,
    cv_threshold: float = 1.0,
) -> List[OrgCvRow]:
    """Share of sessions with CV(SRTT) > threshold per organization.

    Reproduces Table 4 ("we limit the result to ISPs/organizations that
    have at least 50 video streaming sessions"), sorted worst-first.
    """
    counts: Dict[str, Tuple[int, int]] = {}
    org_of = {s.session_id: s.org for s in dataset.cdn_sessions}
    for session in dataset.sessions():
        org = org_of.get(session.session_id)
        if org is None:
            continue
        cv = session_srtt_cv(session)
        if cv is None:
            continue
        high, total = counts.get(org, (0, 0))
        counts[org] = (high + (1 if cv > cv_threshold else 0), total + 1)

    rows = [
        OrgCvRow(org=org, n_high_cv=high, n_sessions=total)
        for org, (high, total) in counts.items()
        if total >= min_sessions
    ]
    rows.sort(key=lambda r: r.percentage, reverse=True)
    return rows


def path_cv_values(dataset: Dataset, min_sessions: int = 5) -> List[float]:
    """CV of per-session average SRTT per (prefix, PoP) path (Fig. 10).

    "sessions are grouped based on their prefix and CDN PoP ... we used the
    average srtt of each session as the sample latency."
    """
    pop_of = {s.session_id: s.pop_id for s in dataset.cdn_sessions}
    ip_of = {s.session_id: s.client_ip for s in dataset.cdn_sessions}
    paths: Dict[Tuple[str, str], List[float]] = {}
    for session in dataset.sessions():
        samples = session_srtt_samples(session)
        if not samples:
            continue
        ip = ip_of.get(session.session_id)
        pop = pop_of.get(session.session_id)
        if ip is None or pop is None or not is_valid_ipv4(ip):
            continue
        paths.setdefault((prefix_of(ip), pop), []).append(float(np.mean(samples)))

    values: List[float] = []
    for samples in paths.values():
        if len(samples) < min_sessions:
            continue
        cv = coefficient_of_variation(samples)
        if not np.isnan(cv):
            values.append(cv)
    return values


@dataclass
class LossSplit:
    """Sessions partitioned by whether the connection retransmitted at all."""

    with_loss: List[SessionView]
    without_loss: List[SessionView]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-group medians of the Fig. 11 metrics."""

        def describe(group: List[SessionView]) -> Dict[str, float]:
            if not group:
                return {"n": 0}
            return {
                "n": len(group),
                "median_chunks": float(np.median([s.n_chunks for s in group])),
                "median_bitrate_kbps": float(
                    np.median([s.avg_bitrate_kbps for s in group])
                ),
                "rebuffer_session_fraction": float(
                    np.mean([s.rebuffer_rate > 0 for s in group])
                ),
                "mean_rebuffer_rate": float(np.mean([s.rebuffer_rate for s in group])),
            }

        return {"loss": describe(self.with_loss), "no_loss": describe(self.without_loss)}


def split_sessions_by_loss(dataset: Dataset) -> LossSplit:
    """Partition sessions by retransmission evidence (Fig. 11's two groups)."""
    with_loss: List[SessionView] = []
    without_loss: List[SessionView] = []
    for session in dataset.sessions():
        (with_loss if session.session_retx_rate > 0 else without_loss).append(session)
    return LossSplit(with_loss=with_loss, without_loss=without_loss)


def per_chunk_retx_rates(
    dataset: Dataset, max_chunk_id: int = 20, mss: int = 1460
) -> List[Tuple[int, float]]:
    """Average retransmission rate per chunk position (Fig. 15).

    The per-chunk retransmission count is the delta of the cumulative
    counter between consecutive chunks; the rate divides by the chunk's
    estimated segment count.
    """
    rates: Dict[int, List[float]] = {}
    for session in dataset.sessions():
        for (chunk_id, retx), chunk in zip(session.chunk_retx_counts(), session.chunks):
            if chunk_id > max_chunk_id:
                continue
            segments = max(1, chunk.cdn.chunk_bytes // mss)
            rates.setdefault(chunk_id, []).append(retx / segments)
    return [
        (chunk_id, float(np.mean(values)))
        for chunk_id, values in sorted(rates.items())
    ]


def rebuffer_given_loss_by_chunk(
    dataset: Dataset, max_chunk_id: int = 20
) -> List[Tuple[int, float, Optional[float]]]:
    """Fig. 14: (chunk id, P(rebuf at chunk), P(rebuf at chunk | loss at chunk)).

    The conditional is None for positions with no loss events.  Note the
    paper's convention: a session's very first chunk cannot rebuffer (its
    wait is startup delay), so position 0 probabilities are near zero and
    the conditional spike appears at the *following* positions.
    """
    unconditional: Dict[int, List[bool]] = {}
    conditional: Dict[int, List[bool]] = {}
    for session in dataset.sessions():
        for (chunk_id, retx), chunk in zip(session.chunk_retx_counts(), session.chunks):
            if chunk_id > max_chunk_id:
                continue
            rebuffered = chunk.player.rebuffer_count > 0
            unconditional.setdefault(chunk_id, []).append(rebuffered)
            if retx > 0:
                conditional.setdefault(chunk_id, []).append(rebuffered)
    rows: List[Tuple[int, float, Optional[float]]] = []
    for chunk_id in sorted(unconditional):
        p = float(np.mean(unconditional[chunk_id]))
        p_given_loss = (
            float(np.mean(conditional[chunk_id])) if chunk_id in conditional else None
        )
        rows.append((chunk_id, p, p_given_loss))
    return rows


def session_rebuffer_vs_retx(
    dataset: Dataset, retx_bin_edges: Sequence[float] = (0, 1, 2, 3, 4, 5, 6, 8, 10)
) -> List[Tuple[float, float, int]]:
    """Fig. 12: mean re-buffering rate (%) binned by retransmission rate (%).

    Returns (bin center %, mean rebuffer rate %, n sessions) rows.
    """
    edges = list(retx_bin_edges)
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    sessions = dataset.sessions()
    rows: List[Tuple[float, float, int]] = []
    for low, high in zip(edges[:-1], edges[1:]):
        in_bin = [
            s
            for s in sessions
            if low <= 100.0 * s.session_retx_rate < high
        ]
        if not in_bin:
            continue
        rows.append(
            (
                (low + high) / 2.0,
                float(np.mean([100.0 * s.rebuffer_rate for s in in_bin])),
                len(in_bin),
            )
        )
    return rows
