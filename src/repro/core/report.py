"""Key-findings report — programmatic checks of the paper's Table 1.

Every row of Table 1 becomes a named, machine-checkable
:class:`FindingCheck` evaluated on a dataset: the claim, the relevant
measured quantities, and whether the dataset's shape supports the claim.
This is the harness behind the ``table01`` experiment and the final
"does the reproduction reproduce?" gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..telemetry.dataset import Dataset
from ..workload.geo import GeoPoint
from . import downstack, netdiag, perfscore, persistence, popularity, rendering_diag

__all__ = ["FindingCheck", "KeyFindingsReport", "evaluate_key_findings"]


@dataclass
class FindingCheck:
    """One Table-1 row: claim, measured evidence, verdict."""

    finding_id: str
    claim: str
    passed: bool
    evidence: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        details = ", ".join(f"{k}={v:.4g}" for k, v in self.evidence.items())
        return f"[{status}] {self.finding_id}: {self.claim} ({details})"


@dataclass
class KeyFindingsReport:
    """All Table-1 checks for a dataset."""

    checks: List[FindingCheck]

    @property
    def n_passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def by_id(self, finding_id: str) -> FindingCheck:
        for check in self.checks:
            if check.finding_id == finding_id:
                return check
        raise KeyError(finding_id)

    def __str__(self) -> str:
        lines = [f"Key findings: {self.n_passed}/{len(self.checks)} supported"]
        lines.extend(str(check) for check in self.checks)
        return "\n".join(lines)


def _median(values: List[float]) -> float:
    return float(np.median(values)) if values else float("nan")


def evaluate_key_findings(
    dataset: Dataset,
    pop_locations: Optional[Mapping[str, GeoPoint]] = None,
) -> KeyFindingsReport:
    """Evaluate every Table-1 finding on *dataset*.

    *pop_locations* enables the geography part of NET-1; without it the
    check degrades to the latency-tail-exists test.
    """
    chunks = dataset.join_chunks()
    sessions = dataset.sessions()
    checks: List[FindingCheck] = []

    # ---- CDN-1: asynchronous disk reads increase server-side delay -------
    ram_reads = [c.cdn.d_read_ms for c in chunks if c.cdn.cache_status == "hit_ram"]
    disk_reads = [c.cdn.d_read_ms for c in chunks if c.cdn.cache_status == "hit_disk"]
    gap = _median(disk_reads) - _median(ram_reads)
    checks.append(
        FindingCheck(
            "CDN-1",
            "Asynchronous disk-read (retry timer) separates D_read into two modes",
            passed=bool(disk_reads) and gap >= 8.0,
            evidence={"median_ram_read_ms": _median(ram_reads),
                      "median_disk_read_ms": _median(disk_reads)},
        )
    )

    # ---- CDN-2: cache misses increase CDN latency by order of magnitude --
    hit_totals = [c.cdn.total_server_ms for c in chunks if c.cdn.is_hit]
    miss_totals = [c.cdn.total_server_ms for c in chunks if not c.cdn.is_hit]
    ratio = _median(miss_totals) / _median(hit_totals) if hit_totals else float("nan")
    checks.append(
        FindingCheck(
            "CDN-2",
            "Cache misses increase server latency by an order of magnitude",
            passed=bool(miss_totals) and ratio >= 10.0,
            evidence={"median_hit_ms": _median(hit_totals),
                      "median_miss_ms": _median(miss_totals),
                      "ratio": ratio},
        )
    )

    # ---- CDN-3: persistent cache-miss / slow reads for unpopular videos --
    persistence_report = persistence.session_server_persistence(dataset)
    miss_rows = popularity.rank_tail_miss_percentage(dataset)
    miss_trend = miss_rows[-1][1] - miss_rows[0][1] if len(miss_rows) >= 2 else 0.0
    checks.append(
        FindingCheck(
            "CDN-3",
            "Unpopular videos suffer persistent misses and slow reads",
            passed=(
                persistence_report.mean_miss_ratio_given_one_miss
                > 2.0 * max(persistence_report.overall_miss_ratio, 1e-9)
                and miss_trend > 0
            ),
            evidence={
                "mean_miss_ratio_given_miss": persistence_report.mean_miss_ratio_given_one_miss,
                "overall_miss_ratio": persistence_report.overall_miss_ratio,
                "tail_minus_head_miss_pct": miss_trend,
            },
        )
    )

    # ---- CDN-4: load does not predict latency (paradox) -------------------
    correlation = popularity.load_latency_correlation(dataset)
    checks.append(
        FindingCheck(
            "CDN-4",
            "Higher server latency even on lightly loaded machines "
            "(load-performance paradox: busier servers are not slower)",
            passed=correlation is not None and correlation <= 0.1,
            evidence={"load_latency_corr": correlation if correlation is not None else float("nan")},
        )
    )

    # ---- NET-1: persistent delay from distance or enterprise paths --------
    if pop_locations is not None:
        tail = persistence.tail_latency_prefixes(dataset, pop_locations)
        enterprise_or_far = tail.non_us_fraction + tail.us_enterprise_close_fraction
        checks.append(
            FindingCheck(
                "NET-1",
                "Persistent high latency comes from distance or enterprise paths",
                passed=tail.n_persistent > 0 and enterprise_or_far > 0.5,
                evidence={
                    "n_persistent_prefixes": float(tail.n_persistent),
                    "non_us_fraction": tail.non_us_fraction,
                    "us_close_enterprise_fraction": tail.us_enterprise_close_fraction,
                },
            )
        )

    # ---- NET-2: enterprises have higher latency variation -----------------
    org_rows = netdiag.org_cv_table(dataset, min_sessions=30)
    enterprise_pct = [r.percentage for r in org_rows if r.org.startswith("Enterprise")]
    residential_pct = [r.percentage for r in org_rows if not r.org.startswith("Enterprise")]
    checks.append(
        FindingCheck(
            "NET-2",
            "Enterprise networks have far more high-CV(SRTT) sessions than residential",
            passed=(
                bool(enterprise_pct)
                and bool(residential_pct)
                and max(enterprise_pct) > 5.0 * max(max(residential_pct), 0.5)
            ),
            evidence={
                "max_enterprise_pct": max(enterprise_pct) if enterprise_pct else float("nan"),
                "max_residential_pct": max(residential_pct) if residential_pct else float("nan"),
            },
        )
    )

    # ---- NET-3: earlier losses hurt QoE more ------------------------------
    rows = netdiag.rebuffer_given_loss_by_chunk(dataset, max_chunk_id=10)
    early = [p for cid, _, p in rows if p is not None and 1 <= cid <= 2]
    late = [p for cid, _, p in rows if p is not None and cid >= 4]
    checks.append(
        FindingCheck(
            "NET-3",
            "Losses early in a session raise rebuffering odds more than late losses",
            passed=bool(early) and bool(late) and max(early) > float(np.mean(late)),
            evidence={
                "p_rebuf_given_early_loss": max(early) if early else float("nan"),
                "p_rebuf_given_late_loss": float(np.mean(late)) if late else float("nan"),
            },
        )
    )

    # ---- NET-4: throughput limits more chunks than latency ---------------
    good, bad = perfscore.split_by_score(chunks)
    bad_shares = [perfscore.throughput_share(c.player) for c in bad]
    checks.append(
        FindingCheck(
            "NET-4",
            "Bad-performance chunks are throughput-limited, not latency-limited",
            passed=bool(bad_shares) and float(np.median(bad_shares)) > 0.5,
            evidence={
                "n_bad_chunks": float(len(bad)),
                "median_throughput_share_bad": float(np.median(bad_shares))
                if bad_shares
                else float("nan"),
            },
        )
    )

    # ---- CLI-1: download-stack buffering exists and is detectable ---------
    outliers = downstack.detect_transient_outliers_dataset(dataset)
    n_flagged = sum(len(v) for v in outliers.values())
    checks.append(
        FindingCheck(
            "CLI-1",
            "Client download-stack buffering causes detectable outlier chunks",
            passed=n_flagged > 0,
            evidence={
                "n_flagged_chunks": float(n_flagged),
                "n_sessions_affected": float(len(outliers)),
            },
        )
    )

    # ---- CLI-2: first chunk has higher download-stack latency -------------
    first, other = rendering_diag.first_chunk_equivalence_split(
        dataset, srtt_band_ms=(40.0, 80.0)
    )
    checks.append(
        FindingCheck(
            "CLI-2",
            "First chunks have higher D_FB than later chunks in equivalent conditions",
            passed=bool(first) and bool(other) and _median(first) > _median(other),
            evidence={
                "median_first_dfb_ms": _median(first),
                "median_other_dfb_ms": _median(other),
            },
        )
    )

    # ---- CLI-3: less popular browsers drop more frames ---------------------
    unpopular_rows, rest_mean = rendering_diag.unpopular_browser_drops(dataset)
    checks.append(
        FindingCheck(
            "CLI-3",
            "Unpopular browsers drop more frames than the mainstream ones",
            passed=bool(unpopular_rows)
            and float(np.mean([r[1] for r in unpopular_rows])) > rest_mean,
            evidence={
                "mean_unpopular_drop_pct": float(np.mean([r[1] for r in unpopular_rows]))
                if unpopular_rows
                else float("nan"),
                "rest_drop_pct": rest_mean,
            },
        )
    )

    # ---- CLI-4: 1.5 s/s download rate needed for clean rendering -----------
    binned = rendering_diag.drops_vs_download_rate(dataset)
    slow = [m for c, m in zip(binned.centers, binned.means) if c < 1.0]
    fast = [m for c, m in zip(binned.centers, binned.means) if c >= 1.5]
    checks.append(
        FindingCheck(
            "CLI-4",
            "Avoiding dropped frames needs >= 1.5 s/s download rate; beyond it is flat",
            passed=bool(slow) and bool(fast) and min(slow) > 1.5 * max(np.mean(fast), 1e-9),
            evidence={
                "mean_drop_pct_below_1": float(np.mean(slow)) if slow else float("nan"),
                "mean_drop_pct_above_1_5": float(np.mean(fast)) if fast else float("nan"),
            },
        )
    )

    # ---- CLI-5: lower bitrates show more dropped frames --------------------
    low_bitrate = [
        100.0 * c.player.dropped_fraction
        for c in chunks
        if c.player.visible and not c.player.hw_rendered and c.player.bitrate_kbps <= 1000
    ]
    high_bitrate = [
        100.0 * c.player.dropped_fraction
        for c in chunks
        if c.player.visible and not c.player.hw_rendered and c.player.bitrate_kbps > 1000
    ]
    checks.append(
        FindingCheck(
            "CLI-5",
            "Chunks at lower bitrates have more dropped frames (confounded by "
            "network quality, §4.4-2)",
            passed=bool(low_bitrate)
            and bool(high_bitrate)
            and float(np.mean(low_bitrate)) > float(np.mean(high_bitrate)),
            evidence={
                "mean_drop_pct_low_bitrate": float(np.mean(low_bitrate))
                if low_bitrate
                else float("nan"),
                "mean_drop_pct_high_bitrate": float(np.mean(high_bitrate))
                if high_bitrate
                else float("nan"),
            },
        )
    )

    return KeyFindingsReport(checks=checks)
