"""Vectorized columnar read path for the headline analyses.

The classic analysis spellings (``qoe.summarize``,
``localization.diagnose_dataset``, ``faultscore.score_fault_localization``)
re-materialize one Python record object per telemetry row and join them
into per-session ``SessionView`` objects.  This module computes the same
three results directly on the numpy structured arrays of
:mod:`repro.telemetry.columnar` — the join, the Eq. 2/4/5 chunk math, and
the per-session reductions all run as whole-column numpy operations, with
sessions grouped via ``sort_array`` order + ``searchsorted`` boundaries
instead of per-session object graphs.

Two invariants drive every line here:

* **Byte identity.**  Results are bit-for-bit equal to the record-object
  path (pinned by ``tests/test_columnar_analysis.py``).  Sums that the
  classic path performs sequentially (``Python sum``, ``ndarray.mean/std``
  over axis 0) are reproduced with the stepped group accumulator
  :func:`_grouped_seq_sum` — never ``np.add.reduceat``/``np.sum``, whose
  pairwise summation regroups float additions.
* **Bounded memory.**  Datasets are consumed in session-aligned blocks
  sized by :data:`~repro.telemetry.columnar.ITER_BLOCK_ROWS`; spilled runs
  stay memory-mapped and only the current block's rows are materialized.
  Works for in-memory :class:`~repro.telemetry.dataset.Dataset` objects,
  single-directory spills, sharded spills, and multi-period
  ``period-<label>/`` layouts alike.

See docs/PERFORMANCE.md ("The read path") for when this engine is chosen
and docs/TELEMETRY.md for the columnar layout it consumes.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.columnar import COLUMN_SCHEMAS, ITER_BLOCK_ROWS, records_to_array, sort_array
from .downstack import RTO_FLOOR_MS
from .faultscore import EXPECTED_BOTTLENECK, ClassScore, FaultScoreReport, parse_fault_labels
from .localization import BAD_RENDER_FRACTION, BAD_SCORE, TAIL_RTT_MS, Bottleneck

__all__ = [
    "ANALYSIS_KINDS",
    "analyze_dataset",
    "resolve_analysis_mode",
]

#: the analyses this engine can compute in one blockwise pass
ANALYSIS_KINDS = ("qoe", "localization", "faultscore")

#: Bottleneck verdicts by integer code; ``np.select`` below emits these
#: codes, and enum order fixes the code <-> member mapping.
_BOTTLENECKS: Tuple[Bottleneck, ...] = tuple(Bottleneck)
_CODE_OF = {b: i for i, b in enumerate(_BOTTLENECKS)}
#: per fault class, the expected-bottleneck codes (same order as the
#: ``EXPECTED_BOTTLENECK`` tuples, which ClassScore.expected mirrors)
_EXPECTED_CODES = {
    fault_class: tuple(_CODE_OF[b] for b in expected)
    for fault_class, expected in EXPECTED_BOTTLENECK.items()
}

#: Eq. 4 needs at least this many TCP-qualified chunks per session
_MIN_EQ4_CHUNKS = 5


def resolve_analysis_mode(dataset: Any, analysis: str = "auto") -> str:
    """Resolve the ``analysis`` knob for *dataset* to ``records|columnar``.

    Mirrors the engine registry (:func:`repro._execution.resolve_engine`):
    ``auto`` prefers the columnar pass whenever the dataset is spilled (the
    record path would materialize every row as an object) or large enough
    for vectorization to win; explicit ``records``/``columnar`` always
    obey.  Unknown names raise ``ValueError``.
    """
    from .._execution import resolve_analysis
    from ..telemetry.dataset import Dataset
    from ..telemetry.spill import SpilledDataset

    spilled = isinstance(dataset, SpilledDataset)
    if analysis == "auto" and not spilled and not isinstance(dataset, Dataset):
        # duck-typed dataset (tests, adapters): the record path is the
        # only one guaranteed to understand it
        return "records"
    n_sessions = int(getattr(dataset, "n_sessions", 0))
    return resolve_analysis(analysis, n_sessions=n_sessions, spilled=spilled)


# ---------------------------------------------------------------------------
# sequential (non-pairwise) grouped float accumulation


def _grouped_seq_sum(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-group sums that add elements *sequentially*, like the record path.

    ``values`` holds the rows of every group back to back (group ``g``
    occupies ``values[starts[g]:starts[g]+counts[g]]``).  A plain
    ``np.add.reduceat`` would sum each slice pairwise — a different float
    regrouping than ``sum(list)`` / ``matrix.mean(axis=0)`` — so instead
    the k-th element of every group is added in step k, vectorized across
    groups.  Cost is O(max group size) numpy calls, which the blockwise
    driver keeps small relative to the rows processed.
    """
    out_shape = (len(starts),) + values.shape[1:]
    acc = np.zeros(out_shape, dtype=np.float64)
    if len(starts) == 0 or len(values) == 0:
        return acc
    max_count = int(counts.max())
    for k in range(max_count):
        live = counts > k
        acc[live] += values[starts[live] + k]
    return acc


# ---------------------------------------------------------------------------
# run access + block planning


def _dataset_runs(dataset: Any, kinds: Sequence[str]) -> Dict[str, List[np.ndarray]]:
    """Sorted per-kind run arrays for *dataset* (spilled or in-memory).

    Spilled datasets expose their memory-mapped runs directly
    (:meth:`~repro.telemetry.spill.SpilledDataset.run_arrays`); in-memory
    datasets encode each kind into one sorted array.  Run order matters:
    the blockwise assembly relies on stable re-sorts of
    run-enumeration-ordered concatenations reproducing the k-way merge.
    """
    runs: Dict[str, List[np.ndarray]] = {}
    if hasattr(dataset, "run_arrays"):
        for kind in kinds:
            runs[kind] = [a for a in dataset.run_arrays(kind) if len(a)]
        return runs
    for kind in kinds:
        records = list(getattr(dataset, kind))
        if records:
            runs[kind] = [sort_array(kind, records_to_array(kind, records))]
        else:
            runs[kind] = []
    return runs


class _BlockPlan:
    """Session-aligned block boundaries precomputed per run.

    For every run of every kind the session-id column is extracted *once*,
    both block boundary vectors are computed with two ``searchsorted``
    calls, and the column is dropped — peak transient memory is one run's
    session-id column, not the whole kind's.
    """

    def __init__(self, runs: Dict[str, List[np.ndarray]], kinds: Sequence[str]):
        ps_runs = runs.get("player_sessions", ())
        if ps_runs:
            universe = np.unique(
                np.concatenate([np.asarray(r["session_id"]) for r in ps_runs])
            )
        else:
            universe = np.empty(0, dtype=COLUMN_SCHEMAS["player_sessions"].dtype["session_id"])
        self.n_sids = len(universe)
        if self.n_sids == 0:
            self.n_blocks = 0
            self.slices: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
            return
        total_rows = max(sum(len(r) for r in runs.get(kind, ())) for kind in kinds)
        rows_per_session = max(1.0, total_rows / self.n_sids)
        block_sessions = max(1, int(ITER_BLOCK_ROWS / rows_per_session))
        bounds = list(range(0, self.n_sids, block_sessions))
        self.n_blocks = len(bounds)
        los = universe[np.asarray(bounds, dtype=np.int64)]
        his = universe[
            np.minimum(np.asarray(bounds, dtype=np.int64) + block_sessions, self.n_sids) - 1
        ]
        self.slices = {}
        for kind in kinds:
            entries = []
            for run in runs.get(kind, ()):
                col = np.ascontiguousarray(run["session_id"])
                a = np.searchsorted(col, los, side="left")
                b = np.searchsorted(col, his, side="right")
                del col
                entries.append((run, a, b))
            self.slices[kind] = entries

    def block(self, kind: str, i: int) -> np.ndarray:
        """Rows of *kind* for block *i*, in canonical merge order."""
        parts = [
            np.asarray(run[a[i] : b[i]]) for run, a, b in self.slices[kind] if b[i] > a[i]
        ]
        if not parts:
            return np.empty(0, dtype=COLUMN_SCHEMAS[kind].dtype)
        if len(parts) == 1:
            return parts[0]
        # runs were stable-sorted at flush, and heapq.merge resolves ties
        # to the earlier stream — which is exactly run enumeration order —
        # so a stable sort of the enumeration-ordered concatenation
        # reproduces the global merge order bit-for-bit.
        return sort_array(kind, np.concatenate(parts))


def _member_codes(
    kept: np.ndarray, arr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Filter *arr* to rows whose session_id is in sorted *kept*.

    Returns ``(rows, codes)`` where ``codes[i]`` is the index into *kept*
    of row i's session.  Both stay sorted because *arr* is session-sorted.
    """
    if len(arr) == 0 or len(kept) == 0:
        return arr[:0], np.empty(0, dtype=np.int64)
    col = arr["session_id"]
    idx = np.minimum(np.searchsorted(kept, col), len(kept) - 1)
    mask = kept[idx] == col
    return arr[mask], idx[mask]


def _last_wins_match(keys: np.ndarray, queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Last-wins lookup of *queries* in sorted *keys*.

    Returns ``(matched, j)``: ``matched[i]`` iff ``queries[i]`` occurs in
    *keys*, and ``j[i]`` the index of its *last* occurrence — the same row
    a ``dict[(sid, chunk_id)] = record`` rebuild would keep.
    """
    if len(keys) == 0:
        return np.zeros(len(queries), dtype=bool), np.zeros(len(queries), dtype=np.int64)
    j = np.searchsorted(keys, queries, side="right") - 1
    matched = j >= 0
    matched &= keys[np.maximum(j, 0)] == queries
    return matched, j


# ---------------------------------------------------------------------------
# per-analysis accumulation state


class _QoeState:
    """Blockwise twin of ``streaming.QoeAccumulator`` (bit-identical)."""

    def __init__(self) -> None:
        self.n = 0
        self._startups: List[np.ndarray] = []
        self._rates: List[np.ndarray] = []
        self._bitrates: List[np.ndarray] = []
        self._dropped: List[np.ndarray] = []
        self._chunks: List[np.ndarray] = []

    def update(self, block: "_JoinedBlock") -> None:
        n_kept = block.n_kept
        self.n += n_kept
        counts = block.counts
        starts = block.starts
        # the record path folds these three per-chunk columns left to
        # right with Python sum(); _grouped_seq_sum replays that exact
        # addition order across all sessions at once
        triple = np.stack(
            [block.rebuffer_ms, block.chunk_duration_ms, block.bitrate_kbps], axis=1
        )
        sums = _grouped_seq_sum(triple, starts, counts)
        rebuffer_sum, media_sum, bitrate_sum = sums[:, 0], sums[:, 1], sums[:, 2]
        rates = np.divide(
            rebuffer_sum, media_sum, out=np.zeros(n_kept), where=media_sum > 0
        )
        avg_bitrate = np.divide(
            bitrate_sum, counts, out=np.zeros(n_kept), where=counts > 0
        )
        # integer frame totals are exact in f8 (< 2**53), so any order works
        total_f = np.bincount(block.jcode, weights=block.total_frames, minlength=n_kept)
        dropped_f = np.bincount(block.jcode, weights=block.dropped_frames, minlength=n_kept)
        dropped_pct = np.divide(
            100.0 * dropped_f, total_f, out=np.zeros(n_kept), where=total_f != 0
        )
        nonempty = counts > 0
        first_rows = starts[nonempty]
        first_ids = block.chunk_id[first_rows]
        startups = block.download_ms[first_rows[first_ids == 0]]
        if len(startups):
            self._startups.append(startups)
        self._rates.append(rates)
        self._bitrates.append(avg_bitrate)
        self._dropped.append(dropped_pct)
        self._chunks.append(counts)

    def result(self) -> Dict[str, float]:
        if self.n == 0:
            return {"n_sessions": 0}
        startups = (
            np.concatenate(self._startups) if self._startups else np.empty(0, dtype=np.float64)
        )
        rates = np.concatenate(self._rates)
        bitrates = np.concatenate(self._bitrates)
        dropped = np.concatenate(self._dropped)
        chunks = np.concatenate(self._chunks)
        return {
            "n_sessions": self.n,
            "median_startup_ms": float(np.median(startups)) if len(startups) else float("nan"),
            "p90_startup_ms": (
                float(np.percentile(startups, 90)) if len(startups) else float("nan")
            ),
            "rebuffer_session_fraction": float(np.mean(rates > 0)),
            "mean_rebuffer_rate_pct": float(np.mean(100.0 * rates)),
            "median_bitrate_kbps": float(np.median(bitrates)),
            "mean_dropped_frame_pct": float(np.mean(dropped)),
            "median_session_chunks": float(np.median(chunks)),
        }


class _LocalizationState:
    """Blockwise twin of ``streaming.LocalizationAccumulator``."""

    def __init__(self) -> None:
        self._counts = np.zeros(len(_BOTTLENECKS), dtype=np.int64)
        self._total = 0

    def update(self, block: "_JoinedBlock") -> None:
        self._counts += np.bincount(block.verdict, minlength=len(_BOTTLENECKS))
        self._total += len(block.verdict)

    def result(self) -> Dict[str, float]:
        if self._total == 0:
            return {}
        return {
            b.value: int(self._counts[i]) / self._total
            for i, b in enumerate(_BOTTLENECKS)
        }


class _LabelMeta:
    """Parsed, cached view of one distinct ``fault_labels`` byte string."""

    __slots__ = (
        "classes",
        "known",
        "categories",
        "labeled",
        "spurious",
        "expected_codes",
    )

    def __init__(self, raw: bytes) -> None:
        pairs = parse_fault_labels(raw.decode("utf-8"))
        self.classes = sorted({fault_class for fault_class, _ in pairs})
        self.labeled = bool(self.classes)
        self.known = [fc for fc in self.classes if fc in EXPECTED_BOTTLENECK]
        self.categories = self.classes or ["none"]
        self.expected_codes = {fc: frozenset(_EXPECTED_CODES[fc]) for fc in self.known}
        layer_codes = frozenset(
            code for fc in self.known for code in _EXPECTED_CODES[fc]
        )
        self.spurious = frozenset(range(1, len(_BOTTLENECKS))) - layer_codes


class _FaultScoreState:
    """Blockwise twin of ``streaming.FaultScoreAccumulator``.

    The only order-dependent part of the record path is the
    false-positive rule: a spurious verdict increments every class *that
    already exists*.  Global chunk positions let us replay that exactly —
    class ``c`` collects a false positive from each spurious event with a
    matching code at position >= the class's first occurrence (the
    creating chunk itself can never be spurious *for its own class*:
    carrying label ``c`` puts ``expected(c)`` inside its expected-layer
    union).  Dict insertion orders are reconstructed from first-occurrence
    positions the same way.
    """

    def __init__(self) -> None:
        self.n_chunks = 0
        self.n_labeled = 0
        self.n_unscored = 0
        self._offset = 0
        self._meta_cache: Dict[bytes, _LabelMeta] = {}
        self._cat_first: Dict[str, int] = {}
        self._catv_count: Dict[Tuple[str, int], int] = {}
        self._catv_first: Dict[Tuple[str, int], int] = {}
        self._class_first: Dict[str, int] = {}
        self._tp: Dict[str, int] = {}
        self._fn: Dict[str, int] = {}
        self._spurious: Dict[int, List[np.ndarray]] = {
            code: [] for code in range(1, len(_BOTTLENECKS))
        }

    def update(self, block: "_JoinedBlock") -> None:
        n = len(block.verdict)
        self.n_chunks += n
        has_truth = block.has_truth
        n_truth = int(has_truth.sum())
        self.n_unscored += n - n_truth
        if n_truth == 0:
            self._offset += n
            return
        pos = self._offset + np.flatnonzero(has_truth)
        verdicts = block.verdict[has_truth]
        labels = block.fault_labels[has_truth]
        unique_labels, first_idx, inverse, label_counts = np.unique(
            labels, return_index=True, return_inverse=True, return_counts=True
        )
        metas = []
        for raw in unique_labels:
            raw_b = bytes(raw)
            meta = self._meta_cache.get(raw_b)
            if meta is None:
                meta = self._meta_cache[raw_b] = _LabelMeta(raw_b)
            metas.append(meta)
        label_first_pos = pos[first_idx]
        for i, meta in enumerate(metas):
            if meta.labeled:
                self.n_labeled += int(label_counts[i])
            first = int(label_first_pos[i])
            for category in meta.categories:
                prev = self._cat_first.get(category)
                if prev is None or first < prev:
                    self._cat_first[category] = first
            for fault_class in meta.known:
                prev = self._class_first.get(fault_class)
                if prev is None or first < prev:
                    self._class_first[fault_class] = first
        # one pass over the distinct (label, verdict) pairs covers the
        # confusion matrix and the TP/FN tallies
        n_codes = len(_BOTTLENECKS)
        fused = inverse.astype(np.int64) * n_codes + verdicts
        fused_u, fused_first, fused_counts = np.unique(
            fused, return_index=True, return_counts=True
        )
        fused_first_pos = pos[fused_first]
        for f, first_p, count in zip(fused_u, fused_first_pos, fused_counts):
            label_i = int(f) // n_codes
            code = int(f) % n_codes
            count = int(count)
            first_p = int(first_p)
            meta = metas[label_i]
            for category in meta.categories:
                key = (category, code)
                self._catv_count[key] = self._catv_count.get(key, 0) + count
                prev = self._catv_first.get(key)
                if prev is None or first_p < prev:
                    self._catv_first[key] = first_p
            for fault_class in meta.known:
                if code in meta.expected_codes[fault_class]:
                    self._tp[fault_class] = self._tp.get(fault_class, 0) + count
                else:
                    self._fn[fault_class] = self._fn.get(fault_class, 0) + count
        # spurious-event positions, per verdict code (ascending: blocks
        # arrive in order and pos is ascending within a block)
        spurious_table = np.zeros((len(unique_labels), n_codes), dtype=bool)
        for i, meta in enumerate(metas):
            for code in meta.spurious:
                spurious_table[i, code] = True
        row_spurious = spurious_table[inverse, verdicts]
        if row_spurious.any():
            for code in range(1, n_codes):
                sel = row_spurious & (verdicts == code)
                if sel.any():
                    self._spurious[code].append(pos[sel])
        self._offset += n

    def result(self) -> FaultScoreReport:
        report = FaultScoreReport()
        report.n_chunks = self.n_chunks
        report.n_labeled = self.n_labeled
        report.n_unscored = self.n_unscored
        spurious = {
            code: (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
            for code, chunks in self._spurious.items()
        }
        for fault_class in sorted(
            self._class_first, key=lambda fc: (self._class_first[fc], fc)
        ):
            first = self._class_first[fault_class]
            false_positives = 0
            for code in _EXPECTED_CODES[fault_class]:
                arr = spurious[code]
                false_positives += len(arr) - int(np.searchsorted(arr, first, side="left"))
            report.classes[fault_class] = ClassScore(
                fault_class,
                tuple(b.value for b in EXPECTED_BOTTLENECK[fault_class]),
                true_positives=self._tp.get(fault_class, 0),
                false_negatives=self._fn.get(fault_class, 0),
                false_positives=false_positives,
            )
        for category in sorted(
            self._cat_first, key=lambda c: (self._cat_first[c], c)
        ):
            counter: Counter = Counter()
            codes = [
                code
                for (cat, code) in self._catv_count
                if cat == category
            ]
            codes.sort(key=lambda code: self._catv_first[(category, code)])
            for code in codes:
                counter[_BOTTLENECKS[code].value] = self._catv_count[(category, code)]
            report.confusion[category] = counter
        return report


# ---------------------------------------------------------------------------
# the blockwise join + chunk math


class _JoinedBlock:
    """One session-aligned block after the player<->CDN join.

    Field arrays are aligned with the joined chunk rows (canonical order:
    session, then chunk id, then original row order for duplicates —
    exactly the order ``iter_joined_sessions`` yields chunks in).
    """

    __slots__ = (
        "n_kept",
        "jcode",
        "counts",
        "starts",
        "chunk_id",
        "rebuffer_ms",
        "chunk_duration_ms",
        "bitrate_kbps",
        "dropped_frames",
        "total_frames",
        "download_ms",
        "verdict",
        "has_truth",
        "fault_labels",
    )


def _compute_block(
    plan: _BlockPlan,
    index: int,
    want_cascade: bool,
    want_truth: bool,
) -> Optional[_JoinedBlock]:
    ps = plan.block("player_sessions", index)
    cs = plan.block("cdn_sessions", index)
    ps_sids = np.unique(ps["session_id"])
    cs_sids = np.unique(cs["session_id"])
    kept = ps_sids[np.isin(ps_sids, cs_sids, assume_unique=True)]
    n_kept = len(kept)
    if n_kept == 0:
        return None
    pc, pc_code = _member_codes(kept, plan.block("player_chunks", index))
    cc, cc_code = _member_codes(kept, plan.block("cdn_chunks", index))
    loaded = [pc, cc]
    if want_cascade:
        tm, tm_code = _member_codes(kept, plan.block("tcp_snapshots", index))
        loaded.append(tm)
    if want_truth:
        gt, gt_code = _member_codes(kept, plan.block("ground_truth", index))
        loaded.append(gt)
    max_id = 0
    for arr in loaded:
        if len(arr):
            ids = arr["chunk_id"]
            low = int(ids.min())
            if low < 0:
                raise ValueError("columnar analysis requires non-negative chunk ids")
            max_id = max(max_id, int(ids.max()))
    fuse = np.int64(max_id + 1)

    pkey = pc_code * fuse + pc["chunk_id"]
    ckey = cc_code * fuse + cc["chunk_id"]
    matched, j = _last_wins_match(ckey, pkey)
    joined = pc[matched]
    jcode = pc_code[matched]
    jkey = pkey[matched]
    cdn = cc[j[matched]]
    n = len(joined)

    block = _JoinedBlock()
    block.n_kept = n_kept
    block.jcode = jcode
    counts = np.bincount(jcode, minlength=n_kept)
    block.counts = counts
    block.starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
    )
    block.chunk_id = np.ascontiguousarray(joined["chunk_id"])
    block.rebuffer_ms = np.ascontiguousarray(joined["rebuffer_ms"])
    block.chunk_duration_ms = np.ascontiguousarray(joined["chunk_duration_ms"])
    block.bitrate_kbps = np.ascontiguousarray(joined["bitrate_kbps"])
    block.dropped_frames = np.ascontiguousarray(joined["dropped_frames"])
    block.total_frames = np.ascontiguousarray(joined["total_frames"])
    dfb = np.ascontiguousarray(joined["dfb_ms"])
    dlb = np.ascontiguousarray(joined["dlb_ms"])
    block.download_ms = dfb + dlb
    if not want_cascade:
        block.verdict = np.zeros(n, dtype=np.int64)
        block.has_truth = np.zeros(n, dtype=bool)
        block.fault_labels = np.zeros(n, dtype=COLUMN_SCHEMAS["ground_truth"].dtype["fault_labels"])
        return block

    # -- per-chunk TCP aggregates (keyed by distinct (session, chunk)) ------
    ukeys, uinv = np.unique(jkey, return_inverse=True)
    nu = len(ukeys)
    tkey = tm_code * fuse + tm["chunk_id"]
    t_lo = np.searchsorted(tkey, ukeys, side="left")
    t_hi = np.searchsorted(tkey, ukeys, side="right")
    has_tcp_u = t_hi > t_lo
    if len(tm):
        last_i = np.maximum(t_hi - 1, 0)
        last_srtt_u = np.where(has_tcp_u, tm["srtt_ms"][last_i], 0.0)
        last_cwnd_u = np.where(has_tcp_u, tm["cwnd_segments"][last_i], 0)
        last_mss_u = np.where(has_tcp_u, tm["mss"][last_i], 0)
    else:
        last_srtt_u = np.zeros(nu)
        last_cwnd_u = np.zeros(nu, dtype=np.int64)
        last_mss_u = np.zeros(nu, dtype=np.int64)
    srtt_min_u = np.full(nu, np.inf)
    rto_u = np.zeros(nu)
    has_pos_u = np.zeros(nu, dtype=bool)
    if len(tm) and nu:
        gi = np.minimum(np.searchsorted(ukeys, tkey), nu - 1)
        valid = ukeys[gi] == tkey
        srtt_all = tm["srtt_ms"]
        sub = valid & (srtt_all > 0)
        if sub.any():
            groups = gi[sub]
            srtt_s = srtt_all[sub]
            rto_s = RTO_FLOOR_MS + srtt_s + 4.0 * tm["rttvar_ms"][sub]
            group_u, group_start = np.unique(groups, return_index=True)
            srtt_min_u[group_u] = np.minimum.reduceat(srtt_s, group_start)
            rto_u[group_u] = np.maximum.reduceat(rto_s, group_start)
            has_pos_u[group_u] = True

    has_tcp = has_tcp_u[uinv]
    last_srtt = last_srtt_u[uinv]
    last_cwnd = last_cwnd_u[uinv]
    last_mss = last_mss_u[uinv]
    srtt_min = srtt_min_u[uinv]
    rto = rto_u[uinv]
    has_pos = has_pos_u[uinv]

    # -- elementwise chunk math (bit-exact record-path associations) --------
    d_wait = np.ascontiguousarray(cdn["d_wait_ms"])
    d_open = np.ascontiguousarray(cdn["d_open_ms"])
    d_read = np.ascontiguousarray(cdn["d_read_ms"])
    d_be = np.ascontiguousarray(cdn["d_be_ms"])
    chunk_bytes = np.ascontiguousarray(cdn["chunk_bytes"])
    d_cdn = d_wait + d_open + d_read
    server_ms = d_cdn + d_be
    total_dl = block.download_ms
    score = np.divide(
        block.chunk_duration_ms, total_dl, out=np.full(n, np.inf), where=total_dl > 0
    )
    latency_share = np.divide(dfb, total_dl, out=np.zeros(n), where=total_dl > 0)
    throughput_share = 1.0 - latency_share
    rtt0 = np.maximum(dfb - server_ms, 0.1)
    baseline = np.minimum(rtt0, srtt_min)
    ds_bound = np.where(
        has_pos, np.maximum(dfb - d_cdn - d_be - rto, 0.0), 0.0
    )
    drops = np.divide(
        block.dropped_frames,
        block.total_frames,
        out=np.zeros(n),
        where=block.total_frames > 0,
    )
    tp_inst = np.divide(
        chunk_bytes * 8.0, dlb, out=np.full(n, np.inf), where=dlb > 0
    )
    connection_tp = np.divide(
        (last_cwnd * last_mss) * 8.0, last_srtt, out=np.zeros(n), where=last_srtt > 0
    )
    transient_sig = (
        has_tcp & (last_srtt > 0) & (connection_tp > 0) & (tp_inst > 2.5 * connection_tp)
    )

    # -- Eq. 4 per-session outlier statistics -------------------------------
    qualified = has_tcp & (last_srtt > 0)
    idx_q = np.flatnonzero(qualified)
    transient_flag = np.zeros(n, dtype=bool)
    if len(idx_q):
        qcode = jcode[idx_q]
        _, q_inv, q_counts = np.unique(qcode, return_inverse=True, return_counts=True)
        q_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(q_counts)[:-1]]
        )
        features = np.stack(
            [
                dfb[idx_q],
                tp_inst[idx_q],
                last_srtt[idx_q],
                server_ms[idx_q],
                last_cwnd[idx_q].astype(np.float64),
            ],
            axis=1,
        )
        # inf TP_inst rows propagate nan through mean/std exactly like the
        # record path; nan comparisons are False either way
        with np.errstate(invalid="ignore"):
            mu = _grouped_seq_sum(features, q_starts, q_counts) / q_counts[:, None]
            diff = features - mu[q_inv]
            sigma = np.sqrt(
                _grouped_seq_sum(diff * diff, q_starts, q_counts) / q_counts[:, None]
            )
            mu_r = mu[q_inv]
            sg_r = sigma[q_inv]
            eligible = q_counts[q_inv] >= _MIN_EQ4_CHUNKS
            high_dfb = (features[:, 0] > mu_r[:, 0] + 2.0 * sg_r[:, 0]) & (sg_r[:, 0] > 0)
            high_tp = (features[:, 1] > mu_r[:, 1] + 2.0 * sg_r[:, 1]) & (sg_r[:, 1] > 0)
            normal_net = (
                (features[:, 2] < mu_r[:, 2] + sg_r[:, 2])
                & (features[:, 3] < mu_r[:, 3] + sg_r[:, 3])
                & (features[:, 4] < mu_r[:, 4] + sg_r[:, 4])
            )
        flagged = eligible & high_dfb & high_tp & normal_net
        flagged_keys = np.unique(jkey[idx_q][flagged])
        if len(flagged_keys):
            # the Eq. 4 flag set holds chunk *ids*, so every joined row
            # sharing a flagged (session, chunk) key is flagged
            fi = np.minimum(np.searchsorted(flagged_keys, jkey), len(flagged_keys) - 1)
            transient_flag = flagged_keys[fi] == jkey

    # -- the attribution cascade, as one np.select --------------------------
    with np.errstate(invalid="ignore"):
        c_transient = transient_flag | transient_sig
        c_ds_bound = (ds_bound > np.maximum(server_ms, baseline)) & (ds_bound > 100.0)
        c_server = (server_ms > baseline) & (server_ms > 40.0)
        c_bad = score < BAD_SCORE
        c_bad_tp = throughput_share >= 0.5
        c_tail = (baseline > TAIL_RTT_MS) & (
            np.ascontiguousarray(joined["rebuffer_count"]) > 0
        )
        c_render = (
            np.ascontiguousarray(joined["visible"])
            & ~np.ascontiguousarray(joined["hw_rendered"])
            & (drops > BAD_RENDER_FRACTION)
            & (score >= 1.5)
        )
    cds = _CODE_OF[Bottleneck.CLIENT_DOWNLOAD_STACK]
    block.verdict = np.select(
        [c_transient, c_ds_bound, c_server, c_bad & c_bad_tp, c_bad, c_tail, c_render],
        [
            cds,
            cds,
            _CODE_OF[Bottleneck.SERVER],
            _CODE_OF[Bottleneck.NETWORK_THROUGHPUT],
            _CODE_OF[Bottleneck.NETWORK_LATENCY],
            _CODE_OF[Bottleneck.NETWORK_LATENCY],
            _CODE_OF[Bottleneck.CLIENT_RENDERING],
        ],
        default=_CODE_OF[Bottleneck.NONE],
    ).astype(np.int64)

    # -- ground truth (last-wins, like the record path's dict rebuild) ------
    if want_truth:
        gkey = gt_code * fuse + gt["chunk_id"]
        has_truth, jt = _last_wins_match(gkey, jkey)
        labels = np.zeros(n, dtype=COLUMN_SCHEMAS["ground_truth"].dtype["fault_labels"])
        if has_truth.any():
            labels[has_truth] = gt["fault_labels"][jt[has_truth]]
        block.has_truth = has_truth
        block.fault_labels = labels
    else:
        block.has_truth = np.zeros(n, dtype=bool)
        block.fault_labels = np.zeros(
            n, dtype=COLUMN_SCHEMAS["ground_truth"].dtype["fault_labels"]
        )
    return block


# ---------------------------------------------------------------------------
# driver


_STATE_FACTORIES = {
    "qoe": _QoeState,
    "localization": _LocalizationState,
    "faultscore": _FaultScoreState,
}


def analyze_dataset(
    dataset: Any,
    analyses: Iterable[str] = ANALYSIS_KINDS,
    metrics: Optional[Any] = None,
) -> Dict[str, Any]:
    """One vectorized blockwise pass computing *analyses* over *dataset*.

    Returns ``{name: result}`` with each result bit-identical to its
    record-path spelling.  QoE-only passes skip loading TCP and
    ground-truth columns entirely.
    """
    from .. import obs

    requested = tuple(analyses)
    for name in requested:
        if name not in ANALYSIS_KINDS:
            raise ValueError(
                f"unknown analysis {name!r}; choose from {ANALYSIS_KINDS}"
            )
    registry = metrics if metrics is not None else obs.MetricsRegistry()
    blocks_total = registry.counter("analysis.blocks_total")
    sessions_total = registry.counter("analysis.sessions_total")
    chunks_total = registry.counter("analysis.chunks_total")

    want_truth = "faultscore" in requested
    want_cascade = want_truth or "localization" in requested
    kinds = ["player_sessions", "cdn_sessions", "player_chunks", "cdn_chunks"]
    if want_cascade:
        kinds.append("tcp_snapshots")
    if want_truth:
        kinds.append("ground_truth")

    states = {name: _STATE_FACTORIES[name]() for name in requested}
    with registry.span("analysis.read"):
        runs = _dataset_runs(dataset, kinds)
        plan = _BlockPlan(runs, kinds)
        for i in range(plan.n_blocks):
            with registry.span("analysis.block"):
                block = _compute_block(plan, i, want_cascade, want_truth)
                blocks_total.inc()
                if block is None:
                    continue
                sessions_total.inc(block.n_kept)
                chunks_total.inc(len(block.verdict))
                for state in states.values():
                    state.update(block)
    if metrics is None:
        obs.publish_last_run(registry)
    return {name: states[name].result() for name in requested}
