"""One-pass streaming analyses: accumulate per session, never hold the fleet.

The classic analysis entry points (:func:`repro.core.qoe.summarize`,
:func:`repro.core.localization.diagnose_dataset`,
:func:`repro.core.faultscore.score_fault_localization`) used to build
``dataset.sessions()`` — every joined :class:`SessionView` in one list —
before aggregating.  At million-session scale that list *is* the memory
problem, and a :class:`~repro.telemetry.spill.SpilledDataset` pays a full
disk pass per analysis on top.

This module splits each analysis into an **accumulator**: ``update(view)``
folds one session in, ``result()`` emits the same value the classic
function returns.  :func:`consume` drives any number of accumulators down
a single ``iter_sessions()`` pass, so one disk scan feeds every analysis
and peak memory is one session view plus the accumulators' own state
(per-session scalars for the QoE quantiles — ~8 bytes/session — and a
handful of counters for the rest; the RSS budget model in
docs/TELEMETRY.md counts these terms).

The classic functions now delegate here, so both spellings stay
byte-equivalent by construction::

    qoe.summarize(ds) == consume(ds, QoeAccumulator())[0]
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List

import numpy as np

from ..telemetry.dataset import SessionView
from .faultscore import (
    EXPECTED_BOTTLENECK,
    ClassScore,
    FaultScoreReport,
    parse_fault_labels,
)
from .localization import Bottleneck, diagnose_session
from .qoe import session_qoe

__all__ = [
    "QoeAccumulator",
    "LocalizationAccumulator",
    "FaultScoreAccumulator",
    "consume",
]


class QoeAccumulator:
    """Streaming :func:`repro.core.qoe.summarize`.

    Keeps one scalar per session per metric (quantiles need the values),
    never the session views or chunk records themselves.
    """

    def __init__(self) -> None:
        self._startups: List[float] = []
        self._rebuffer_rates: List[float] = []
        self._bitrates: List[float] = []
        self._dropped_pcts: List[float] = []
        self._chunk_counts: List[int] = []

    def update(self, view: SessionView) -> None:
        q = session_qoe(view)
        if q.startup_ms is not None:
            self._startups.append(q.startup_ms)
        self._rebuffer_rates.append(q.rebuffer_rate)
        self._bitrates.append(q.avg_bitrate_kbps)
        self._dropped_pcts.append(q.dropped_frame_pct)
        self._chunk_counts.append(q.n_chunks)

    def result(self) -> Dict[str, float]:
        n = len(self._rebuffer_rates)
        if n == 0:
            return {"n_sessions": 0}
        startups = self._startups
        return {
            "n_sessions": n,
            "median_startup_ms": float(np.median(startups)) if startups else float("nan"),
            "p90_startup_ms": (
                float(np.percentile(startups, 90)) if startups else float("nan")
            ),
            "rebuffer_session_fraction": float(
                np.mean([rate > 0 for rate in self._rebuffer_rates])
            ),
            "mean_rebuffer_rate_pct": float(
                np.mean([100.0 * rate for rate in self._rebuffer_rates])
            ),
            "median_bitrate_kbps": float(np.median(self._bitrates)),
            "mean_dropped_frame_pct": float(np.mean(self._dropped_pcts)),
            "median_session_chunks": float(np.median(self._chunk_counts)),
        }


class LocalizationAccumulator:
    """Streaming :func:`repro.core.localization.diagnose_dataset`.

    State is one counter per bottleneck location — O(1) in the fleet size.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._total = 0

    def update(self, view: SessionView, diagnosis=None) -> None:
        """Fold one session; *diagnosis* reuses a precomputed
        :func:`diagnose_session` result (the live service diagnoses each
        view once and shares it across consumers)."""
        if diagnosis is None:
            diagnosis = diagnose_session(view)
        for attribution in diagnosis.attributions:
            self._counts[attribution.bottleneck] += 1
            self._total += 1

    def result(self) -> Dict[str, float]:
        if self._total == 0:
            return {}
        return {
            bottleneck.value: self._counts.get(bottleneck, 0) / self._total
            for bottleneck in Bottleneck
        }


class FaultScoreAccumulator:
    """Streaming :func:`repro.core.faultscore.score_fault_localization`.

    State is the :class:`FaultScoreReport` itself (per-class tallies and
    the confusion matrix) — O(fault classes), not O(sessions).
    """

    def __init__(self) -> None:
        self.report = FaultScoreReport()

    def update(self, view: SessionView, diagnosis=None) -> None:
        report = self.report
        if diagnosis is None:
            diagnosis = diagnose_session(view)
        for chunk, attribution in zip(view.chunks, diagnosis.attributions):
            report.n_chunks += 1
            if chunk.truth is None:
                report.n_unscored += 1
                continue
            predicted = attribution.bottleneck
            labels = parse_fault_labels(chunk.truth.fault_labels)
            truth_classes = sorted({fault_class for fault_class, _ in labels})
            if truth_classes:
                report.n_labeled += 1
            # confusion matrix: one row per truth class the chunk carries
            # (or the "none" row for un-faulted chunks)
            for category in truth_classes or ["none"]:
                report.confusion.setdefault(category, Counter())[predicted.value] += 1
            # the set of verdicts the chunk's faults are expected to surface as
            expected_layers = {
                verdict
                for c in truth_classes
                for verdict in EXPECTED_BOTTLENECK.get(c, ())
            }
            for fault_class in truth_classes:
                expected = EXPECTED_BOTTLENECK.get(fault_class)
                if expected is None:
                    continue
                score = report.classes.setdefault(
                    fault_class,
                    ClassScore(fault_class, tuple(v.value for v in expected)),
                )
                if predicted in expected:
                    score.true_positives += 1
                else:
                    score.false_negatives += 1
            # precision: a verdict naming a layer no active fault maps to is
            # a false positive for every class expecting that layer
            if predicted is not Bottleneck.NONE and predicted not in expected_layers:
                for score in report.classes.values():
                    if predicted.value in score.expected:
                        score.false_positives += 1

    def result(self):
        return self.report


def consume(dataset, *accumulators) -> List[Any]:
    """Drive *accumulators* down one ``iter_sessions()`` pass of *dataset*.

    One pass means one disk scan for a spilled dataset, however many
    analyses ride along.  Returns each accumulator's ``result()`` in
    argument order.
    """
    for view in dataset.iter_sessions():
        for accumulator in accumulators:
            accumulator.update(view)
    return [accumulator.result() for accumulator in accumulators]
