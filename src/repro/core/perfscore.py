"""Chunk performance score — the paper's Eq. 2 and the latency/throughput split.

Eq. 2:  perf_score = τ / (D_FB + D_LB)

A score below 1 means downloading the chunk took longer than the media it
carries — the playback buffer shrank.  §4.2-4 splits a chunk's download
time into a latency share D_FB/(D_FB+D_LB) and a throughput share
D_LB/(D_FB+D_LB) and finds that chunks with bad scores are predominantly
throughput-limited (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..telemetry.dataset import JoinedChunk
from ..telemetry.records import PlayerChunkRecord

__all__ = [
    "perf_score",
    "latency_share",
    "throughput_share",
    "split_by_score",
]


def perf_score(chunk: PlayerChunkRecord) -> float:
    """Eq. 2: chunk duration over total download time."""
    total = chunk.dfb_ms + chunk.dlb_ms
    if total <= 0:
        return float("inf")
    return chunk.chunk_duration_ms / total


def latency_share(chunk: PlayerChunkRecord) -> float:
    """D_FB share of the chunk's download time (Fig. 16(a))."""
    total = chunk.dfb_ms + chunk.dlb_ms
    if total <= 0:
        return 0.0
    return chunk.dfb_ms / total


def throughput_share(chunk: PlayerChunkRecord) -> float:
    """D_LB share of the chunk's download time."""
    return 1.0 - latency_share(chunk)


def split_by_score(
    chunks: Iterable[JoinedChunk], threshold: float = 1.0
) -> Tuple[List[JoinedChunk], List[JoinedChunk]]:
    """Partition chunks into (good, bad) by perf score vs *threshold*."""
    good: List[JoinedChunk] = []
    bad: List[JoinedChunk] = []
    for chunk in chunks:
        if perf_score(chunk.player) >= threshold:
            good.append(chunk)
        else:
            bad.append(chunk)
    return good, bad
