"""Wide-area network path model for one video session.

A :class:`NetworkPath` is instantiated per session from the client's prefix
(stable properties: geography, access latency, enterprise path inflation,
jitter shape) and the chosen CDN PoP.  It produces:

* time-varying round-trip samples — a baseline plus *congestion episodes*,
  a two-state regime process.  Episodes are what make CV(SRTT) exceed 1 for
  enterprise sessions (Table 4): smooth i.i.d. jitter would be averaged
  away by TCP's EWMA, but multi-second latency excursions survive it.
* a bottleneck bandwidth (min of access link and path capacity) used by the
  TCP model for self-loading/queueing and buffer-overflow loss.
* a random per-segment loss rate (§4.2-3: ~40% of sessions see no loss at
  all; the rest mostly < 10% retransmission rates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # typing only: net must stay importable without faults
    from ..faults.injector import PathFaultState

from ..workload.clients import Prefix
from ..workload.geo import GeoPoint, distance_km, propagation_rtt_ms

__all__ = ["NetworkPath", "build_session_path"]


@dataclass
class NetworkPath:
    """Time-varying path between one client and one CDN server."""

    base_rtt_ms: float
    bottleneck_kbps: float
    loss_rate: float
    jitter_sigma: float
    rng: np.random.Generator = field(repr=False)
    #: mean time between congestion-episode onsets (ms)
    episode_gap_mean_ms: float = 120_000.0
    #: mean episode duration (ms)
    episode_duration_mean_ms: float = 6_000.0
    #: network buffer at the bottleneck, as a multiple of the BDP
    buffer_bdp_multiple: float = 1.5
    #: probability that an episode is a *throughput collapse* — severe
    #: cross-traffic or access-link trouble that crushes the available
    #: bandwidth for seconds (the rebuffering-producing events)
    collapse_probability: float = 0.15
    #: fault-injection overlay (docs/FAULTS.md): a deterministic function
    #: of sim time returning the active network-fault state (or None).
    #: Installed per session by the driver when a FaultSpec targets this
    #: client's path; it consumes no RNG, so an un-faulted run's noise
    #: streams are untouched.
    fault_probe: Optional[Callable[[float], Optional["PathFaultState"]]] = field(
        default=None, repr=False, compare=False
    )

    _episode_until_ms: float = field(default=-1.0, init=False, repr=False)
    _episode_rtt_mult: float = field(default=1.0, init=False, repr=False)
    _episode_bw_div: float = field(default=1.0, init=False, repr=False)
    _next_episode_ms: float = field(default=0.0, init=False, repr=False)
    _episodes_initialized: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if self.bottleneck_kbps <= 0:
            raise ValueError("bottleneck_kbps must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        # Hot-path cache: bdp/buffer depend only on init-time fields, and the
        # TCP model reads their sum once per round.  Computed with the exact
        # float expression of the properties so comparisons are unchanged.
        bdp = self.bottleneck_kbps * self.base_rtt_ms / 8.0
        self._capacity_bytes = bdp + self.buffer_bdp_multiple * bdp

    # -- congestion-episode regime process ---------------------------------

    def _advance_episodes(self, now_ms: float) -> None:
        """Advance the two-state (normal/congested) regime to *now_ms*."""
        if not self._episodes_initialized:
            self._next_episode_ms = float(
                self.rng.exponential(self.episode_gap_mean_ms)
            )
            self._episodes_initialized = True
        while now_ms >= self._next_episode_ms:
            onset = self._next_episode_ms
            duration = float(self.rng.exponential(self.episode_duration_mean_ms))
            kind = self.rng.random()
            if kind < self.collapse_probability:
                # Throughput collapse: bandwidth craters for a long, heavy-
                # tailed interval — the events behind deep stalls.  A
                # collapse outlasting the playback buffer is what turns
                # into rebuffering at the player.
                rtt_mult = float(self.rng.uniform(1.5, 3.0))
                bw_div = float(self.rng.uniform(10.0, 80.0))
                duration = float(self.rng.lognormal(np.log(15_000.0) - 0.5, 1.0))
            elif kind < self.collapse_probability + 0.30:
                # Microburst: a short, violent latency spike (a colleague's
                # upload filling the VPN queue, a wifi retrain).  Brief
                # coverage with a huge multiplier is precisely what pushes
                # a session's CV(SRTT) past 1 — the Table 4 signature.
                rtt_mult = 1.0 + float(self.rng.uniform(8.0, 40.0)) * self.jitter_sigma
                bw_div = 2.0
                duration = float(self.rng.uniform(1_000.0, 4_000.0))
            else:
                # Ordinary congestion / bufferbloat: a standing queue adds
                # large latency but the bottleneck still drains at line
                # rate, so bandwidth is only mildly reduced.  Magnitude
                # scales with the prefix's jitter shape (residential sigma
                # ~0.1 -> mild ~1.5x; enterprise ~0.8 -> 5-30x hairpin/VPN
                # spikes, the Table 4 signature).
                extra = float(self.rng.exponential(8.0 * self.jitter_sigma))
                rtt_mult = 1.0 + extra
                bw_div = min(rtt_mult, 2.0)
            if onset + duration > now_ms:
                self._episode_until_ms = onset + duration
                self._episode_rtt_mult = rtt_mult
                self._episode_bw_div = bw_div
            self._next_episode_ms = onset + duration + float(
                self.rng.exponential(self.episode_gap_mean_ms)
            )

    def _episode_state(self, now_ms: float) -> "tuple[float, float]":
        """(rtt multiplier, bandwidth divisor) in effect at *now_ms*."""
        self._advance_episodes(now_ms)
        if now_ms < self._episode_until_ms:
            return self._episode_rtt_mult, self._episode_bw_div
        return 1.0, 1.0

    def congestion_multiplier(self, now_ms: float) -> float:
        """Current latency inflation from the episode process (>= 1)."""
        return self._episode_state(now_ms)[0]

    def _fault_state(self, now_ms: float) -> Optional["PathFaultState"]:
        """Injected fault state at *now_ms* (None without a probe/epoch)."""
        if self.fault_probe is None:
            return None
        return self.fault_probe(now_ms)

    def current_bottleneck_kbps(self, now_ms: float) -> float:
        """Bandwidth available to us at *now_ms*.

        During a congestion episode the bottleneck queue is shared with
        cross traffic, so our share of the link shrinks.
        """
        bandwidth = self.bottleneck_kbps / self._episode_state(now_ms)[1]
        fault = self._fault_state(now_ms)
        if fault is not None:
            bandwidth /= fault.bw_div
        return bandwidth

    def episode_loss_boost(self, now_ms: float) -> float:
        """Extra per-segment loss probability during congestion episodes.

        Collapses (large bandwidth divisors) drop aggressively; bufferbloat
        episodes (latency-dominant) drop only occasionally off a full queue.
        """
        rtt_mult, bw_div = self._episode_state(now_ms)
        boost = 0.0
        if bw_div > 1.0:
            boost += 0.012 * (bw_div - 1.0)
        if rtt_mult > 1.0:
            boost += 0.003 * min(rtt_mult - 1.0, 5.0)
        return min(0.06, boost)

    def epoch_window(self, now_ms: float) -> "Tuple[float, float, float]":
        """(rtt multiplier, bandwidth divisor, valid-until ms) at *now_ms*.

        The returned state is constant until ``valid_until``: the end of the
        active episode, or the next episode's onset when the path is calm.
        This is the per-epoch cache the TCP fast path uses to advance many
        loss-free rounds without re-deriving episode state each round.  The
        window ignores the fault overlay — callers combining both must also
        consult :attr:`fault_probe` (the TCP fast path simply declines when
        a probe is installed).
        """
        self._advance_episodes(now_ms)
        if now_ms < self._episode_until_ms:
            return self._episode_rtt_mult, self._episode_bw_div, self._episode_until_ms
        return 1.0, 1.0, self._next_episode_ms

    def sample_round(
        self, now_ms: float, inflight_bytes: float
    ) -> "Tuple[float, float, float]":
        """One TCP round's (rtt sample, bottleneck kbps, segment loss prob).

        Value- and RNG-stream-identical to calling :meth:`sample_rtt`,
        :meth:`current_bottleneck_kbps` and :meth:`segment_loss_probability`
        at the same *now_ms*, but with a single episode-state advance and a
        single fault-probe evaluation instead of three of each — this is the
        consolidated query the TCP transfer loop issues once per round.
        """
        self._advance_episodes(now_ms)
        if now_ms < self._episode_until_ms:
            rtt_mult = self._episode_rtt_mult
            bw_div = self._episode_bw_div
        else:
            rtt_mult = 1.0
            bw_div = 1.0
        # exp(0.08 * z) consumes and transforms the stream exactly as
        # rng.lognormal(0.0, 0.08) does (one standard normal draw).
        noise = math.exp(0.08 * float(self.rng.standard_normal()))
        rtt = self.base_rtt_ms * rtt_mult * noise
        bandwidth = self.bottleneck_kbps / bw_div
        boost = 0.0
        if bw_div > 1.0:
            boost += 0.012 * (bw_div - 1.0)
        if rtt_mult > 1.0:
            boost += 0.003 * min(rtt_mult - 1.0, 5.0)
        base = self.loss_rate + min(0.06, boost)
        if self.fault_probe is not None:
            fault = self.fault_probe(now_ms)
            if fault is not None:
                rtt *= fault.rtt_mult
                bandwidth /= fault.bw_div
                base += fault.loss_add
        capacity = self._capacity_bytes
        if inflight_bytes <= capacity:
            loss_p = min(0.9, base)
        else:
            overflow_fraction = (inflight_bytes - capacity) / max(inflight_bytes, 1.0)
            loss_p = min(0.9, base + overflow_fraction)
        return rtt, bandwidth, loss_p

    # -- sampling -----------------------------------------------------------

    def sample_rtt(self, now_ms: float) -> float:
        """One propagation+queueing round-trip sample at absolute time *now_ms*.

        Does not include self-induced queueing from our own TCP transfer —
        the TCP model adds that on top (self-loading, §4.2-1's caveat about
        SRTT samples reflecting queueing delay).
        """
        multiplier = self.congestion_multiplier(now_ms)
        noise = float(self.rng.lognormal(0.0, 0.08))  # small measurement noise
        rtt = self.base_rtt_ms * multiplier * noise
        fault = self._fault_state(now_ms)
        if fault is not None:
            rtt *= fault.rtt_mult
        return rtt

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the baseline path, in bytes."""
        return self.bottleneck_kbps * self.base_rtt_ms / 8.0

    @property
    def buffer_bytes(self) -> float:
        """Bottleneck queue size in bytes (BDP multiple)."""
        return self.buffer_bdp_multiple * self.bdp_bytes

    def segment_loss_probability(self, inflight_bytes: float, now_ms: float = 0.0) -> float:
        """Per-segment loss probability given current bytes in flight.

        Random loss, plus episode loss (shared queue under pressure), plus
        congestion loss: once the window overruns the bottleneck buffer,
        the tail of each burst is dropped — this is the slow-start
        overshoot that concentrates losses in the first chunk (Fig. 15).
        """
        base = self.loss_rate + self.episode_loss_boost(now_ms)
        fault = self._fault_state(now_ms)
        if fault is not None:
            base += fault.loss_add
        capacity = self.bdp_bytes + self.buffer_bytes
        if inflight_bytes <= capacity:
            return min(0.9, base)
        overflow_fraction = (inflight_bytes - capacity) / max(inflight_bytes, 1.0)
        return min(0.9, base + overflow_fraction)


def build_session_path(
    prefix: Prefix,
    server_location: GeoPoint,
    bandwidth_kbps: float,
    rng: np.random.Generator,
    backbone_kbps: float = 1_000_000.0,
) -> NetworkPath:
    """Construct the session's path from prefix properties and server location."""
    dist = distance_km(prefix.geo, server_location)
    base_rtt = (
        propagation_rtt_ms(dist)
        + prefix.access_rtt_ms
        + prefix.path_inflation_ms
    )
    # A large share of sessions sees no random loss at all (§4.2-3: 40% of
    # sessions have zero retransmissions — some of the remainder's retx
    # come from self-induced overflow, so the random-loss share is lower).
    if rng.random() < 0.60:
        loss = 0.0
    else:
        loss = float(
            np.clip(rng.exponential(max(prefix.loss_rate_mean, 1e-5)), 0.0, 0.15)
        )
    bottleneck = max(500.0, min(bandwidth_kbps, backbone_kbps))
    # Enterprise episodes are more frequent as well as larger.
    gap_mean = 25_000.0 if prefix.is_enterprise else 150_000.0
    duration_mean = 15_000.0 if prefix.is_enterprise else 4_000.0
    # Bottleneck buffers vary from shallow (overflow-prone) to bloated.
    buffer_multiple = float(rng.uniform(1.5, 4.0))
    return NetworkPath(
        base_rtt_ms=base_rtt,
        bottleneck_kbps=bottleneck,
        loss_rate=loss,
        jitter_sigma=prefix.jitter_sigma,
        rng=rng,
        episode_gap_mean_ms=gap_mean,
        episode_duration_mean_ms=duration_mean,
        buffer_bdp_multiple=buffer_multiple,
    )
