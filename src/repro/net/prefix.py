"""IP prefix utilities for the /24 aggregation used throughout §4.2.

The analysis side never sees the simulator's :class:`~repro.workload.clients.Prefix`
objects — like the paper, it only sees client IP addresses in the beacons
and derives /24 prefixes from them.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Tuple

__all__ = ["prefix_of", "group_by_prefix", "is_valid_ipv4"]


def is_valid_ipv4(ip: str) -> bool:
    """True if *ip* parses as an IPv4 address."""
    try:
        ipaddress.IPv4Address(ip)
        return True
    except (ipaddress.AddressValueError, ValueError):
        return False


def prefix_of(ip: str) -> str:
    """Return the /24 prefix of an IPv4 address, e.g. ``10.1.2.3`` -> ``10.1.2.0/24``.

    Raises :class:`ValueError` for non-IPv4 input; callers filtering beacons
    should validate with :func:`is_valid_ipv4` first.
    """
    address = ipaddress.IPv4Address(ip)  # raises ValueError on bad input
    network = ipaddress.IPv4Network((int(address) & ~0xFF, 24))
    return str(network)


def group_by_prefix(items: Iterable[Tuple[str, object]]) -> Dict[str, List[object]]:
    """Group (client_ip, payload) pairs by the IP's /24 prefix."""
    groups: Dict[str, List[object]] = {}
    for ip, payload in items:
        groups.setdefault(prefix_of(ip), []).append(payload)
    return groups
