"""Round-based TCP sender model with kernel-style state variables.

The paper's server-side network view is the Linux ``tcp_info`` struct,
snapshotted every 500 ms: SRTT, RTT variance, congestion window, and
retransmission counters (§2.1).  This module models a TCP Reno-style sender
at *round* granularity — one window of segments per round trip — which is
the right fidelity for chunk-level analysis:

* slow start doubles the window each round until loss or ``ssthresh``;
  congestion avoidance adds one segment per round;
* losses are sampled per segment from the path model, which combines a
  random component with buffer-overflow loss when the window overruns the
  bottleneck (this produces the slow-start burst losses that concentrate
  retransmissions in a session's first chunk, Fig. 15);
* SRTT/RTTVAR follow RFC 6298 exactly, and the retransmission timeout uses
  the paper's footnote formula ``RTO = 200 ms + srtt + 4 * srttvar``;
* self-loading: the serialization time of each window at the bottleneck is
  added to the measured round-trip sample, so SRTT inflates when the
  window exceeds the BDP (§4.2-1's caveat).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .path import NetworkPath

__all__ = ["TcpStateSample", "ChunkTransfer", "TcpConnection", "DEFAULT_MSS"]

DEFAULT_MSS = 1460
#: Linux's minimum RTO contribution used in the paper's Eq. 5 bound.
RTO_FLOOR_MS = 200.0
#: Safety cap on the congestion window (segments): ~6 MB of in-flight data.
MAX_CWND_SEGMENTS = 4096

#: RFC 6298 EWMA gains iterated n times collapse to these closed-form
#: factors: after n per-ACK updates with a constant sample,
#: ``srtt_n = sample + (srtt_0 - sample) * 0.875**n`` and
#: ``rttvar_n = 0.75**n * rttvar_0 + 2 * (0.875**n - 0.75**n) * |srtt_0 - sample|``
#: (geometric sum of the decaying |srtt_k - sample| terms).  Convergence
#: saturates, so updates are capped at 16 iterations as before.
_OBSERVE_CAP = 16
_POW_SRTT = tuple(0.875**n for n in range(_OBSERVE_CAP + 1))
_POW_VAR = tuple(0.75**n for n in range(_OBSERVE_CAP + 1))

#: Fast-path guard: per-round RTT noise is exp(0.08 * z); a batch is sized
#: assuming noise <= exp(0.08 * 12) so that it cannot reach the next
#: congestion-episode boundary (P(z > 12) ~ 1.8e-33 — unreachable).
_NOISE_BOUND = math.exp(0.08 * 12.0)


@dataclass(frozen=True)
class TcpStateSample:
    """One snapshot of the sender's ``tcp_info``-visible state."""

    t_ms: float
    cwnd_segments: int
    srtt_ms: float
    rttvar_ms: float
    retx_total: int
    mss: int
    #: retransmission timeout at the sample (the paper's footnote-5
    #: formula, floored at 200 ms); 0.0 in legacy samples from before the
    #: field existed
    rto_ms: float = 0.0

    @property
    def throughput_kbps(self) -> float:
        """Eq. 3: the connection's throughput estimate MSS * CWND / SRTT."""
        if self.srtt_ms <= 0:
            return 0.0
        return self.cwnd_segments * self.mss * 8.0 / self.srtt_ms


@dataclass
class ChunkTransfer:
    """Outcome of transferring one chunk's bytes over the connection."""

    duration_ms: float
    segments_sent: int  # includes retransmissions
    segments_retx: int
    rounds: int
    min_rtt_ms: float
    samples: List[TcpStateSample] = field(default_factory=list)

    @property
    def retx_rate(self) -> float:
        """Retransmission rate: retransmitted / all segments sent."""
        if self.segments_sent == 0:
            return 0.0
        return self.segments_retx / self.segments_sent


class TcpConnection:
    """A persistent TCP connection carrying all chunks of one session."""

    def __init__(
        self,
        path: NetworkPath,
        rng: np.random.Generator,
        mss: int = DEFAULT_MSS,
        initial_cwnd: int = 10,
        initial_ssthresh: int = 512,
        snapshot_interval_ms: float = 500.0,
        restart_after_idle: bool = False,
        slow_start_growth: float = 2.0,
        max_window_segments: int = MAX_CWND_SEGMENTS,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        if initial_cwnd <= 0:
            raise ValueError("initial_cwnd must be positive")
        if slow_start_growth <= 1.0:
            raise ValueError("slow_start_growth must exceed 1.0")
        if max_window_segments <= 0:
            raise ValueError("max_window_segments must be positive")
        self.path = path
        self.rng = rng
        self.mss = mss
        self.initial_cwnd = initial_cwnd
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(initial_ssthresh)
        self.srtt_ms: Optional[float] = None
        self.rttvar_ms: float = 0.0
        self.retx_total = 0
        self.segments_sent_total = 0
        self.bytes_acked_total = 0
        self.snapshot_interval_ms = snapshot_interval_ms
        self.restart_after_idle = restart_after_idle
        #: window growth factor per loss-free slow-start round; 2.0 is
        #: standard TCP, lower values model server-side pacing [19]
        self.slow_start_growth = slow_start_growth
        #: receiver-window cap on in-flight segments: sessions whose peers
        #: advertise modest windows never overrun the path and see no loss
        self.max_window_segments = min(max_window_segments, MAX_CWND_SEGMENTS)
        self._next_snapshot_ms: Optional[float] = None
        self._last_send_ms: Optional[float] = None

    # -- RFC 6298 estimator --------------------------------------------------

    def observe_rtt(self, sample_ms: float, n_acks: int = 1) -> None:
        """Feed round-trip measurements into the SRTT/RTTVAR estimator.

        The kernel updates its estimator once per ACK, and a round carries
        roughly one ACK per segment in flight — so a single round moves
        SRTT most of the way to the new value.  *n_acks* replays the RFC
        6298 update that many times (capped: convergence saturates).
        """
        if sample_ms <= 0:
            raise ValueError("rtt sample must be positive")
        if n_acks <= 0:
            raise ValueError("n_acks must be positive")
        if self.srtt_ms is None:
            self.srtt_ms = sample_ms
            self.rttvar_ms = sample_ms / 2.0
            return
        n = n_acks if n_acks < _OBSERVE_CAP else _OBSERVE_CAP
        a = _POW_SRTT[n]
        b = _POW_VAR[n]
        delta = self.srtt_ms - sample_ms
        self.rttvar_ms = b * self.rttvar_ms + 2.0 * (a - b) * abs(delta)
        self.srtt_ms = sample_ms + delta * a

    @property
    def rto_ms(self) -> float:
        """Retransmission timeout, per the paper's footnote 5 (RFC 2988 style)."""
        if self.srtt_ms is None:
            return 1000.0  # RFC 6298 initial RTO
        return RTO_FLOOR_MS + self.srtt_ms + 4.0 * self.rttvar_ms

    # -- snapshots -------------------------------------------------------------

    def state_sample(self, t_ms: float) -> TcpStateSample:
        """Materialize the current kernel-visible state at time *t_ms*."""
        return TcpStateSample(
            t_ms=t_ms,
            cwnd_segments=int(self.cwnd),
            srtt_ms=self.srtt_ms if self.srtt_ms is not None else 0.0,
            rttvar_ms=self.rttvar_ms,
            retx_total=self.retx_total,
            mss=self.mss,
            rto_ms=self.rto_ms,
        )

    def _maybe_snapshot(self, t_ms: float, out: List[TcpStateSample]) -> None:
        """Emit periodic snapshots at the 500 ms sampling grid (§2.1)."""
        while self._next_snapshot_ms is not None and t_ms >= self._next_snapshot_ms:
            out.append(self.state_sample(self._next_snapshot_ms))
            self._next_snapshot_ms += self.snapshot_interval_ms

    # -- data transfer -----------------------------------------------------------

    def transfer(self, nbytes: int, now_ms: float) -> ChunkTransfer:
        """Deliver *nbytes* starting at *now_ms*; return timing and TCP stats.

        The returned duration is the time from the first data segment being
        sent to the last byte arriving at the receiver.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.restart_after_idle and self._last_send_ms is not None:
            if now_ms - self._last_send_ms > self.rto_ms:
                self.cwnd = float(self.initial_cwnd)
        # The 500 ms sampler runs on the connection's own clock; after an
        # idle gap the grid realigns rather than emitting stale samples.
        if self._next_snapshot_ms is None or now_ms > self._next_snapshot_ms:
            self._next_snapshot_ms = now_ms + self.snapshot_interval_ms

        mss = self.mss
        path = self.path
        rng = self.rng
        max_win = self.max_window_segments
        remaining = -(-nbytes // mss)  # integer ceil; same value as np.ceil
        t = now_ms
        samples: List[TcpStateSample] = []
        sent = 0
        retx = 0
        rounds = 0
        min_rtt = float("inf")
        # Batching is legal only when no fault overlay is installed (the
        # probe's epochs are invisible to epoch_window).  Zero-loss paths
        # use the exact loss-free fast path (stream-identical to the
        # general loop); lossy paths use the speculative planner, whose
        # draw discipline is batched-by-construction (both engines share
        # this code, so cross-engine identity is structural).
        can_batch = path.loss_rate == 0.0 and path.fault_probe is None
        can_speculate = path.loss_rate > 0.0 and path.fault_probe is None

        while remaining > 0:
            # -- analytic fast path: advance loss-free rounds inside one
            # calm epoch window without touching numpy per round.  Each
            # round still draws its own RTT-noise normal (batched:
            # identical stream), so the RNG draw order matches the
            # general loop exactly.
            if can_batch:
                mult, bw_div, valid_until = path.epoch_window(t)
                if mult == 1.0 and bw_div == 1.0:
                    t, remaining, sent_k, rounds_k, batch_min_rtt = (
                        self._advance_loss_free_rounds(
                            t, remaining, valid_until, samples
                        )
                    )
                    if rounds_k:
                        rounds += rounds_k
                        sent += sent_k
                        if batch_min_rtt < min_rtt:
                            min_rtt = batch_min_rtt
                        continue
                    # rounds_k == 0: the epoch boundary is too close to
                    # guarantee a loss-free round — take one general round.
            elif can_speculate:
                mult, bw_div, valid_until = path.epoch_window(t)
                if mult == 1.0 and bw_div == 1.0:
                    t, remaining, sent_k, retx_k, rounds_k, batch_min_rtt = (
                        self._advance_speculative_rounds(
                            t, remaining, valid_until, samples
                        )
                    )
                    if rounds_k:
                        rounds += rounds_k
                        sent += sent_k
                        retx += retx_k
                        if batch_min_rtt < min_rtt:
                            min_rtt = batch_min_rtt
                        continue
                    # rounds_k == 0: boundary too close — one general round.

            inflight = min(int(self.cwnd), max_win, remaining)
            if inflight < 1:
                inflight = 1

            rounds += 1
            inflight_bytes = inflight * mss
            base_rtt, bottleneck_kbps, loss_p = path.sample_round(
                t, float(inflight_bytes)
            )
            if base_rtt < min_rtt:
                min_rtt = base_rtt
            # Self-loading: serializing the window at the bottleneck adds
            # queueing delay that the kernel's RTT samples *do* see.
            serialization_ms = inflight_bytes * 8.0 / bottleneck_kbps
            observed_rtt = base_rtt + serialization_ms
            round_time = observed_rtt

            losses = int(rng.binomial(inflight, loss_p)) if loss_p > 0 else 0
            sent += inflight + losses
            if losses > 0:
                retx += losses
                self.retx_total += losses
                # Losing a large share of the window (bursty overflow, or a
                # tiny window losing its few segments) defeats fast
                # retransmit -> retransmission timeout.
                severe = losses >= max(1, int(0.5 * inflight))
                if severe:
                    round_time += self.rto_ms
                    self.ssthresh = max(self.cwnd / 2.0, 2.0)
                    self.cwnd = max(float(self.initial_cwnd) / 2.0, 2.0)
                else:
                    # Fast retransmit / fast recovery: one extra round,
                    # window halves.
                    round_time += path.sample_rtt(t + observed_rtt)
                    self.ssthresh = max(inflight / 2.0, 2.0)
                    self.cwnd = self.ssthresh
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd = min(
                        self.cwnd * self.slow_start_growth, float(MAX_CWND_SEGMENTS)
                    )
                else:
                    self.cwnd = min(self.cwnd + 1.0, float(MAX_CWND_SEGMENTS))

            self.observe_rtt(observed_rtt, n_acks=inflight)
            remaining -= inflight  # lost segments are recovered within the round
            self.bytes_acked_total += inflight_bytes
            t += round_time
            if self._next_snapshot_ms is not None and t >= self._next_snapshot_ms:
                self._maybe_snapshot(t, samples)

        self.segments_sent_total += sent
        self._last_send_ms = t
        duration = t - now_ms
        return ChunkTransfer(
            duration_ms=duration,
            segments_sent=sent,
            segments_retx=retx,
            rounds=rounds,
            min_rtt_ms=min_rtt,
            samples=samples,
        )

    def _advance_loss_free_rounds(
        self,
        t: float,
        remaining: int,
        valid_until: float,
        samples: List[TcpStateSample],
    ) -> Tuple[float, int, int, int, float]:
        """Advance as many loss-free rounds as provably fit before
        *valid_until*, analytically.

        Value-identical to the same rounds of the general loop in the calm
        regime (rtt multiplier 1.0, bandwidth divisor 1.0, zero loss
        probability): per-round noise comes from the same path RNG stream
        (one batched draw equals *k* scalar draws), the window grows with
        the same clamped updates, and SRTT/RTTVAR apply the same
        closed-form RFC 6298 step with the round's own in-flight ACK
        count.  The plan is sized so that even at the +12σ noise bound no
        batched round can reach *valid_until*, hence no congestion-episode
        state (or RNG draw for one) can be missed.

        Returns ``(new_t, new_remaining, segments_sent, rounds, min_rtt)``;
        ``rounds == 0`` means no loss-free round could be guaranteed (the
        boundary is too close, or the very next window would overrun the
        bottleneck queue) and the caller must fall back to the general loop.
        """
        path = self.path
        base_ms = path.base_rtt_ms
        bottleneck = path.bottleneck_kbps
        capacity_bytes = path._capacity_bytes
        max_win = self.max_window_segments
        mss = self.mss
        growth = self.slow_start_growth
        cwnd_cap = float(MAX_CWND_SEGMENTS)
        ssthresh = self.ssthresh

        # Plan pass: replay the deterministic window/remaining arithmetic
        # to count the rounds that fit under the worst-case noise bound.
        plan: List[Tuple[int, float]] = []
        cwnd = self.cwnd
        rem = remaining
        worst_t = t
        worst_base_ms = base_ms * _NOISE_BOUND
        while rem > 0:
            inflight = int(cwnd)
            if inflight > max_win:
                inflight = max_win
            if inflight > rem:
                inflight = rem
            if inflight < 1:
                inflight = 1
            inflight_bytes = inflight * mss
            if inflight_bytes > capacity_bytes:
                # this window overruns the bottleneck queue: overflow loss
                # becomes possible, so the general loop must take over
                break
            serialization_ms = inflight_bytes * 8.0 / bottleneck
            worst_t += worst_base_ms + serialization_ms
            if worst_t > valid_until:
                break
            plan.append((inflight, serialization_ms))
            if cwnd < ssthresh:
                cwnd = cwnd * growth
            else:
                cwnd = cwnd + 1.0
            if cwnd > cwnd_cap:
                cwnd = cwnd_cap
            rem -= inflight
        k = len(plan)
        if k == 0:
            return t, remaining, 0, 0, float("inf")

        # One batched draw produces the same values, in the same order, as
        # k scalar standard_normal() calls on the path's generator.
        noise_z = path.rng.standard_normal(k).tolist()
        pow_srtt = _POW_SRTT
        pow_var = _POW_VAR
        exp_ = math.exp
        srtt = self.srtt_ms
        rttvar = self.rttvar_ms
        cwnd = self.cwnd
        next_snap = self._next_snapshot_ms
        interval = self.snapshot_interval_ms
        retx_total = self.retx_total
        min_rtt = float("inf")
        sent = 0
        for (inflight, serialization_ms), z in zip(plan, noise_z):
            rtt = base_ms * exp_(0.08 * z)
            if rtt < min_rtt:
                min_rtt = rtt
            observed = rtt + serialization_ms
            if cwnd < ssthresh:
                cwnd = cwnd * growth
            else:
                cwnd = cwnd + 1.0
            if cwnd > cwnd_cap:
                cwnd = cwnd_cap
            if srtt is None:
                srtt = observed
                rttvar = observed / 2.0
            else:
                n = inflight if inflight < _OBSERVE_CAP else _OBSERVE_CAP
                a = pow_srtt[n]
                b = pow_var[n]
                delta = srtt - observed
                rttvar = b * rttvar + 2.0 * (a - b) * abs(delta)
                srtt = observed + delta * a
            sent += inflight
            t += observed
            while next_snap is not None and t >= next_snap:
                samples.append(
                    TcpStateSample(
                        t_ms=next_snap,
                        cwnd_segments=int(cwnd),
                        srtt_ms=srtt,
                        rttvar_ms=rttvar,
                        retx_total=retx_total,
                        mss=mss,
                        # srtt is set above before any snapshot can fire,
                        # so this matches state_sample()'s rto exactly
                        rto_ms=RTO_FLOOR_MS + srtt + 4.0 * rttvar,
                    )
                )
                next_snap += interval
        self.srtt_ms = srtt
        self.rttvar_ms = rttvar
        self.cwnd = cwnd
        self.bytes_acked_total += sent * mss
        self._next_snapshot_ms = next_snap
        return t, remaining - sent, sent, k, min_rtt

    #: upper bound on rounds planned per speculative batch (bounds the
    #: plan-pass work when the loss rate is tiny and the horizon long)
    _SPECULATE_MAX_ROUNDS = 256

    def _advance_speculative_rounds(
        self,
        t: float,
        remaining: int,
        valid_until: float,
        samples: List[TcpStateSample],
    ) -> Tuple[float, int, int, int, int, float]:
        """Advance rounds of a *lossy* path inside one calm epoch window.

        Speculative window batching: plan up to K rounds assuming no loss
        occurs (the no-loss window trajectory is deterministic), then
        sample the *first lossy round* directly by inverting the
        cumulative no-loss survival product with a single uniform draw —
        exactly the distribution the general loop's per-round
        ``binomial(inflight, loss_p)`` sequence induces, without a
        binomial call per round.  The loss round's segment count is a
        second uniform inverted through the binomial CDF conditioned on
        >= 1 loss, and its recovery replays the general loop's
        arithmetic exactly (RTO on severe loss, fast retransmit plus one
        extra RTT draw otherwise).  Only the rounds actually applied
        draw RTT-noise normals (one batched call), so no draws are
        wasted.  The draw discipline is *batched by construction*: every
        engine runs this same code, so records are identical across
        engines by sharing, not by re-derivation.

        Overflow windows (in-flight above the bottleneck capacity) stay in
        the batch — their elevated loss probability is part of the plan.
        The time bound uses the same +12σ worst-case noise guard as the
        loss-free fast path, so no planned round can cross *valid_until*
        and no congestion-episode RNG draw can be missed.

        Returns ``(new_t, new_remaining, segments_sent, segments_retx,
        rounds, min_rtt)``; ``rounds == 0`` means not even one round fits
        before the boundary and the caller must take a general round.
        """
        path = self.path
        base_ms = path.base_rtt_ms
        bottleneck = path.bottleneck_kbps
        capacity_bytes = path._capacity_bytes
        loss_rate = path.loss_rate
        max_win = self.max_window_segments
        mss = self.mss
        growth = self.slow_start_growth
        cwnd_cap = float(MAX_CWND_SEGMENTS)
        ssthresh = self.ssthresh

        # First-loss inversion, fused with the plan pass: one uniform from
        # the connection stream selects the first round with >= 1 lost
        # segment, with P(first loss at j) = prod_{i<j} surv_i *
        # (1 - surv_j) — the same law as drawing
        # binomial(inflight_i, loss_p_i) round by round.  Because u is
        # drawn up front, planning stops *at* the loss round: every
        # planned round is applied, nothing is wasted.
        u = self.rng.random()
        plan_inflight: List[int] = []
        plan_serial: List[float] = []
        loss_p = 0.0
        surv = 1.0
        loss_round = -1
        cwnd = self.cwnd
        rem = remaining
        worst_t = t
        worst_base_ms = base_ms * _NOISE_BOUND
        max_rounds = self._SPECULATE_MAX_ROUNDS
        surv_cum = 1.0
        while rem > 0 and len(plan_inflight) < max_rounds:
            inflight = int(cwnd)
            if inflight > max_win:
                inflight = max_win
            if inflight > rem:
                inflight = rem
            if inflight < 1:
                inflight = 1
            inflight_bytes = inflight * mss
            serialization_ms = inflight_bytes * 8.0 / bottleneck
            worst_t += worst_base_ms + serialization_ms
            if worst_t > valid_until:
                break
            if inflight_bytes <= capacity_bytes:
                loss_p = loss_rate if loss_rate < 0.9 else 0.9
            else:
                overflow = (inflight_bytes - capacity_bytes) / inflight_bytes
                loss_p = min(0.9, loss_rate + overflow)
            surv = (1.0 - loss_p) ** inflight
            plan_inflight.append(inflight)
            plan_serial.append(serialization_ms)
            surv_cum *= surv
            if u > surv_cum:
                # This round is the first with >= 1 lost segment; the
                # trajectory past it depends on the loss, so stop here.
                loss_round = len(plan_inflight) - 1
                break
            if cwnd < ssthresh:
                cwnd = cwnd * growth
            else:
                cwnd = cwnd + 1.0
            if cwnd > cwnd_cap:
                cwnd = cwnd_cap
            rem -= inflight
        n_apply = len(plan_inflight)
        if n_apply == 0:
            # The epoch boundary is too close for even one round; the
            # caller takes a general round.  (The uniform consumed above
            # is simply discarded — deterministic either way.)
            return t, remaining, 0, 0, 0, float("inf")
        n_calm = n_apply if loss_round < 0 else loss_round

        # One batched draw for exactly the normals these rounds need.
        noise_z = path.rng.standard_normal(n_apply).tolist()
        pow_srtt = _POW_SRTT
        pow_var = _POW_VAR
        exp_ = math.exp
        srtt = self.srtt_ms
        rttvar = self.rttvar_ms
        cwnd = self.cwnd
        next_snap = self._next_snapshot_ms
        interval = self.snapshot_interval_ms
        retx_total = self.retx_total
        min_rtt = float("inf")
        sent = 0
        retx = 0
        delivered = 0
        for i in range(n_calm):
            inflight = plan_inflight[i]
            rtt = base_ms * exp_(0.08 * noise_z[i])
            if rtt < min_rtt:
                min_rtt = rtt
            observed = rtt + plan_serial[i]
            sent += inflight
            if cwnd < ssthresh:
                cwnd = cwnd * growth
            else:
                cwnd = cwnd + 1.0
            if cwnd > cwnd_cap:
                cwnd = cwnd_cap
            if srtt is None:
                srtt = observed
                rttvar = observed / 2.0
            else:
                n = inflight if inflight < _OBSERVE_CAP else _OBSERVE_CAP
                a = pow_srtt[n]
                b = pow_var[n]
                delta = srtt - observed
                rttvar = b * rttvar + 2.0 * (a - b) * abs(delta)
                srtt = observed + delta * a
            delivered += inflight
            t += observed
            while next_snap is not None and t >= next_snap:
                samples.append(
                    TcpStateSample(
                        t_ms=next_snap,
                        cwnd_segments=int(cwnd),
                        srtt_ms=srtt,
                        rttvar_ms=rttvar,
                        retx_total=retx_total,
                        mss=mss,
                        rto_ms=RTO_FLOOR_MS + srtt + 4.0 * rttvar,
                    )
                )
                next_snap += interval
        if loss_round >= 0:
            # loss_p and surv still hold the loss round's values: the plan
            # loop broke immediately after computing them.
            j = loss_round
            inflight = plan_inflight[j]
            rtt = base_ms * exp_(0.08 * noise_z[j])
            if rtt < min_rtt:
                min_rtt = rtt
            observed = rtt + plan_serial[j]
            round_time = observed
            # Loss count: binomial(inflight, loss_p) conditioned on >= 1,
            # by inverse-CDF walk along the pmf recurrence.  When the
            # no-loss mass has underflowed the conditioning is vacuous and
            # a plain binomial draw (clamped to >= 1) is exact to ~1e-250.
            if surv < 1e-250:
                losses = int(self.rng.binomial(inflight, loss_p))
                if losses < 1:
                    losses = 1
            else:
                u2 = self.rng.random()
                target = surv + u2 * (1.0 - surv)
                pmf = surv
                cdf = surv
                x = 0
                ratio = loss_p / (1.0 - loss_p)
                while cdf < target and x < inflight:
                    pmf *= (inflight - x) / (x + 1.0) * ratio
                    x += 1
                    cdf += pmf
                losses = x if x >= 1 else 1
            sent += inflight + losses
            retx += losses
            retx_total += losses
            severe = losses >= max(1, int(0.5 * inflight))
            if severe:
                # RTO from the pre-update estimator, as in the loop.
                if srtt is None:
                    round_time += 1000.0
                else:
                    round_time += RTO_FLOOR_MS + srtt + 4.0 * rttvar
                ssthresh = max(cwnd / 2.0, 2.0)
                cwnd = max(float(self.initial_cwnd) / 2.0, 2.0)
            else:
                round_time += path.sample_rtt(t + observed)
                ssthresh = max(inflight / 2.0, 2.0)
                cwnd = ssthresh
            if srtt is None:
                srtt = observed
                rttvar = observed / 2.0
            else:
                n = inflight if inflight < _OBSERVE_CAP else _OBSERVE_CAP
                a = pow_srtt[n]
                b = pow_var[n]
                delta = srtt - observed
                rttvar = b * rttvar + 2.0 * (a - b) * abs(delta)
                srtt = observed + delta * a
            delivered += inflight
            t += round_time
            while next_snap is not None and t >= next_snap:
                samples.append(
                    TcpStateSample(
                        t_ms=next_snap,
                        cwnd_segments=int(cwnd),
                        srtt_ms=srtt,
                        rttvar_ms=rttvar,
                        retx_total=retx_total,
                        mss=mss,
                        rto_ms=RTO_FLOOR_MS + srtt + 4.0 * rttvar,
                    )
                )
                next_snap += interval
        self.srtt_ms = srtt
        self.rttvar_ms = rttvar
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.retx_total = retx_total
        self.bytes_acked_total += delivered * mss
        self._next_snapshot_ms = next_snap
        return t, remaining - delivered, sent, retx, n_apply, min_rtt
