"""Network substrate: wide-area paths, TCP model, prefix utilities."""

from .path import NetworkPath, build_session_path
from .prefix import group_by_prefix, is_valid_ipv4, prefix_of
from .tcp import DEFAULT_MSS, ChunkTransfer, TcpConnection, TcpStateSample

__all__ = [
    "NetworkPath",
    "build_session_path",
    "prefix_of",
    "group_by_prefix",
    "is_valid_ipv4",
    "TcpConnection",
    "TcpStateSample",
    "ChunkTransfer",
    "DEFAULT_MSS",
]
