"""Sweep reporting: one serialization path for cells, scenarios, grids.

Three layers, all deterministic (no wall clock, no process identity — a
sweep report is byte-identical for any ``--workers`` value):

* :func:`outcome_document` — the canonical JSON view of one multi-period
  run: per-period QoE, overall QoE, first-vs-last-period deltas, and a
  fault-localization scorecard when the telemetry carries ground-truth
  labels.  ``repro scenario --json`` and every sweep cell share this
  document shape.
* :func:`aggregate_report` — the grid-level comparison: one headline row
  per cell plus rankings by rebuffer ratio (ascending: best cells first)
  and by fault-localization recall (descending).
* :func:`format_report` — the human-readable table rendered from the
  aggregate document (``report.txt`` / CLI stdout).

Schema contract (documented in docs/SCENARIOS.md): outcome documents
carry ``schema = "repro.sweep.outcome/1"``, aggregate reports
``schema = "repro.sweep.report/1"``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis import plotting
from ..core import qoe
from ..core.faultscore import score_fault_localization
from ..telemetry.dataset import Dataset

__all__ = [
    "OUTCOME_SCHEMA",
    "REPORT_SCHEMA",
    "outcome_document",
    "faultscore_summary",
    "aggregate_report",
    "format_report",
    "write_report",
    "load_cell_documents",
]

OUTCOME_SCHEMA = "repro.sweep.outcome/1"
REPORT_SCHEMA = "repro.sweep.report/1"

#: QoE keys promoted from the overall summary into a cell's headline row
_HEADLINE_QOE = (
    "mean_rebuffer_rate_pct",
    "rebuffer_session_fraction",
    "median_startup_ms",
    "p90_startup_ms",
    "median_bitrate_kbps",
)


def _round_floats(value: Any, digits: int = 6) -> Any:
    """Round every float in a JSON tree (stable, compact serialization)."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        return round(value, digits)
    if isinstance(value, dict):
        return {key: _round_floats(entry, digits) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(entry, digits) for entry in value]
    return value


def faultscore_summary(dataset: Dataset) -> Optional[Dict[str, Any]]:
    """Grade localization against ground truth, as a plain JSON dict.

    Returns None when the dataset carries no fault labels (nothing to
    score) — an un-faulted sweep cell simply has no ``faultscore`` block.
    """
    report = score_fault_localization(dataset)
    if report.n_labeled == 0:
        return None
    pooled_tp = sum(score.true_positives for score in report.classes.values())
    pooled_fn = sum(score.false_negatives for score in report.classes.values())
    pooled_fp = sum(score.false_positives for score in report.classes.values())
    return {
        "n_chunks": report.n_chunks,
        "n_labeled": report.n_labeled,
        "recall": pooled_tp / (pooled_tp + pooled_fn) if pooled_tp + pooled_fn else 0.0,
        "precision": (
            pooled_tp / (pooled_tp + pooled_fp) if pooled_tp + pooled_fp else 0.0
        ),
        "classes": {
            name: {
                "labeled": score.labeled,
                "recall": score.recall,
                "precision": score.precision,
            }
            for name, score in sorted(report.classes.items())
        },
    }


def outcome_document(
    name: str,
    labels: Sequence[str],
    datasets: Sequence[Dataset],
    coordinates: Sequence[Tuple[str, str]] = (),
) -> Dict[str, Any]:
    """The canonical JSON view of one (possibly multi-period) run.

    *labels*/*datasets* are the per-period telemetry in period order (a
    single-period run is one entry).  ``overall`` summarizes the merged
    telemetry; ``deltas`` (multi-period only) is last-period QoE minus
    first-period QoE, the incident-vs-baseline damage vector.
    """
    if len(labels) != len(datasets):
        raise ValueError("labels and datasets must align")
    if not datasets:
        raise ValueError("outcome needs at least one period")
    merged = (
        datasets[0]
        if len(datasets) == 1
        else Dataset.merge_all(list(datasets), canonicalize=True)
    )
    periods = []
    for label, dataset in zip(labels, datasets):
        periods.append(
            {
                "label": label or "measure",
                "n_sessions": dataset.n_sessions,
                "n_chunks": dataset.n_chunks,
                "qoe": qoe.summarize(dataset),
            }
        )
    document: Dict[str, Any] = {
        "schema": OUTCOME_SCHEMA,
        "name": name,
        "periods": periods,
        "overall": {
            "n_sessions": merged.n_sessions,
            "n_chunks": merged.n_chunks,
            "qoe": qoe.summarize(merged),
        },
    }
    if coordinates:
        document["coordinates"] = {axis: value for axis, value in coordinates}
    if len(periods) > 1:
        first, last = periods[0]["qoe"], periods[-1]["qoe"]
        document["deltas"] = {
            key: last[key] - first[key]
            for key in first
            if key in last and isinstance(first[key], (int, float))
        }
    score = faultscore_summary(merged)
    if score is not None:
        document["faultscore"] = score
    return _round_floats(document)


# -- grid aggregation --------------------------------------------------------


def _headline(document: Dict[str, Any]) -> Dict[str, Any]:
    """The one-row summary of a cell document used for ranking."""
    overall = document.get("overall", {})
    summary = overall.get("qoe", {})
    row: Dict[str, Any] = {
        "n_sessions": overall.get("n_sessions"),
        "n_chunks": overall.get("n_chunks"),
    }
    for key in _HEADLINE_QOE:
        row[key] = summary.get(key)
    score = document.get("faultscore")
    row["fault_recall"] = score["recall"] if score else None
    row["fault_precision"] = score["precision"] if score else None
    row["fault_labeled_chunks"] = score["n_labeled"] if score else 0
    return row


def aggregate_report(
    sweep_name: str,
    cell_documents: Dict[str, Dict[str, Any]],
    failed: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Pivot per-cell outcome documents into one comparison document.

    *cell_documents* maps cell name → :func:`outcome_document`; *failed*
    maps cell name → error string for cells that did not produce telemetry.
    Rankings include only succeeded cells; ``by_fault_recall`` only cells
    that had labeled chunks to score.
    """
    failed = dict(failed or {})
    cells = {
        name: {
            "coordinates": document.get("coordinates", {}),
            **_headline(document),
        }
        for name, document in sorted(cell_documents.items())
    }

    def rebuffer_key(name: str):
        value = cells[name]["mean_rebuffer_rate_pct"]
        return (value is None, value if value is not None else 0.0, name)

    by_rebuffer = sorted(cells, key=rebuffer_key)
    scored = [name for name in cells if cells[name]["fault_recall"] is not None]
    by_fault_recall = sorted(
        scored, key=lambda name: (-cells[name]["fault_recall"], name)
    )
    return _round_floats(
        {
            "schema": REPORT_SCHEMA,
            "sweep": sweep_name,
            "n_cells": len(cells) + len(failed),
            "n_failed": len(failed),
            "sweeps": {
                "cells_total": len(cells) + len(failed),
                "cells_failed_total": len(failed),
            },
            "cells": cells,
            "failed": dict(sorted(failed.items())),
            "ranking": {
                "by_rebuffer": by_rebuffer,
                "by_fault_recall": by_fault_recall,
            },
        }
    )


def format_report(report: Dict[str, Any]) -> str:
    """Render the aggregate document as an aligned text comparison table."""
    cells = report.get("cells", {})
    rows: List[Tuple[str, ...]] = []
    for rank, name in enumerate(report["ranking"]["by_rebuffer"], start=1):
        row = cells[name]

        def fmt(value, pattern="{:.3g}"):
            return "—" if value is None else pattern.format(value)

        rows.append(
            (
                str(rank),
                name,
                fmt(row["mean_rebuffer_rate_pct"]),
                fmt(row["median_startup_ms"], "{:.0f}"),
                fmt(row["p90_startup_ms"], "{:.0f}"),
                fmt(row["median_bitrate_kbps"], "{:.0f}"),
                fmt(row["fault_recall"]),
                fmt(row["fault_precision"]),
            )
        )
    lines = [
        plotting.format_table(
            [
                "#", "cell", "rebuf%", "med_startup_ms", "p90_startup_ms",
                "med_kbps", "f.recall", "f.precision",
            ],
            rows,
            title=(
                f"Sweep {report['sweep']!r}: {report['n_cells']} cells "
                f"({report['n_failed']} failed), best rebuffer ratio first"
            ),
        )
    ]
    recall_ranking = report["ranking"]["by_fault_recall"]
    if recall_ranking:
        lines.append("")
        lines.append("Fault-localization recall ranking (best first):")
        for rank, name in enumerate(recall_ranking, start=1):
            row = cells[name]
            lines.append(
                f"  {rank}. {name}  recall={row['fault_recall']:.3f} "
                f"precision={row['fault_precision']:.3f} "
                f"({row['fault_labeled_chunks']} labeled chunks)"
            )
    if report.get("failed"):
        lines.append("")
        lines.append("Failed cells:")
        for name, error in report["failed"].items():
            lines.append(f"  {name}: {error}")
    return "\n".join(lines)


# -- persistence -------------------------------------------------------------


def _dump(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_report(report: Dict[str, Any], directory: Union[str, Path]) -> Path:
    """Write ``report.json`` + ``report.txt`` into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "report.json").write_text(_dump(report), encoding="utf-8")
    (directory / "report.txt").write_text(
        format_report(report) + "\n", encoding="utf-8"
    )
    return directory / "report.json"


def load_cell_documents(
    directory: Union[str, Path],
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, str]]:
    """Re-read per-cell outcome documents from a sweep output directory.

    Returns (documents, failures) keyed by cell name — the inputs
    :func:`aggregate_report` needs, so ``repro sweep report`` can
    re-aggregate without re-running anything.
    """
    directory = Path(directory)
    cells_dir = directory / "cells"
    if not cells_dir.is_dir():
        raise FileNotFoundError(
            f"{cells_dir} does not exist — not a sweep output directory?"
        )
    documents: Dict[str, Dict[str, Any]] = {}
    failures: Dict[str, str] = {}
    for cell_dir in sorted(cells_dir.iterdir()):
        if not cell_dir.is_dir():
            continue
        error_path = cell_dir / "error.txt"
        if error_path.is_file():
            failures[cell_dir.name] = error_path.read_text(encoding="utf-8").strip()
            continue
        outcome_path = cell_dir / "cell.json"
        if not outcome_path.is_file():
            failures[cell_dir.name] = "missing cell.json"
            continue
        payload = json.loads(outcome_path.read_text(encoding="utf-8"))
        schema = payload.get("schema")
        if schema != OUTCOME_SCHEMA:
            raise ValueError(
                f"{outcome_path}: unsupported outcome schema {schema!r} "
                f"(expected {OUTCOME_SCHEMA!r})"
            )
        documents[cell_dir.name] = payload
    return documents, failures
