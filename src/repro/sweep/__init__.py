"""repro.sweep — the scenario-matrix DSL and factorial sweep runner.

Declarative, JSON-loadable scenarios (:class:`ScenarioSpec`: workload
shape × config overrides × fault schedule), factorial grids over them
(:class:`SweepSpec`), a runner that executes every cell through the
unified :func:`repro.api.run` facade with per-cell metrics/faultscore
capture (:func:`run_sweep`), and the aggregation layer that pivots the
grid into one comparison report (:mod:`repro.sweep.report`).

The DSL grammar and the report schemas are documented in
docs/SCENARIOS.md; the docs-sync lint (tests/test_docs_contract.py)
keeps grammar and docs aligned in both directions.

Quickstart::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec.load("examples/sweep_mapping_vs_faults.json")
    result = run_sweep(spec, workers=4, out_dir="sweep-out/")
    print(result.report["ranking"]["by_rebuffer"][0])   # the best cell

CLI: ``repro sweep run|list|report`` (see docs/SCENARIOS.md).
"""

from .report import (
    OUTCOME_SCHEMA,
    REPORT_SCHEMA,
    aggregate_report,
    faultscore_summary,
    format_report,
    load_cell_documents,
    outcome_document,
    write_report,
)
from .runner import CellResult, SweepResult, run_cell, run_sweep
from .spec import (
    AXIS_FIELDS,
    AXIS_VALUE_FIELDS,
    CANNED_SCENARIOS,
    DEFAULT_SCENARIO_SEED,
    PERIOD_FIELDS,
    SCENARIO_FIELDS,
    SWEEP_FIELDS,
    TRANSFORM_KEYS,
    WORKLOAD_SHAPES,
    AxisValue,
    PeriodDef,
    ScenarioSpec,
    ShapeResult,
    SweepAxis,
    SweepCell,
    SweepSpec,
)

__all__ = [
    "OUTCOME_SCHEMA",
    "REPORT_SCHEMA",
    "AXIS_FIELDS",
    "AXIS_VALUE_FIELDS",
    "PERIOD_FIELDS",
    "SCENARIO_FIELDS",
    "SWEEP_FIELDS",
    "TRANSFORM_KEYS",
    "WORKLOAD_SHAPES",
    "CANNED_SCENARIOS",
    "DEFAULT_SCENARIO_SEED",
    "PeriodDef",
    "ScenarioSpec",
    "ShapeResult",
    "AxisValue",
    "SweepAxis",
    "SweepCell",
    "SweepSpec",
    "CellResult",
    "SweepResult",
    "run_cell",
    "run_sweep",
    "aggregate_report",
    "faultscore_summary",
    "format_report",
    "load_cell_documents",
    "outcome_document",
    "write_report",
]
