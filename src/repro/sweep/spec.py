"""The scenario-matrix DSL: declarative scenarios and factorial sweeps.

The paper characterizes streaming performance by slicing telemetry across
many conditions at once — CDN server state, network path, client stack.
This module turns the repo's building blocks (workload knobs,
:class:`~repro.faults.FaultSpec` schedules, multi-period
:class:`~repro.simulation.parallel.PeriodSpec` lists) into *values* that
compose:

* a **workload shape** is a named period structure (diurnal cycle,
  live-event spike, skewed short sessions in the style of Grammenos et
  al.'s adult-portal workload study, a regional ISP outage);
* a :class:`ScenarioSpec` binds a shape to base-config overrides and an
  optional fault schedule — fully JSON-loadable, so a scenario is a file,
  not a function;
* a :class:`SweepSpec` crosses axes of scenario patches (mapping strategy
  × fault spec × seed × …) into a factorial grid of named cells, each of
  which resolves to a plain period list that
  :func:`repro.api.run` executes.

Everything here is pure data: no RNG, no wall clock, no execution.  The
grammar (field names, transform keywords, shape names) is a written
contract documented in docs/SCENARIOS.md and kept in sync both directions
by tests/test_docs_contract.py.

Override grammar: an override value is either a literal (replaces the
field) or a one-key transform dict applied to the base value —
``{"scale": x}`` multiplies, ``{"offset": x}`` adds.  Integer fields
round back to int; execution knobs (``workers`` …) are not overridable,
they belong to the runner (docs/OBSERVABILITY.md's execution/workload
split).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..faults.spec import FaultSpec
from ..obs.manifest import EXECUTION_FIELDS
from ..simulation.config import SimulationConfig
from ..simulation.parallel import PeriodSpec

__all__ = [
    "AXIS_FIELDS",
    "AXIS_VALUE_FIELDS",
    "PERIOD_FIELDS",
    "SCENARIO_FIELDS",
    "SWEEP_FIELDS",
    "TRANSFORM_KEYS",
    "WORKLOAD_SHAPES",
    "CANNED_SCENARIOS",
    "DEFAULT_SCENARIO_SEED",
    "PeriodDef",
    "ScenarioSpec",
    "ShapeResult",
    "AxisValue",
    "SweepAxis",
    "SweepCell",
    "SweepSpec",
]

#: seed used when neither the spec nor the caller provides one (the
#: historical ``run_scenario`` default).
DEFAULT_SCENARIO_SEED = 29

#: override-transform keywords (the only legal keys of a transform dict)
TRANSFORM_KEYS: Tuple[str, ...] = ("scale", "offset")

#: JSON field names of each grammar production — the documented contract.
SCENARIO_FIELDS: Tuple[str, ...] = (
    "name", "description", "workload", "workload_params", "base",
    "periods", "faults", "seed",
)
PERIOD_FIELDS: Tuple[str, ...] = ("label", "overrides", "mutation", "mutation_args")
SWEEP_FIELDS: Tuple[str, ...] = ("name", "description", "scenario", "axes")
AXIS_FIELDS: Tuple[str, ...] = ("axis", "values")
AXIS_VALUE_FIELDS: Tuple[str, ...] = (
    "name", "overrides", "faults", "workload", "workload_params", "seed",
)

#: config fields that are structured sub-objects, not DSL-overridable
#: scalars (tune them in code, not in a JSON spec)
_STRUCTURED_FIELDS = frozenset({"population", "server", "faults"})

_CONFIG_FIELDS = {f.name: f for f in dataclasses.fields(SimulationConfig)}


def _check_name(name: str, what: str) -> str:
    """Names become directory components and cell keys: keep them safe."""
    if not name:
        raise ValueError(f"{what} name must be non-empty")
    ok = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
    bad = sorted(set(name) - ok)
    if bad:
        raise ValueError(
            f"{what} name {name!r} contains unsafe characters {bad}; "
            "use letters, digits, '.', '_' and '-'"
        )
    return name


def _apply_overrides(
    config: SimulationConfig, overrides: Mapping[str, Any]
) -> SimulationConfig:
    """Apply DSL overrides (literals or transforms) to *config*."""
    updates: Dict[str, Any] = {}
    for key in sorted(overrides):
        value = overrides[key]
        if key not in _CONFIG_FIELDS:
            raise ValueError(
                f"unknown config field {key!r} in overrides; valid fields: "
                f"{sorted(set(_CONFIG_FIELDS) - _STRUCTURED_FIELDS - EXECUTION_FIELDS)}"
            )
        if key in EXECUTION_FIELDS:
            raise ValueError(
                f"config field {key!r} is an execution knob; it belongs to "
                "the runner (--workers …), not to a scenario spec"
            )
        if key in _STRUCTURED_FIELDS:
            raise ValueError(
                f"config field {key!r} is a structured object and cannot be "
                "overridden from the DSL"
            )
        current = getattr(config, key)
        if isinstance(value, Mapping):
            extra = sorted(set(value) - set(TRANSFORM_KEYS))
            if extra or len(value) != 1:
                raise ValueError(
                    f"override for {key!r} must be a literal or a one-key "
                    f"transform dict {TRANSFORM_KEYS}, got {dict(value)!r}"
                )
            if not isinstance(current, (int, float)) or isinstance(current, bool):
                raise ValueError(
                    f"transform override for {key!r} needs a numeric base "
                    f"value, found {type(current).__name__}"
                )
            if "scale" in value:
                result: Any = current * float(value["scale"])
            else:
                result = current + float(value["offset"])
            if isinstance(current, int):
                result = max(0, int(round(result)))
            updates[key] = result
        elif key == "bitrate_ladder_kbps":
            updates[key] = tuple(value)
        else:
            updates[key] = value
    return config.with_overrides(**updates) if updates else config


def _merge_faults(
    *specs: Optional[FaultSpec], name: str = "composed"
) -> Optional[FaultSpec]:
    """Concatenate the events of several fault specs (unique fault_ids)."""
    present = [spec for spec in specs if spec]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    events = tuple(
        itertools.chain.from_iterable(spec.events for spec in present)
    )
    return FaultSpec(  # FaultSpec.__post_init__ rejects duplicate ids
        name=name,
        description="; ".join(s.description for s in present if s.description),
        events=events,
    )


def _resolve_faults_field(
    raw: Union[None, str, Mapping[str, Any], FaultSpec], base_dir: Optional[Path]
) -> Optional[FaultSpec]:
    """A spec's ``faults`` field: inline dict, file path, or object."""
    if raw is None or isinstance(raw, FaultSpec):
        return raw
    if isinstance(raw, str):
        path = Path(raw)
        if not path.is_absolute() and base_dir is not None:
            path = base_dir / path
        return FaultSpec.load(path)
    return FaultSpec.from_dict(dict(raw))


def _check_fields(payload: Mapping[str, Any], legal: Tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(legal))
    if unknown:
        raise ValueError(f"unknown {what} field(s) {unknown}; valid: {list(legal)}")


# -- periods -----------------------------------------------------------------


@dataclass(frozen=True)
class PeriodDef:
    """One period of a scenario, relative to the scenario's base config.

    ``overrides`` follow the DSL override grammar and are applied to the
    resolved base config; ``mutation`` names a module-level callable as
    ``"pkg.module:function"`` invoked on the simulator before the period
    runs (exactly :class:`~repro.simulation.parallel.PeriodSpec` semantics).
    """

    label: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    mutation: Optional[str] = None
    mutation_args: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.label, "period")
        if not isinstance(self.overrides, dict):
            object.__setattr__(self, "overrides", dict(self.overrides))
        if not isinstance(self.mutation_args, tuple):
            object.__setattr__(self, "mutation_args", tuple(self.mutation_args))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PeriodDef":
        _check_fields(payload, PERIOD_FIELDS, "period")
        return cls(
            label=payload.get("label", "measure"),
            overrides=dict(payload.get("overrides", {})),
            mutation=payload.get("mutation"),
            mutation_args=tuple(payload.get("mutation_args", ())),
        )

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"label": self.label}
        if self.overrides:
            entry["overrides"] = dict(self.overrides)
        if self.mutation is not None:
            entry["mutation"] = self.mutation
        if self.mutation_args:
            entry["mutation_args"] = list(self.mutation_args)
        return entry


# -- workload shapes ---------------------------------------------------------


@dataclass(frozen=True)
class ShapeResult:
    """What a workload shape contributes to a scenario."""

    periods: Tuple[PeriodDef, ...]
    faults: Optional[FaultSpec] = None


def _shape_params(params: Mapping[str, Any], defaults: Dict[str, Any], shape: str):
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown workload_params {unknown} for shape {shape!r}; "
            f"valid: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(params)
    return merged


def _shape_steady(params: Mapping[str, Any]) -> ShapeResult:
    """One uniform collection period — the classic ``repro simulate``."""
    _shape_params(params, {}, "steady")
    return ShapeResult(periods=(PeriodDef(label="measure"),))


def _shape_diurnal(params: Mapping[str, Any]) -> ShapeResult:
    """A daily demand cycle: arrival rate sweeps through named phases.

    Each phase runs ``1/len(phases)`` of the base session count at the
    base arrival rate times the phase multiplier, on a shifted session
    stream (seed offset), carrying cache state phase to phase.
    """
    p = _shape_params(
        params,
        {"phases": [["night", 0.4], ["morning", 0.9], ["peak", 1.6], ["evening", 0.8]]},
        "diurnal",
    )
    phases = [(str(label), float(scale)) for label, scale in p["phases"]]
    if not phases:
        raise ValueError("diurnal shape needs at least one phase")
    fraction = 1.0 / len(phases)
    periods = []
    for index, (label, scale) in enumerate(phases):
        overrides: Dict[str, Any] = {
            "arrival_rate_per_s": {"scale": scale},
            "n_sessions": {"scale": fraction},
        }
        if index > 0:
            overrides["warmup_sessions"] = 0
            overrides["seed"] = {"offset": index}
        periods.append(PeriodDef(label=label, overrides=overrides))
    return ShapeResult(periods=tuple(periods))


def _shape_live_event_spike(params: Mapping[str, Any]) -> ShapeResult:
    """Baseline, then a breaking-news spike onto a narrow hot set.

    The historical ``flash-crowd`` scenario: arrivals multiply, interest
    collapses onto ``hot_titles`` with Zipf ``spike_zipf``, the warmed
    fleet carries over.
    """
    p = _shape_params(
        params,
        {"arrival_scale": 3.0, "hot_titles": 10, "spike_zipf": 1.6},
        "live-event-spike",
    )
    return ShapeResult(
        periods=(
            PeriodDef(label="baseline"),
            PeriodDef(
                label="incident",
                overrides={
                    "arrival_rate_per_s": {"scale": float(p["arrival_scale"])},
                    "zipf_alpha": float(p["spike_zipf"]),
                    "n_videos": int(p["hot_titles"]),
                    "warmup_sessions": 0,
                    "seed": {"offset": 1},
                },
            ),
        )
    )


def _shape_short_session_skew(params: Mapping[str, Any]) -> ShapeResult:
    """Skewed, short-session traffic (Grammenos et al., PAPERS.md).

    The adult-portal workload: popularity far more head-heavy than the
    news catalog, sessions abandoning after a couple of chunks, arrivals
    denser — cache-friendly bytes but a request mix dominated by session
    startup costs.
    """
    p = _shape_params(
        params,
        {
            "zipf": 1.5,
            "watch_median": 2.0,
            "watch_sigma": 1.2,
            "arrival_scale": 2.0,
        },
        "short-session-skew",
    )
    return ShapeResult(
        periods=(
            PeriodDef(
                label="measure",
                overrides={
                    "zipf_alpha": float(p["zipf"]),
                    "watch_median_chunks": float(p["watch_median"]),
                    "watch_sigma_chunks": float(p["watch_sigma"]),
                    "arrival_rate_per_s": {"scale": float(p["arrival_scale"])},
                },
            ),
        )
    )


def _shape_regional_isp_outage(params: Mapping[str, Any]) -> ShapeResult:
    """A regional ISP melts down: its paths gain latency and loss.

    Contributes a fault schedule (network-latency + network-loss on the
    named orgs) rather than config overrides — the workload is unchanged,
    the network under it degrades.
    """
    p = _shape_params(
        params,
        {"orgs": ["Comcast"], "latency_scale": 6.0, "loss": 0.05},
        "regional-isp-outage",
    )
    orgs = tuple(str(org) for org in p["orgs"])
    faults = FaultSpec(
        name="regional-isp-outage",
        description=f"regional outage on {', '.join(orgs)}",
        events=(
            _fault_event(
                "isp-outage-latency", "network-latency",
                float(p["latency_scale"]), orgs,
            ),
            _fault_event("isp-outage-loss", "network-loss", float(p["loss"]), orgs),
        ),
    )
    return ShapeResult(periods=(PeriodDef(label="measure"),), faults=faults)


def _fault_event(fault_id: str, fault_class: str, magnitude: float, orgs):
    from ..faults.spec import FaultEvent

    return FaultEvent(
        fault_id=fault_id,
        fault_class=fault_class,
        start_ms=0.0,
        end_ms=1e12,
        magnitude=magnitude,
        orgs=orgs,
    )


#: The workload-shape registry — the DSL's ``workload`` axis.  Each shape
#: maps its params to a period structure (and possibly a fault schedule).
#: Adding a shape REQUIRES a row in docs/SCENARIOS.md (the docs-sync lint
#: checks both directions).
WORKLOAD_SHAPES: Dict[str, Callable[[Mapping[str, Any]], ShapeResult]] = {
    "steady": _shape_steady,
    "diurnal": _shape_diurnal,
    "live-event-spike": _shape_live_event_spike,
    "short-session-skew": _shape_short_session_skew,
    "regional-isp-outage": _shape_regional_isp_outage,
}


# -- scenarios ---------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative scenario: workload shape × config overrides × faults.

    ``base`` overrides the stock :class:`SimulationConfig` defaults;
    ``periods`` (optional) replaces the shape's period structure with an
    explicit one (how the cache-flush/backend-brownout scenarios attach
    their mutations); ``faults`` composes with whatever the shape
    contributes.  :meth:`resolve` turns the spec into the plain
    :class:`~repro.simulation.parallel.PeriodSpec` list that
    ``repro.api.run(periods=...)`` executes.
    """

    name: str
    description: str = ""
    workload: str = "steady"
    workload_params: Mapping[str, Any] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    periods: Tuple[PeriodDef, ...] = ()
    faults: Optional[FaultSpec] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _check_name(self.name, "scenario")
        if self.workload not in WORKLOAD_SHAPES:
            raise ValueError(
                f"unknown workload shape {self.workload!r}; choose from "
                f"{sorted(WORKLOAD_SHAPES)}"
            )
        if not isinstance(self.workload_params, dict):
            object.__setattr__(self, "workload_params", dict(self.workload_params))
        if not isinstance(self.base, dict):
            object.__setattr__(self, "base", dict(self.base))
        if not isinstance(self.periods, tuple):
            object.__setattr__(self, "periods", tuple(self.periods))

    # -- resolution ----------------------------------------------------------

    def resolve(
        self, seed: Optional[int] = None, **execution: Any
    ) -> List[PeriodSpec]:
        """The concrete period list this scenario runs.

        *seed* overrides the spec's seed (default
        :data:`DEFAULT_SCENARIO_SEED`); ``execution`` keyword overrides
        (``workers=4`` …) are applied to every period's config — they are
        run-time knobs, never part of the spec (the metrics document of a
        resolved scenario is byte-identical for any worker count).
        """
        if seed is None:
            seed = self.seed if self.seed is not None else DEFAULT_SCENARIO_SEED
        shape = WORKLOAD_SHAPES[self.workload](self.workload_params)
        period_defs = self.periods if self.periods else shape.periods
        faults = _merge_faults(shape.faults, self.faults, name=f"{self.name}-faults")
        base = _apply_overrides(SimulationConfig(), self.base)
        base = base.with_overrides(seed=seed)
        execution = {k: v for k, v in execution.items() if v is not None}
        unknown = sorted(set(execution) - EXECUTION_FIELDS)
        if unknown:
            raise ValueError(
                f"resolve() keyword(s) {unknown} are not execution knobs "
                f"{sorted(EXECUTION_FIELDS)}"
            )
        specs: List[PeriodSpec] = []
        for period in period_defs:
            config = _apply_overrides(base, period.overrides)
            if faults is not None:
                config = config.with_overrides(faults=faults)
            if execution:
                config = config.with_overrides(**execution)
            specs.append(
                PeriodSpec(
                    config=config,
                    label=period.label,
                    mutation=period.mutation,
                    mutation_args=period.mutation_args,
                )
            )
        return specs

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], base_dir: Optional[Path] = None
    ) -> "ScenarioSpec":
        _check_fields(payload, SCENARIO_FIELDS, "scenario")
        return cls(
            name=payload.get("name", "scenario"),
            description=payload.get("description", ""),
            workload=payload.get("workload", "steady"),
            workload_params=dict(payload.get("workload_params", {})),
            base=dict(payload.get("base", {})),
            periods=tuple(
                PeriodDef.from_dict(entry) for entry in payload.get("periods", ())
            ),
            faults=_resolve_faults_field(payload.get("faults"), base_dir),
            seed=payload.get("seed"),
        )

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.name}
        if self.description:
            entry["description"] = self.description
        if self.workload != "steady":
            entry["workload"] = self.workload
        if self.workload_params:
            entry["workload_params"] = dict(self.workload_params)
        if self.base:
            entry["base"] = dict(self.base)
        if self.periods:
            entry["periods"] = [period.to_dict() for period in self.periods]
        if self.faults is not None:
            entry["faults"] = self.faults.to_dict()
        if self.seed is not None:
            entry["seed"] = self.seed
        return entry

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        path = Path(path)
        payload = _load_json(path)
        return cls.from_dict(payload, base_dir=path.parent)

    def save(self, path: Union[str, Path]) -> Path:
        return _save_json(self.to_dict(), path)


#: The three historical scenarios of ``repro scenario``, re-expressed in
#: the DSL.  ``repro.simulation.scenarios`` builds its registry from this
#: table; the imperative ``_periods_*`` builders are deprecated wrappers.
CANNED_SCENARIOS: Dict[str, ScenarioSpec] = {
    "flash-crowd": ScenarioSpec(
        name="flash-crowd",
        description=(
            "A traffic spike onto a narrow slice of hot titles (breaking "
            "news): arrival rate multiplies, catalog interest narrows."
        ),
        workload="live-event-spike",
        base={"n_sessions": 800, "warmup_sessions": 1600},
    ),
    "cache-flush": ScenarioSpec(
        name="cache-flush",
        description=(
            "The fleet's caches restart cold (deploy/restart): every chunk "
            "pays the miss path until re-warmed."
        ),
        base={"n_sessions": 800, "warmup_sessions": 1600},
        periods=(
            PeriodDef(label="baseline"),
            PeriodDef(
                label="incident",
                mutation="repro.simulation.scenarios:_flush_caches",
            ),
        ),
    ),
    "backend-brownout": ScenarioSpec(
        name="backend-brownout",
        description=(
            "The origin slows down (storage degradation): misses get much "
            "more expensive."
        ),
        base={"n_sessions": 800, "warmup_sessions": 1600},
        periods=(
            PeriodDef(label="baseline"),
            PeriodDef(
                label="incident",
                mutation="repro.simulation.scenarios:_slow_backend",
                mutation_args=(8.0,),
            ),
        ),
    ),
}


# -- sweeps ------------------------------------------------------------------


@dataclass(frozen=True)
class AxisValue:
    """One point on a sweep axis: a named patch onto the base scenario.

    A value may override config fields, merge in a fault schedule, switch
    the workload shape (with params), or pin the seed — the same verbs a
    scenario itself has, so axes compose freely.
    """

    name: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[FaultSpec] = None
    workload: Optional[str] = None
    workload_params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _check_name(self.name, "axis value")
        if not isinstance(self.overrides, dict):
            object.__setattr__(self, "overrides", dict(self.overrides))
        if not isinstance(self.workload_params, dict):
            object.__setattr__(self, "workload_params", dict(self.workload_params))
        if self.workload is not None and self.workload not in WORKLOAD_SHAPES:
            raise ValueError(
                f"axis value {self.name!r}: unknown workload shape "
                f"{self.workload!r}; choose from {sorted(WORKLOAD_SHAPES)}"
            )

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Patch *spec* with this value's fields (later axes win per key)."""
        return replace(
            spec,
            base={**spec.base, **self.overrides},
            faults=_merge_faults(spec.faults, self.faults, name=f"{spec.name}-faults"),
            workload=self.workload if self.workload is not None else spec.workload,
            workload_params={**spec.workload_params, **self.workload_params},
            seed=self.seed if self.seed is not None else spec.seed,
        )

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], base_dir: Optional[Path] = None
    ) -> "AxisValue":
        _check_fields(payload, AXIS_VALUE_FIELDS, "axis value")
        return cls(
            name=str(payload["name"]),
            overrides=dict(payload.get("overrides", {})),
            faults=_resolve_faults_field(payload.get("faults"), base_dir),
            workload=payload.get("workload"),
            workload_params=dict(payload.get("workload_params", {})),
            seed=payload.get("seed"),
        )

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.name}
        if self.overrides:
            entry["overrides"] = dict(self.overrides)
        if self.faults is not None:
            entry["faults"] = self.faults.to_dict()
        if self.workload is not None:
            entry["workload"] = self.workload
        if self.workload_params:
            entry["workload_params"] = dict(self.workload_params)
        if self.seed is not None:
            entry["seed"] = self.seed
        return entry


@dataclass(frozen=True)
class SweepAxis:
    """One factor of the factorial design: a name and its levels."""

    axis: str
    values: Tuple[AxisValue, ...]

    def __post_init__(self) -> None:
        _check_name(self.axis, "axis")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.axis!r} has no values")
        seen = set()
        for value in self.values:
            if value.name in seen:
                raise ValueError(
                    f"axis {self.axis!r}: duplicate value name {value.name!r}"
                )
            seen.add(value.name)

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], base_dir: Optional[Path] = None
    ) -> "SweepAxis":
        _check_fields(payload, AXIS_FIELDS, "axis")
        return cls(
            axis=str(payload["axis"]),
            values=tuple(
                AxisValue.from_dict(entry, base_dir)
                for entry in payload.get("values", ())
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axis": self.axis,
            "values": [value.to_dict() for value in self.values],
        }


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved cell of the factorial grid.

    The cell ``name`` is the canonical ``axis=value+axis=value`` join in
    declared axis order — stable across runs, safe as a directory name,
    and the key ``repro sweep run --cell`` selects by.
    """

    name: str
    #: (axis, value-name) pairs in declared axis order
    coordinates: Tuple[Tuple[str, str], ...]
    scenario: ScenarioSpec

    def resolve(self, **execution: Any) -> List[PeriodSpec]:
        return self.scenario.resolve(**execution)


@dataclass(frozen=True)
class SweepSpec:
    """A factorial experiment: a base scenario crossed by sweep axes.

    :meth:`cells` enumerates the full grid in deterministic order — axes
    in declared order, values in declared order, the last axis varying
    fastest (``itertools.product`` order).  Cell count is the product of
    the axis sizes; every cell is an independent scenario run.
    """

    name: str
    description: str = ""
    scenario: ScenarioSpec = field(
        default_factory=lambda: ScenarioSpec(name="base")
    )
    axes: Tuple[SweepAxis, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.name, "sweep")
        if not isinstance(self.axes, tuple):
            object.__setattr__(self, "axes", tuple(self.axes))
        seen = set()
        for axis in self.axes:
            if axis.axis in seen:
                raise ValueError(f"duplicate axis {axis.axis!r}")
            seen.add(axis.axis)

    @property
    def n_cells(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def cells(self) -> List[SweepCell]:
        """Every cell of the grid, in canonical (deterministic) order."""
        cells: List[SweepCell] = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            spec = self.scenario
            parts: List[Tuple[str, str]] = []
            for axis, value in zip(self.axes, combo):
                spec = value.apply_to(spec)
                parts.append((axis.axis, value.name))
            name = "+".join(f"{axis}={value}" for axis, value in parts) or "all"
            cells.append(
                SweepCell(name=name, coordinates=tuple(parts), scenario=spec)
            )
        return cells

    def cell(self, name: str) -> SweepCell:
        """Look one cell up by its canonical name."""
        for cell in self.cells():
            if cell.name == name:
                return cell
        raise KeyError(
            f"no cell named {name!r} in sweep {self.name!r}; "
            f"see `repro sweep list` for the grid"
        )

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], base_dir: Optional[Path] = None
    ) -> "SweepSpec":
        _check_fields(payload, SWEEP_FIELDS, "sweep")
        raw_scenario = payload.get("scenario", {})
        if isinstance(raw_scenario, str):
            try:
                scenario = CANNED_SCENARIOS[raw_scenario]
            except KeyError:
                raise ValueError(
                    f"unknown canned scenario {raw_scenario!r}; choose from "
                    f"{sorted(CANNED_SCENARIOS)}"
                ) from None
        else:
            scenario = ScenarioSpec.from_dict(raw_scenario, base_dir)
        return cls(
            name=payload.get("name", "sweep"),
            description=payload.get("description", ""),
            scenario=scenario,
            axes=tuple(
                SweepAxis.from_dict(entry, base_dir)
                for entry in payload.get("axes", ())
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "scenario": self.scenario.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        path = Path(path)
        payload = _load_json(path)
        return cls.from_dict(payload, base_dir=path.parent)

    def save(self, path: Union[str, Path]) -> Path:
        return _save_json(self.to_dict(), path)


# -- shared JSON helpers ------------------------------------------------------


def _load_json(path: Path) -> Dict[str, Any]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(f"spec not found: {path}") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: invalid JSON: {error}") from error


def _save_json(payload: Dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
