"""The factorial sweep runner: execute every cell, capture everything.

Each cell of a :class:`~repro.sweep.spec.SweepSpec` resolves to a plain
period list and runs through the unified :func:`repro.api.run` facade —
so every cell inherits the whole execution stack: the sharded
``--workers`` machinery, fault injection, the deterministic
metrics/manifest emitters.  Determinism contract: per-cell metrics
documents and the aggregate report are byte-identical for any worker
count, and re-running a single cell by name reproduces its record stream
(tests/test_sweep.py pins both).

Execution telemetry: the runner counts cells into the ``sweeps.*``
contract metrics (docs/OBSERVABILITY.md) on its own registry — cell
registries stay per-run and untouched, exactly like shard registries.

Output layout (``run_sweep(..., out_dir=...)``)::

    out/
      sweep.json            # the resolved spec (inlined fault schedules)
      report.json           # aggregate comparison document
      report.txt            # the same, as an aligned table
      cells/<cell name>/
        cell.json           # per-cell outcome document
        metrics.json        # the deterministic metrics document
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..obs.manifest import dump_json
from ..obs.registry import MetricsRegistry
from .report import aggregate_report, outcome_document, write_report
from .spec import SweepCell, SweepSpec

__all__ = ["CellResult", "SweepResult", "run_cell", "run_sweep"]


@dataclass
class CellResult:
    """Everything one executed cell produced (or the error that stopped it)."""

    name: str
    coordinates: Dict[str, str]
    #: the per-cell outcome document (None when the cell failed)
    document: Optional[Dict[str, Any]] = None
    #: the deterministic metrics document, canonically serialized
    metrics_json: Optional[str] = None
    error: Optional[str] = None
    #: wall-clock seconds (execution telemetry; never serialized into the
    #: deterministic report artifacts)
    wall_time_s: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """A finished sweep: per-cell results plus the aggregate report."""

    spec: SweepSpec
    cells: List[CellResult]
    report: Dict[str, Any]
    #: the runner's registry (sweeps.* counters)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    out_dir: Optional[Path] = None

    @property
    def n_failed(self) -> int:
        return sum(not cell.succeeded for cell in self.cells)


def run_cell(
    cell: SweepCell,
    workers: int = 1,
    shard_timeout_s: Optional[float] = None,
) -> CellResult:
    """Execute one cell end to end; never raises on simulation failure.

    The cell's scenario resolves with the caller's execution knobs (which
    never enter the spec, so the telemetry is worker-count-independent)
    and runs through ``repro.api.run``.  Spec-resolution errors (bad
    override, malformed fault schedule) are captured the same way as
    runtime failures: as a failed :class:`CellResult`.
    """
    from ..api import run  # lazy: repro.api imports the simulation package

    coordinates = dict(cell.coordinates)
    started = time.perf_counter()
    try:
        periods = cell.resolve(workers=workers, shard_timeout_s=shard_timeout_s)
        result = run(periods=periods)
        document = outcome_document(
            name=cell.name,
            labels=list(result.labels),
            datasets=list(result.datasets),
            coordinates=cell.coordinates,
        )
        metrics_json = dump_json(result.metrics_document())
    except Exception as error:  # a cell failing must not kill the grid
        return CellResult(
            name=cell.name,
            coordinates=coordinates,
            error=f"{type(error).__name__}: {error}",
            wall_time_s=time.perf_counter() - started,
        )
    return CellResult(
        name=cell.name,
        coordinates=coordinates,
        document=document,
        metrics_json=metrics_json,
        wall_time_s=time.perf_counter() - started,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    shard_timeout_s: Optional[float] = None,
    out_dir: Optional[Union[str, Path]] = None,
    cell_names: Optional[Sequence[str]] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Run the factorial grid (or the named subset) cell by cell.

    Cells execute in the spec's canonical order; each one shards across
    *workers* processes internally, so the grid keeps the record-identity
    contract cell by cell instead of racing cells against each other.
    With ``jobs > 1`` whole cells additionally run concurrently on a
    process pool (``repro sweep run --jobs``) — cells are independent
    seeded simulations, and every outcome is gathered, counted, written,
    and aggregated in the grid's canonical order regardless of completion
    order, so all report artifacts stay byte-identical to a serial run
    (docs/SCENARIOS.md).  *cell_names* restricts the run
    (``repro sweep run --cell``); unknown names raise before anything
    executes.  *progress* receives one line per cell as it finishes.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    cells_total = metrics.counter("sweeps.cells_total")
    cells_failed = metrics.counter("sweeps.cells_failed_total")
    grid = spec.cells()
    if cell_names is not None:
        by_name = {cell.name: cell for cell in grid}
        missing = sorted(set(cell_names) - set(by_name))
        if missing:
            raise KeyError(
                f"no cell(s) named {missing} in sweep {spec.name!r}; "
                f"grid: {[cell.name for cell in grid]}"
            )
        selected_names = set(cell_names)
        grid = [cell for cell in grid if cell.name in selected_names]

    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        spec.save(out_path / "sweep.json")

    if jobs > 1 and len(grid) > 1:
        # whole-cell parallelism: run_cell is a top-level picklable
        # function that never raises, so every future resolves to a
        # CellResult.  Futures are submitted AND gathered in grid order —
        # the post-processing below therefore sees exactly the serial
        # sequence, which is what keeps the artifacts byte-identical.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(grid))) as pool:
            futures = [
                pool.submit(
                    run_cell, cell, workers=workers, shard_timeout_s=shard_timeout_s
                )
                for cell in grid
            ]
            produced = iter([future.result() for future in futures])
    else:
        produced = (
            run_cell(cell, workers=workers, shard_timeout_s=shard_timeout_s)
            for cell in grid
        )

    results: List[CellResult] = []
    for result in produced:
        cells_total.inc()
        if not result.succeeded:
            cells_failed.inc()
        results.append(result)
        if out_path is not None:
            _write_cell(out_path, result)
        if progress is not None:
            status = (
                f"ok in {result.wall_time_s:.1f}s"
                if result.succeeded
                else f"FAILED ({result.error})"
            )
            progress(f"cell {len(results)}/{len(grid)} {result.name}: {status}")

    documents = {
        result.name: result.document for result in results if result.succeeded
    }
    failed = {
        result.name: result.error for result in results if not result.succeeded
    }
    report = aggregate_report(spec.name, documents, failed)
    sweep_result = SweepResult(
        spec=spec, cells=results, report=report, metrics=metrics, out_dir=out_path
    )
    if out_path is not None:
        write_report(report, out_path)
    return sweep_result


def _write_cell(out_dir: Path, result: CellResult) -> None:
    cell_dir = out_dir / "cells" / result.name
    cell_dir.mkdir(parents=True, exist_ok=True)
    if result.succeeded:
        assert result.document is not None and result.metrics_json is not None
        (cell_dir / "cell.json").write_text(
            dump_json(result.document), encoding="utf-8"
        )
        (cell_dir / "metrics.json").write_text(result.metrics_json, encoding="utf-8")
    else:
        (cell_dir / "error.txt").write_text(
            (result.error or "unknown error") + "\n", encoding="utf-8"
        )
