"""Geography model: cities, client placement, and great-circle distances.

The paper's network findings hinge on geography: >93% of clients are in
North America, CDN PoPs are US-based, and the tail-latency prefixes split
into far-away international clients (75%) and nearby enterprise clients
(25%, mostly within a few km of a PoP).  We model geography with a compact
city database — US cities that host PoPs, additional US client cities, and
international client cities spread over many countries — and place clients
in cities with small intra-city jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "City",
    "GeoPoint",
    "haversine_km",
    "propagation_rtt_ms",
    "US_POP_CITIES",
    "US_CLIENT_CITIES",
    "INTL_CLIENT_CITIES",
]

EARTH_RADIUS_KM = 6371.0

#: Round-trip propagation delay per kilometre of great-circle distance.
#: Light in fibre travels ~200 km/ms one-way; real paths are not great
#: circles (routing stretch ~1.5-2x), giving ~0.015-0.02 ms of RTT per km.
RTT_MS_PER_KM = 0.018


@dataclass(frozen=True)
class City:
    """A city in the model's map, with a client-population weight."""

    name: str
    country: str
    lat: float
    lon: float
    weight: float = 1.0


@dataclass(frozen=True)
class GeoPoint:
    """A concrete location (client or server)."""

    lat: float
    lon: float
    city: str
    country: str


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) points in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def propagation_rtt_ms(distance_km: float) -> float:
    """Map great-circle distance to round-trip propagation delay (ms)."""
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    return distance_km * RTT_MS_PER_KM


#: Cities hosting CDN PoPs (the paper's 85 servers sit in US PoPs).
US_POP_CITIES: Tuple[City, ...] = (
    City("New York", "US", 40.71, -74.01, 10.0),
    City("Washington DC", "US", 38.91, -77.04, 6.0),
    City("Atlanta", "US", 33.75, -84.39, 5.0),
    City("Miami", "US", 25.76, -80.19, 4.0),
    City("Chicago", "US", 41.88, -87.63, 8.0),
    City("Dallas", "US", 32.78, -96.80, 6.0),
    City("Denver", "US", 39.74, -104.99, 3.0),
    City("Los Angeles", "US", 34.05, -118.24, 9.0),
    City("San Jose", "US", 37.34, -121.89, 7.0),
    City("Seattle", "US", 47.61, -122.33, 4.0),
)

#: US cities where clients live (includes the PoP cities themselves, which
#: is what produces the "nearby enterprise with bad latency" population).
US_CLIENT_CITIES: Tuple[City, ...] = US_POP_CITIES + (
    City("Boston", "US", 42.36, -71.06, 4.0),
    City("Philadelphia", "US", 39.95, -75.17, 4.0),
    City("Houston", "US", 29.76, -95.37, 5.0),
    City("Phoenix", "US", 33.45, -112.07, 3.0),
    City("San Diego", "US", 32.72, -117.16, 3.0),
    City("San Francisco", "US", 37.77, -122.42, 4.0),
    City("Portland", "US", 45.52, -122.68, 2.0),
    City("Minneapolis", "US", 44.98, -93.27, 2.5),
    City("Detroit", "US", 42.33, -83.05, 2.5),
    City("St. Louis", "US", 38.63, -90.20, 2.0),
    City("Kansas City", "US", 39.10, -94.58, 1.5),
    City("Salt Lake City", "US", 40.76, -111.89, 1.2),
    City("Charlotte", "US", 35.23, -80.84, 2.0),
    City("Nashville", "US", 36.16, -86.78, 1.8),
    City("Orlando", "US", 28.54, -81.38, 2.0),
    City("Tampa", "US", 27.95, -82.46, 1.8),
    City("Pittsburgh", "US", 40.44, -79.99, 1.5),
    City("Cleveland", "US", 41.50, -81.69, 1.5),
    City("Cincinnati", "US", 39.10, -84.51, 1.3),
    City("Indianapolis", "US", 39.77, -86.16, 1.3),
    City("Columbus", "US", 39.96, -83.00, 1.3),
    City("Milwaukee", "US", 43.04, -87.91, 1.2),
    City("Austin", "US", 30.27, -97.74, 1.8),
    City("San Antonio", "US", 29.42, -98.49, 1.5),
    City("New Orleans", "US", 29.95, -90.07, 1.0),
    City("Raleigh", "US", 35.78, -78.64, 1.2),
    City("Richmond", "US", 37.54, -77.44, 1.0),
    City("Jacksonville", "US", 30.33, -81.66, 1.0),
    City("Memphis", "US", 35.15, -90.05, 1.0),
    City("Oklahoma City", "US", 35.47, -97.52, 0.9),
    City("Albuquerque", "US", 35.08, -106.65, 0.8),
    City("Las Vegas", "US", 36.17, -115.14, 1.2),
    City("Sacramento", "US", 38.58, -121.49, 1.2),
    City("Boise", "US", 43.62, -116.21, 0.5),
    City("Anchorage", "US", 61.22, -149.90, 0.3),
    City("Honolulu", "US", 21.31, -157.86, 0.4),
)

#: International client cities across many countries — the long-distance
#: population that dominates the tail-latency prefixes (75% of the tail in
#: the paper is outside the US, spread across 96 countries).
INTL_CLIENT_CITIES: Tuple[City, ...] = (
    City("Toronto", "CA", 43.65, -79.38, 6.0),
    City("Vancouver", "CA", 49.28, -123.12, 3.0),
    City("Montreal", "CA", 45.50, -73.57, 3.0),
    City("Mexico City", "MX", 19.43, -99.13, 3.0),
    City("Guadalajara", "MX", 20.67, -103.35, 1.0),
    City("London", "GB", 51.51, -0.13, 4.0),
    City("Manchester", "GB", 53.48, -2.24, 1.0),
    City("Dublin", "IE", 53.35, -6.26, 0.8),
    City("Paris", "FR", 48.86, 2.35, 2.0),
    City("Berlin", "DE", 52.52, 13.40, 1.5),
    City("Frankfurt", "DE", 50.11, 8.68, 1.0),
    City("Madrid", "ES", 40.42, -3.70, 1.2),
    City("Barcelona", "ES", 41.39, 2.17, 0.8),
    City("Rome", "IT", 41.90, 12.50, 1.0),
    City("Milan", "IT", 45.46, 9.19, 0.8),
    City("Amsterdam", "NL", 52.37, 4.90, 1.0),
    City("Brussels", "BE", 50.85, 4.35, 0.6),
    City("Zurich", "CH", 47.38, 8.54, 0.5),
    City("Vienna", "AT", 48.21, 16.37, 0.5),
    City("Stockholm", "SE", 59.33, 18.07, 0.6),
    City("Oslo", "NO", 59.91, 10.75, 0.4),
    City("Copenhagen", "DK", 55.68, 12.57, 0.5),
    City("Helsinki", "FI", 60.17, 24.94, 0.4),
    City("Warsaw", "PL", 52.23, 21.01, 0.7),
    City("Prague", "CZ", 50.08, 14.44, 0.5),
    City("Budapest", "HU", 47.50, 19.04, 0.4),
    City("Athens", "GR", 37.98, 23.73, 0.4),
    City("Lisbon", "PT", 38.72, -9.14, 0.4),
    City("Istanbul", "TR", 41.01, 28.98, 0.8),
    City("Moscow", "RU", 55.76, 37.62, 0.8),
    City("Kyiv", "UA", 50.45, 30.52, 0.4),
    City("Tel Aviv", "IL", 32.07, 34.78, 0.5),
    City("Dubai", "AE", 25.20, 55.27, 0.6),
    City("Riyadh", "SA", 24.71, 46.68, 0.4),
    City("Cairo", "EG", 30.04, 31.24, 0.5),
    City("Johannesburg", "ZA", -26.20, 28.05, 0.5),
    City("Lagos", "NG", 6.52, 3.38, 0.4),
    City("Nairobi", "KE", -1.29, 36.82, 0.3),
    City("Mumbai", "IN", 19.08, 72.88, 1.2),
    City("Delhi", "IN", 28.70, 77.10, 1.0),
    City("Bangalore", "IN", 12.97, 77.59, 0.8),
    City("Singapore", "SG", 1.35, 103.82, 0.8),
    City("Kuala Lumpur", "MY", 3.14, 101.69, 0.4),
    City("Bangkok", "TH", 13.76, 100.50, 0.5),
    City("Jakarta", "ID", -6.21, 106.85, 0.5),
    City("Manila", "PH", 14.60, 120.98, 0.5),
    City("Hong Kong", "HK", 22.32, 114.17, 0.7),
    City("Taipei", "TW", 25.03, 121.57, 0.5),
    City("Seoul", "KR", 37.57, 126.98, 0.8),
    City("Tokyo", "JP", 35.68, 139.69, 1.2),
    City("Osaka", "JP", 34.69, 135.50, 0.5),
    City("Sydney", "AU", -33.87, 151.21, 1.0),
    City("Melbourne", "AU", -37.81, 144.96, 0.8),
    City("Auckland", "NZ", -36.85, 174.76, 0.4),
    City("Sao Paulo", "BR", -23.55, -46.63, 1.2),
    City("Rio de Janeiro", "BR", -22.91, -43.17, 0.8),
    City("Buenos Aires", "AR", -34.60, -58.38, 0.8),
    City("Santiago", "CL", -33.45, -70.67, 0.5),
    City("Bogota", "CO", 4.71, -74.07, 0.5),
    City("Lima", "PE", -12.05, -77.04, 0.4),
)


#: sampling-CDF cache keyed by pool identity.  Keying on id() instead of
#: hashing avoids re-hashing every City in the pool per sample (the city
#: pools are module-level constants, so identity is stable); the cached
#: pool reference keeps each key's id from being recycled.
_CITY_CDF_CACHE: Dict[int, Tuple[Sequence[City], np.ndarray]] = {}


def _city_cdf(cities: Sequence[City]) -> np.ndarray:
    """Cached sampling CDF for a city pool (the exact array
    ``Generator.choice(p=...)`` would build internally on every call)."""
    cached = _CITY_CDF_CACHE.get(id(cities))
    if cached is not None and cached[0] is cities:
        return cached[1]
    weights = np.asarray([c.weight for c in cities], dtype=float)
    weights /= weights.sum()
    cdf = weights.cumsum()
    cdf /= cdf[-1]
    _CITY_CDF_CACHE[id(cities)] = (cities, cdf)
    return cdf


def sample_city(rng: np.random.Generator, cities: Sequence[City]) -> City:
    """Sample a city proportionally to its population weight."""
    # searchsorted over the cached CDF consumes one uniform draw — the
    # same draw, producing the same index, as rng.choice(len, p=weights).
    cdf = _city_cdf(cities)
    return cities[int(cdf.searchsorted(rng.random(), side="right"))]


def jittered_point(rng: np.random.Generator, city: City, spread_km: float = 25.0) -> GeoPoint:
    """Place a point near *city* with Gaussian jitter of ~spread_km."""
    # 1 degree latitude ~ 111 km; longitude scaled by cos(lat).
    # scale * standard_normal() is rng.normal(0.0, scale) without numpy's
    # scalar-broadcast overhead (same single draw, same value).
    dlat = (spread_km / 111.0) * float(rng.standard_normal())
    coslat = max(0.1, math.cos(math.radians(city.lat)))
    dlon = (spread_km / (111.0 * coslat)) * float(rng.standard_normal())
    return GeoPoint(lat=city.lat + dlat, lon=city.lon + dlon, city=city.name, country=city.country)


def distance_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points."""
    return haversine_km(a.lat, a.lon, b.lat, b.lon)


def all_countries() -> List[str]:
    """Distinct countries present in the client map (US + international)."""
    countries = {c.country for c in US_CLIENT_CITIES} | {c.country for c in INTL_CLIENT_CITIES}
    return sorted(countries)
