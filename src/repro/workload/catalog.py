"""Video catalog: titles, durations, bitrate ladder, and chunking.

§3 of the paper: all chunks carry six seconds of video (except possibly the
last), video lengths span ~10 s to hours with a long tail (Fig. 3(a)), and
each title is offered at multiple bitrates for the ABR to pick from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from .popularity import PopularityModel
from .randomness import spawn

__all__ = [
    "CHUNK_DURATION_MS",
    "DEFAULT_BITRATE_LADDER_KBPS",
    "Video",
    "Catalog",
    "chunk_size_bytes",
]

#: All chunks contain six seconds of video (§3).
CHUNK_DURATION_MS: float = 6000.0

#: A typical VoD bitrate ladder (kbps).  The paper reports session bitrates
#: from a few hundred kbps to several Mbps (Fig. 11(b)).
DEFAULT_BITRATE_LADDER_KBPS: Tuple[int, ...] = (235, 375, 560, 750, 1050, 1750, 2350, 3000)

#: Encoded frame rate; used by the rendering model to convert a drop
#: fraction into dropped-frame counts per chunk.
FRAMES_PER_SECOND: float = 30.0


def chunk_size_bytes(bitrate_kbps: float, duration_ms: float = CHUNK_DURATION_MS) -> int:
    """Size in bytes of a chunk of *duration_ms* encoded at *bitrate_kbps*."""
    if bitrate_kbps <= 0:
        raise ValueError("bitrate must be positive")
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    return int(bitrate_kbps * duration_ms / 8.0)  # kbit/s * ms = bits/8 -> bytes


@dataclass(frozen=True)
class Video:
    """One title in the catalog."""

    video_id: int
    rank: int  # zero-based popularity rank; 0 = most popular
    duration_ms: float
    bitrates_kbps: Tuple[int, ...] = DEFAULT_BITRATE_LADDER_KBPS

    @property
    def n_chunks(self) -> int:
        """Number of 6-second chunks (last chunk may be shorter)."""
        return max(1, int(np.ceil(self.duration_ms / CHUNK_DURATION_MS)))

    def chunk_duration_ms(self, chunk_index: int) -> float:
        """Duration of the chunk at *chunk_index* (only the last is short)."""
        if not 0 <= chunk_index < self.n_chunks:
            raise ValueError(f"chunk_index {chunk_index} out of range for {self.n_chunks} chunks")
        if chunk_index < self.n_chunks - 1:
            return CHUNK_DURATION_MS
        remainder = self.duration_ms - CHUNK_DURATION_MS * (self.n_chunks - 1)
        return remainder if remainder > 0 else CHUNK_DURATION_MS

    def chunk_bytes(self, chunk_index: int, bitrate_kbps: float) -> int:
        """Encoded size of one chunk at the given bitrate."""
        return chunk_size_bytes(bitrate_kbps, self.chunk_duration_ms(chunk_index))


@dataclass
class Catalog:
    """The full set of videos plus their popularity model."""

    videos: Sequence[Video]
    popularity: PopularityModel = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.videos:
            raise ValueError("catalog must contain at least one video")
        if self.popularity is None:
            self.popularity = PopularityModel(n_videos=len(self.videos))
        if self.popularity.n_videos != len(self.videos):
            raise ValueError("popularity model size must match the catalog")

    def __len__(self) -> int:
        return len(self.videos)

    def __getitem__(self, video_id: int) -> Video:
        return self.videos[video_id]

    def sample_videos(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample *size* video ids according to popularity.

        Video ids are assigned in rank order at generation time, so a rank
        is also a video id; we keep the two concepts separate in the API
        because real catalogs do not have that property.
        """
        ranks = self.popularity.sample_ranks(rng, size)
        return ranks  # id == rank by construction (see generate_catalog)


def sample_duration_ms(rng: np.random.Generator) -> float:
    """Sample a video duration matching Fig. 3(a)'s long-tailed CCDF.

    The bulk of the catalog is short-form news/clip content (tens of
    seconds to a few minutes) with a heavy tail out to hours.  A lognormal
    with median ~90 s and a wide shape parameter reproduces the figure's
    straight-ish CCDF decay between 10^1 and 10^4 seconds.
    """
    median_s = 90.0
    sigma = 1.1
    duration_s = float(rng.lognormal(np.log(median_s), sigma))
    return float(np.clip(duration_s, 10.0, 4.0 * 3600.0)) * 1000.0


def generate_catalog(
    n_videos: int = 10_000,
    seed: int = 0,
    zipf_alpha: float = 0.8,
    bitrates_kbps: Tuple[int, ...] = DEFAULT_BITRATE_LADDER_KBPS,
) -> Catalog:
    """Generate a synthetic catalog with Zipf popularity and long-tail lengths."""
    if n_videos <= 0:
        raise ValueError("n_videos must be positive")
    if not bitrates_kbps:
        raise ValueError("bitrate ladder must be non-empty")
    if list(bitrates_kbps) != sorted(bitrates_kbps):
        raise ValueError("bitrate ladder must be sorted ascending")
    rng = spawn(seed, "catalog")
    videos = [
        Video(
            video_id=i,
            rank=i,
            duration_ms=sample_duration_ms(rng),
            bitrates_kbps=tuple(bitrates_kbps),
        )
        for i in range(n_videos)
    ]
    popularity = PopularityModel(n_videos=n_videos, alpha=zipf_alpha)
    return Catalog(videos=videos, popularity=popularity)
