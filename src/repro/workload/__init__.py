"""Synthetic workload generation: catalog, clients, geography, sessions."""

from .catalog import (
    CHUNK_DURATION_MS,
    DEFAULT_BITRATE_LADDER_KBPS,
    Catalog,
    Video,
    chunk_size_bytes,
    generate_catalog,
)
from .clients import Client, ClientPopulation, PopulationConfig, Prefix, generate_population
from .popularity import PopularityModel
from .sessions import SessionGenerator, SessionPlan

__all__ = [
    "CHUNK_DURATION_MS",
    "DEFAULT_BITRATE_LADDER_KBPS",
    "Catalog",
    "Video",
    "chunk_size_bytes",
    "generate_catalog",
    "Client",
    "ClientPopulation",
    "PopulationConfig",
    "Prefix",
    "generate_population",
    "PopularityModel",
    "SessionGenerator",
    "SessionPlan",
]
