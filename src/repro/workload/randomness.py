"""Deterministic randomness utilities for workload generation.

Every stochastic component of the simulator draws from a
:class:`numpy.random.Generator` that is derived from a single root seed, so a
simulation run is fully reproducible.  Components that need independent
streams (catalog generation, client sampling, per-session network noise, ...)
obtain child generators via :func:`spawn` with a stable string label; this
prevents a change in how one component consumes randomness from perturbing
every other component.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterator

import numpy as np

__all__ = [
    "make_rng",
    "spawn",
    "session_rng",
    "bounded_lognormal",
    "bounded_normal",
    "stable_hash64",
]


def stable_hash64(label: str) -> int:
    """Return a stable 64-bit integer hash of *label*.

    Python's builtin ``hash`` is randomized per-process, so it cannot be used
    to derive reproducible seeds.  We use BLAKE2b which is fast and stable.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def make_rng(seed: int) -> np.random.Generator:
    """Create the root generator for a simulation run."""
    return np.random.default_rng(seed)


def spawn(seed: int, label: str) -> np.random.Generator:
    """Derive an independent generator from (root seed, component label)."""
    return np.random.default_rng(np.random.SeedSequence([seed, stable_hash64(label)]))


def session_rng(seed: int, session_index: int) -> np.random.Generator:
    """Derive the per-session generator used for all in-session noise."""
    return np.random.default_rng(
        np.random.SeedSequence([seed, stable_hash64("session"), session_index])
    )


def bounded_lognormal(
    rng: np.random.Generator,
    mean: float,
    sigma: float,
    low: float = 0.0,
    high: float = float("inf"),
) -> float:
    """Sample a lognormal with given *linear-space* mean, clipped to [low, high].

    ``mean`` is the desired expectation of the distribution (not the mean of
    the underlying normal); ``sigma`` is the shape parameter of the underlying
    normal.  Clipping is by rejection with a deterministic fallback to the
    bound after a few attempts, so extreme sigmas cannot loop forever.
    """
    if mean <= 0:
        return max(low, 0.0)
    # exp(mu + sigma * z) is bit-identical to rng.lognormal(mu, sigma) and
    # consumes the same single draw, but skips numpy's per-call scalar
    # broadcasting overhead on this very hot call site.
    mu = math.log(mean) - 0.5 * sigma * sigma
    for _ in range(8):
        value = math.exp(mu + sigma * float(rng.standard_normal()))
        if low <= value <= high:
            return value
    return float(min(max(mean, low), high))


def bounded_normal(
    rng: np.random.Generator,
    mean: float,
    sigma: float,
    low: float = 0.0,
    high: float = float("inf"),
) -> float:
    """Sample a normal clipped to [low, high] (rejection with fallback)."""
    for _ in range(8):
        value = float(rng.normal(mean, sigma))
        if low <= value <= high:
            return value
    return float(min(max(mean, low), high))


def weighted_choice_indices(
    rng: np.random.Generator, weights: np.ndarray, size: int
) -> Iterator[int]:
    """Yield *size* indices sampled proportionally to *weights*."""
    probabilities = np.asarray(weights, dtype=float)
    probabilities = probabilities / probabilities.sum()
    for index in rng.choice(len(probabilities), size=size, p=probabilities):
        yield int(index)
