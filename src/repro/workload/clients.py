"""Client population: prefixes, ISPs/organizations, platforms, host resources.

The unit of long-term aggregation in the paper is the /24 IP prefix (§4.2):
prefix-stable properties (geography, access type, enterprise path quality)
are what make problems *persistent*.  We therefore generate a population of
prefixes first — each with fixed network characteristics — and then sample
sessions from prefixes, so that repeated sessions from the same prefix see
the same underlying path quality.

The population reproduces the paper's §3 demographics: >93% of clients in
North America, the §3 browser/OS mix (via :mod:`repro.client.browsers`),
residential vs enterprise access (Table 4: enterprise paths have wildly
higher RTT variability; Fig. 9: most nearby tail-latency prefixes are
enterprises), and HTTP proxies that must be filtered in preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..client.browsers import PlatformProfile, sample_platform, user_agent_string
from . import geo
from .randomness import bounded_lognormal, spawn, stable_hash64

__all__ = [
    "Prefix",
    "Client",
    "ClientPopulation",
    "PopulationConfig",
    "generate_population",
]

RESIDENTIAL_US_ISPS: Tuple[str, ...] = (
    "Comcast",
    "Verizon",
    "AT&T",
    "Charter",
    "Cox",
    "CenturyLink",
)


def _sampling_cdf(probabilities: Sequence[float]) -> np.ndarray:
    """The exact CDF array ``Generator.choice(p=...)`` builds per call.

    ``cdf.searchsorted(rng.random(), side="right")`` consumes the same
    single uniform draw and returns the same index as the equivalent
    ``rng.choice`` — precomputing it keeps hot sampling sites off numpy's
    per-call validation and cumsum.
    """
    p = np.asarray(probabilities, dtype=float)
    cdf = p.cumsum()
    cdf /= cdf[-1]
    return cdf


_CONN_TYPES: Tuple[str, ...] = ("cable", "fiber", "dsl")
_CONN_CDF = _sampling_cdf([0.6, 0.25, 0.15])
_CPU_CORES: Tuple[int, ...] = (2, 4, 8)
_CPU_CDF = _sampling_cdf([0.35, 0.45, 0.20])


@dataclass(frozen=True)
class Prefix:
    """A /24 client prefix with stable path characteristics.

    ``access_rtt_ms`` is the last-mile/access round-trip component;
    ``path_inflation_ms`` is extra round-trip latency from enterprise
    hairpins/VPNs or chronically bad routing (zero for healthy prefixes);
    ``jitter_sigma`` shapes the per-RTT lognormal noise (enterprise paths
    get large sigmas, producing the CV(SRTT) > 1 sessions of Table 4).
    """

    prefix_id: str
    geo: geo.GeoPoint
    country: str
    org: str
    access: str  # "residential" | "enterprise"
    conn_type: str  # "cable" | "fiber" | "dsl" | "corporate"
    access_rtt_ms: float
    path_inflation_ms: float
    jitter_sigma: float
    loss_rate_mean: float
    bandwidth_mean_kbps: float
    proxy_ip: Optional[str] = None
    #: transparent proxies rewrite both sides consistently (ISP middleboxes);
    #: non-transparent (enterprise) proxies are visible as an IP mismatch
    proxy_transparent: bool = False

    @property
    def is_enterprise(self) -> bool:
        return self.access == "enterprise"

    @property
    def behind_proxy(self) -> bool:
        return self.proxy_ip is not None

    def host_ip(self, host: int) -> str:
        """Dotted-quad address of a host inside this /24."""
        if not 0 < host < 255:
            raise ValueError("host must be in 1..254")
        base = self.prefix_id.split("/", 1)[0].rsplit(".", 1)[0]
        return f"{base}.{host}"


@dataclass(frozen=True)
class Client:
    """One session's client: a host inside a prefix plus local resources."""

    prefix: Prefix
    ip: str
    platform: PlatformProfile
    user_agent: str
    gpu: bool
    cpu_cores: int
    cpu_background_load: float  # fraction of total CPU consumed by other apps
    bandwidth_kbps: float

    @property
    def cdn_visible_ip(self) -> str:
        """The IP the CDN sees (the proxy's, if the prefix is proxied)."""
        return self.prefix.proxy_ip if self.prefix.proxy_ip else self.ip

    @property
    def beacon_ip(self) -> str:
        """The client IP recorded with player beacons.

        A transparent proxy rewrites the beacon path too, so both sides
        agree on the proxy's address; an explicit enterprise proxy leaks
        the internal address on the beacon side.
        """
        if self.prefix.proxy_ip and self.prefix.proxy_transparent:
            return self.prefix.proxy_ip
        return self.ip


@dataclass
class PopulationConfig:
    """Knobs for the synthetic client population."""

    n_prefixes: int = 4000
    us_fraction: float = 0.93  # §3: >93% of clients in North America (we use US)
    enterprise_fraction: float = 0.13
    #: fraction of enterprise prefixes with a chronically inflated path
    #: (hairpin/VPN) — these become the nearby tail-latency prefixes of Fig. 9
    enterprise_bad_path_fraction: float = 0.35
    #: proxies: most enterprise orgs front their clients with an HTTP proxy;
    #: a small share of residential ISPs also run transparent proxies (§3)
    enterprise_proxy_fraction: float = 0.35
    residential_proxy_fraction: float = 0.08
    n_enterprises: int = 15
    seed: int = 0


def _make_prefix_id(index: int) -> str:
    """Synthesize a unique, valid-looking /24 prefix id."""
    a = 10 + (index // (250 * 250)) % 240
    b = (index // 250) % 250 + 1
    c = index % 250 + 1
    return f"{a}.{b}.{c}.0/24"


def _residential_prefix(
    rng: np.random.Generator, index: int, city: geo.City, country: str, proxied: bool
) -> Prefix:
    """Build a residential prefix: low jitter, moderate access latency."""
    if country == "US":
        org = RESIDENTIAL_US_ISPS[int(rng.integers(0, len(RESIDENTIAL_US_ISPS)))]
    else:
        org = f"ISP-{country}-{int(rng.integers(1, 4))}"
    conn_type = _CONN_TYPES[int(_CONN_CDF.searchsorted(rng.random(), side="right"))]
    access_rtt = {
        "cable": bounded_lognormal(rng, 14.0, 0.4, 4.0, 60.0),
        "fiber": bounded_lognormal(rng, 6.0, 0.3, 2.0, 25.0),
        "dsl": bounded_lognormal(rng, 28.0, 0.4, 8.0, 90.0),
    }[conn_type]
    bandwidth = {
        "cable": bounded_lognormal(rng, 30_000.0, 0.6, 3_000.0, 300_000.0),
        "fiber": bounded_lognormal(rng, 80_000.0, 0.5, 10_000.0, 1_000_000.0),
        "dsl": bounded_lognormal(rng, 8_000.0, 0.5, 1_500.0, 40_000.0),
    }[conn_type]
    # Residential jitter is low: ~1% of sessions end up with CV(SRTT) > 1.
    jitter_sigma = bounded_lognormal(rng, 0.08, 0.5, 0.02, 0.5)
    # Transparent ISP proxies: one shared egress IP per ISP — both sides of
    # the instrumentation see the proxy's address, so these sessions are
    # only detectable by their absurd per-IP session volume (§3, rule ii).
    proxy_ip = f"203.0.113.{stable_hash64('proxy|' + org) % 250 + 1}" if proxied else None
    return Prefix(
        prefix_id=_make_prefix_id(index),
        geo=geo.jittered_point(rng, city),
        country=country,
        org=org,
        access="residential",
        conn_type=conn_type,
        access_rtt_ms=access_rtt,
        path_inflation_ms=0.0,
        jitter_sigma=jitter_sigma,
        loss_rate_mean=bounded_lognormal(rng, 0.004, 1.0, 0.0, 0.08),
        bandwidth_mean_kbps=bandwidth,
        proxy_ip=proxy_ip,
        proxy_transparent=True,
    )


def _enterprise_prefix(
    rng: np.random.Generator,
    index: int,
    city: geo.City,
    country: str,
    org: str,
    bad_path: bool,
    proxied: bool,
) -> Prefix:
    """Build an enterprise prefix: high jitter, possibly inflated path.

    Enterprise paths traverse middleboxes, VPN concentrators, and
    under-provisioned egress links — §4.2-1/2's explanation for both the
    close-by tail-latency prefixes and the CV(SRTT) > 1 sessions.
    """
    inflation = bounded_lognormal(rng, 110.0, 0.5, 40.0, 400.0) if bad_path else 0.0
    # Enterprise jitter is high: a large share of enterprise sessions
    # (~40% in the paper's Table 4) end up with CV(SRTT) > 1.
    jitter_sigma = bounded_lognormal(rng, 0.9, 0.6, 0.2, 3.0)
    # Explicit enterprise proxies: the CDN sees the org's egress IP while
    # the beacon reports the internal client address (§3, rule i).
    proxy_ip = f"198.51.100.{stable_hash64('proxy|' + org) % 250 + 1}" if proxied else None
    return Prefix(
        prefix_id=_make_prefix_id(index),
        geo=geo.jittered_point(rng, city, spread_km=8.0),
        country=country,
        org=org,
        access="enterprise",
        conn_type="corporate",
        access_rtt_ms=bounded_lognormal(rng, 18.0, 0.5, 5.0, 80.0),
        path_inflation_ms=inflation,
        jitter_sigma=jitter_sigma,
        loss_rate_mean=bounded_lognormal(rng, 0.006, 1.0, 0.0, 0.10),
        bandwidth_mean_kbps=bounded_lognormal(rng, 40_000.0, 0.8, 2_000.0, 500_000.0),
        proxy_ip=proxy_ip,
    )


@dataclass
class ClientPopulation:
    """The generated prefix pool plus helpers to sample per-session clients."""

    prefixes: Sequence[Prefix]
    config: PopulationConfig
    _weights: np.ndarray = field(init=False, repr=False)
    _cdf: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ValueError("population must contain at least one prefix")
        # Session volume per prefix is itself skewed (a few big orgs and
        # dense residential prefixes generate many sessions).
        rng = spawn(self.config.seed, "prefix-weights")
        weights = rng.pareto(2.0, size=len(self.prefixes)) + 1.0
        self._weights = weights / weights.sum()
        # Sampling CDF precomputed once: rng.choice(p=...) cumsums the full
        # 4000-element weight vector on every single session otherwise.
        self._cdf = self._weights.cumsum()
        self._cdf /= self._cdf[-1]

    def sample_client(self, rng: np.random.Generator) -> Client:
        """Sample a session's client: prefix, host, platform, resources."""
        prefix = self.prefixes[int(self._cdf.searchsorted(rng.random(), side="right"))]
        platform = sample_platform(rng)
        gpu = bool(rng.random() < 0.35)
        cpu_cores = _CPU_CORES[int(_CPU_CDF.searchsorted(rng.random(), side="right"))]
        # Background CPU load: usually light, occasionally heavy.
        beta = float(rng.beta(1.3, 6.0))
        cpu_background_load = 0.0 if beta < 0.0 else (0.95 if beta > 0.95 else beta)
        bandwidth = bounded_lognormal(
            rng, prefix.bandwidth_mean_kbps, 0.35, 1_000.0, 1_000_000.0
        )
        return Client(
            prefix=prefix,
            ip=prefix.host_ip(int(rng.integers(1, 255))),
            platform=platform,
            user_agent=user_agent_string(platform),
            gpu=gpu,
            cpu_cores=cpu_cores,
            cpu_background_load=cpu_background_load,
            bandwidth_kbps=bandwidth,
        )

    def enterprise_orgs(self) -> List[str]:
        """Distinct enterprise organization names in the population."""
        return sorted({p.org for p in self.prefixes if p.is_enterprise})


def generate_population(config: Optional[PopulationConfig] = None) -> ClientPopulation:
    """Generate the prefix population from a :class:`PopulationConfig`."""
    config = config or PopulationConfig()
    if config.n_prefixes <= 0:
        raise ValueError("n_prefixes must be positive")
    rng = spawn(config.seed, "population")

    # Enterprise orgs have skewed sizes (Table 4 spans 69 .. 11,731 sessions)
    # and each org is anchored to one US city (enterprises are campuses).
    org_names = [f"Enterprise#{i + 1}" for i in range(config.n_enterprises)]
    org_sizes = np.random.default_rng(config.seed + 1).pareto(1.2, config.n_enterprises) + 1.0
    org_sizes /= org_sizes.sum()
    org_cdf = org_sizes.cumsum()
    org_cdf /= org_cdf[-1]
    org_cities = [geo.sample_city(rng, geo.US_CLIENT_CITIES) for _ in org_names]

    prefixes: List[Prefix] = []
    for index in range(config.n_prefixes):
        enterprise = rng.random() < config.enterprise_fraction
        if enterprise:
            org_index = int(org_cdf.searchsorted(rng.random(), side="right"))
            bad_path = rng.random() < config.enterprise_bad_path_fraction
            proxied = rng.random() < config.enterprise_proxy_fraction
            prefixes.append(
                _enterprise_prefix(
                    rng,
                    index,
                    org_cities[org_index],
                    "US",
                    org_names[org_index],
                    bad_path,
                    proxied,
                )
            )
        else:
            in_us = rng.random() < config.us_fraction
            city = geo.sample_city(
                rng, geo.US_CLIENT_CITIES if in_us else geo.INTL_CLIENT_CITIES
            )
            proxied = rng.random() < config.residential_proxy_fraction
            prefixes.append(_residential_prefix(rng, index, city, city.country, proxied))
    return ClientPopulation(prefixes=prefixes, config=config)
