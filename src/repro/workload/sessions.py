"""Session arrival process and per-session viewing plans.

A session plan fixes everything decided *before* playback starts: which
client, which video, when the session starts, how many chunks the user is
willing to watch (abandonment), and per-chunk visibility (hidden tabs /
minimized windows drop frames intentionally, §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from .catalog import Catalog, Video
from .clients import Client, ClientPopulation
from .randomness import session_rng, spawn

__all__ = ["SessionPlan", "SessionGenerator"]


@dataclass(frozen=True)
class SessionPlan:
    """Everything about a session that is fixed before the first request."""

    session_id: str
    session_index: int
    start_ms: float
    client: Client
    video: Video
    #: number of chunks the user intends to watch (abandonment-truncated)
    watch_chunks: int
    #: per-chunk player visibility (False = hidden tab / minimized window)
    visibility: tuple

    @property
    def n_chunks(self) -> int:
        return self.watch_chunks


def _sample_watch_chunks(
    rng: np.random.Generator,
    video: Video,
    median_chunks: float = 5.0,
    sigma: float = 0.9,
) -> int:
    """How many chunks does the user actually watch?

    Viewing time is long-tailed: many viewers abandon within the first few
    chunks, some watch to the end.  Fig. 11(a)'s session-length CDF has a
    median of roughly 4-6 chunks with a tail past 20; a geometric-like
    lognormal truncated by the video length reproduces that.  The
    median/shape are configurable so short-session workloads (e.g. the
    skewed portal traffic of Grammenos et al.) can be expressed without a
    new sampler.
    """
    intended = int(round(rng.lognormal(np.log(median_chunks), sigma)))
    intended = max(1, intended)
    return min(intended, video.n_chunks)


def _sample_visibility(rng: np.random.Generator, n_chunks: int) -> tuple:
    """Per-chunk visibility: occasional hidden-tab episodes.

    Hidden playback tends to come in runs (the user switches away and back),
    so we model a two-state Markov chain rather than i.i.d. coin flips.
    """
    p_hide = 0.015  # chance of switching away at each chunk boundary
    p_return = 0.35  # chance of coming back
    visible = True
    flags: List[bool] = []
    for _ in range(n_chunks):
        if visible and rng.random() < p_hide:
            visible = False
        elif not visible and rng.random() < p_return:
            visible = True
        flags.append(visible)
    return tuple(flags)


@dataclass
class SessionGenerator:
    """Generates a stream of :class:`SessionPlan` objects.

    Arrivals follow a homogeneous Poisson process with the configured rate;
    the video is drawn from the catalog's popularity model and the client
    from the prefix population.
    """

    catalog: Catalog
    population: ClientPopulation
    seed: int = 0
    arrival_rate_per_s: float = 10.0
    #: abandonment model: median / lognormal shape of the watch-chunk draw
    watch_median_chunks: float = 5.0
    watch_sigma_chunks: float = 0.9

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.watch_median_chunks <= 0:
            raise ValueError("watch_median_chunks must be positive")
        if self.watch_sigma_chunks < 0:
            raise ValueError("watch_sigma_chunks must be non-negative")

    def generate(self, n_sessions: int, start_ms: float = 0.0) -> Iterator[SessionPlan]:
        """Yield *n_sessions* plans in arrival order."""
        if n_sessions < 0:
            raise ValueError("n_sessions must be non-negative")
        arrival_rng = spawn(self.seed, "arrivals")
        choice_rng = spawn(self.seed, "session-choices")
        video_ids = self.catalog.sample_videos(choice_rng, n_sessions)
        t = start_ms
        for index in range(n_sessions):
            t += float(arrival_rng.exponential(1000.0 / self.arrival_rate_per_s))
            rng = session_rng(self.seed, index)
            client = self.population.sample_client(rng)
            video = self.catalog[int(video_ids[index])]
            watch = _sample_watch_chunks(
                rng, video, self.watch_median_chunks, self.watch_sigma_chunks
            )
            yield SessionPlan(
                session_id=f"s{self.seed:04d}-{index:08d}",
                session_index=index,
                start_ms=t,
                client=client,
                video=video,
                watch_chunks=watch,
                visibility=_sample_visibility(rng, watch),
            )

    def generate_list(self, n_sessions: int, start_ms: float = 0.0) -> List[SessionPlan]:
        """Materialize :meth:`generate` into a list."""
        return list(self.generate(n_sessions, start_ms))
