"""Video popularity model (Zipf-like, heavily skewed toward the head).

§3 of the paper: "video viewership and popularity of videos is heavily
skewed towards popular content ... top 10% of most popular videos receive
about 66% of all playbacks" (Fig. 3(b)).  A Zipf exponent near 0.8 over a
catalog of ~10k titles reproduces that 10%→~66% concentration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import zipf_weights

__all__ = ["PopularityModel"]


@dataclass
class PopularityModel:
    """Zipf popularity over a catalog of *n_videos* titles.

    Rank 0 is the most popular video (the paper plots rank 1 first; we keep
    zero-based ranks internally and convert at presentation time).
    """

    n_videos: int
    alpha: float = 0.8

    def __post_init__(self) -> None:
        if self.n_videos <= 0:
            raise ValueError("n_videos must be positive")
        self._weights = zipf_weights(self.n_videos, self.alpha)
        self._cumulative = np.cumsum(self._weights)

    @property
    def weights(self) -> np.ndarray:
        """Normalized per-rank request probabilities (rank-ordered)."""
        return self._weights

    def sample_ranks(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample *size* video ranks according to popularity.

        Uses inverse-CDF sampling on the precomputed cumulative weights,
        which is much faster than `rng.choice` with an explicit `p` for
        large catalogs.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        u = rng.random(size)
        return np.searchsorted(self._cumulative, u, side="left").astype(np.int64)

    def top_fraction_mass(self, fraction: float) -> float:
        """Share of requests going to the top *fraction* of videos.

        The paper's headline skew statistic: ``top_fraction_mass(0.10)``
        should be ≈0.66 for the default catalog.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        k = max(1, int(round(self.n_videos * fraction)))
        return float(self._cumulative[k - 1])

    def rank_probability(self, rank: int) -> float:
        """Request probability of the video at zero-based *rank*."""
        if not 0 <= rank < self.n_videos:
            raise ValueError("rank out of range")
        return float(self._weights[rank])
