"""The live service core: continuous rounds, windows, online localization.

:class:`LiveService` is what ``repro serve`` runs: it owns a
:class:`~repro.simulation.driver.Simulator` on the checkpointed clock
(:meth:`~repro.simulation.driver.Simulator.run_round`), feeds each
round's joined sessions into the rolling windows and the streaming
accumulators of :mod:`repro.core.streaming`, runs the online incident
detector over every window the round sealed, and scores detections live
against the injected FaultSpec epochs.

Thread model: one writer (the round loop calling :meth:`step`), any
number of HTTP readers.  A single lock serializes steps against snapshot
reads; rounds are short, so readers block for milliseconds.  Everything
a reader sees is a deterministic function of (config, rounds stepped) —
two same-seed services stepped the same number of rounds serve
byte-identical ``/metrics`` and ``/windows`` payloads regardless of
polling, the service-mode extension of the determinism contract.

Memory stays flat in run duration by construction: per-round telemetry
is dropped after folding, sealed windows live in a bounded deque, the
cumulative accumulators hold O(1) state, and the trace ring keeps only
the newest ``max_trace_events`` events (docs/TELEMETRY.md budget model).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from .. import __version__
from ..core.localization import diagnose_session
from ..core.streaming import FaultScoreAccumulator, LocalizationAccumulator
from ..obs.manifest import MANIFEST_SCHEMA, MANIFEST_SCHEMA_VERSION, config_hash
from ..obs.trace import TRACE_SCHEMA, TraceEvent, event_json_line
from ..simulation.config import SimulationConfig
from ..simulation.driver import Simulator
from .online import FaultScoreboard, IncidentDetector
from .windows import RollingWindows

__all__ = ["LiveService"]


class LiveService:
    """Continuous arrivals + rolling windows + online localization."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        window_ms: float = 10_000.0,
        sessions_per_round: Optional[int] = None,
        retain_windows: int = 256,
        threshold: float = 0.6,
        min_chunks: int = 64,
        max_trace_events: int = 4096,
    ) -> None:
        self.config = config or SimulationConfig()
        self.window_ms = float(window_ms)
        self.sessions_per_round = (
            sessions_per_round
            if sessions_per_round is not None
            else self.config.n_sessions
        )
        self._lock = threading.Lock()
        self._sim = Simulator(self.config)
        self._windows = RollingWindows(window_ms, retain=retain_windows)
        self._detector = IncidentDetector(threshold=threshold, min_chunks=min_chunks)
        self._scoreboard = FaultScoreboard(
            self.config.faults, window_ms, min_chunks=min_chunks
        )
        self._localization = LocalizationAccumulator()
        self._faultscore = FaultScoreAccumulator()
        self._max_trace_events = int(max_trace_events)
        self._trace_ring: List[TraceEvent] = []
        self._rounds = 0
        self._n_sessions = 0
        self._n_chunks = 0
        self._measured_s = 0.0  # wall time spent inside step()
        self._started = time.time()

    # -- the round loop ------------------------------------------------------

    def step(self) -> Dict[str, Any]:
        """Run one arrival round end to end; returns a round summary."""
        started = time.perf_counter()
        with self._lock:
            with self._sim.metrics.span("serve.round"):
                result = self._sim.run_round(
                    self._rounds, n_sessions=self.sessions_per_round
                )
                round_sessions = round_chunks = 0
                for view in result.dataset.iter_sessions():
                    diagnosis = diagnose_session(view)
                    self._windows.fold(view, diagnosis)
                    self._localization.update(view, diagnosis=diagnosis)
                    self._faultscore.update(view, diagnosis=diagnosis)
                    round_sessions += 1
                    round_chunks += view.n_chunks
                sealed = self._windows.seal_through(self._sim.clock_ms)
                incidents_before = self._detector.n_opened
                for window in sealed:
                    flagged = self._detector.observe(window)
                    self._scoreboard.observe(window, flagged)
                self._drain_trace()
                self._rounds += 1
                self._n_sessions += round_sessions
                self._n_chunks += round_chunks
                metrics = self._sim.metrics
                metrics.counter("serve.rounds_total").inc()
                metrics.counter("serve.windows_sealed_total").inc(len(sealed))
                metrics.counter("serve.incidents_total").inc(
                    self._detector.n_opened - incidents_before
                )
            self._measured_s += time.perf_counter() - started
            return {
                "round": self._rounds - 1,
                "sessions": round_sessions,
                "chunks": round_chunks,
                "windows_sealed": len(sealed),
                "clock_ms": round(self._sim.clock_ms, 6),
                "incidents_open": self._detector.n_open,
            }

    def _drain_trace(self) -> None:
        """Move this round's trace events into the bounded ring."""
        trace = self._sim.trace
        if trace is None or trace.n_events == 0:
            return
        self._trace_ring.extend(trace.events())
        trace.adopt_sorted([])
        if len(self._trace_ring) > self._max_trace_events:
            del self._trace_ring[: -self._max_trace_events]

    def run_rounds(self, n: int) -> List[Dict[str, Any]]:
        """Step *n* rounds; returns the per-round summaries."""
        return [self.step() for _ in range(n)]

    # -- snapshots (HTTP plane reads) ----------------------------------------

    def metrics_document(self) -> Dict[str, Any]:
        """The deterministic ``/metrics`` payload (identity + registry).

        Same shape as a batch run's ``--metrics-out`` document, so
        ``repro metrics diff`` compares two service snapshots directly.
        """
        with self._lock:
            return {
                "manifest": {
                    "schema": MANIFEST_SCHEMA,
                    "schema_version": MANIFEST_SCHEMA_VERSION,
                    "package_version": __version__,
                    "seed": self.config.seed,
                    "config_hash": config_hash(self.config),
                    "n_sessions": self._n_sessions,
                    "n_chunks": self._n_chunks,
                },
                "metrics": self._sim.metrics.snapshot(),
            }

    def window_documents(self) -> List[Dict[str, Any]]:
        """Retained sealed window documents, oldest first."""
        with self._lock:
            return self._windows.sealed

    def incident_documents(self) -> List[Dict[str, Any]]:
        """Closed + open incident documents in incident-id order."""
        with self._lock:
            return self._detector.incidents()

    def trace_events(self) -> List[str]:
        """NDJSON lines of the trace ring, meta line first."""
        with self._lock:
            ring = list(self._trace_ring)
        meta = json.dumps(
            {"schema": TRACE_SCHEMA, "sample": self.config.trace_sample},
            sort_keys=True,
        )
        return [meta] + [event_json_line(event) for event in ring]

    def health_document(self) -> Dict[str, Any]:
        """Liveness + progress + live fault scoring (``/health``).

        The only endpoint carrying wall-clock (nondeterministic) fields:
        ``uptime_s`` and ``sessions_per_s``.
        """
        with self._lock:
            sealed_total = self._windows.n_sealed_total
            open_windows = self._windows.n_open
            scoreboard = self._scoreboard.summary()
            localization = self._localization.result()
            measured_s = self._measured_s
            return {
                "status": "ok",
                "schema_window": self._windows.sealed[0]["schema"]
                if self._windows.sealed
                else "repro.serve.window/1",
                "seed": self.config.seed,
                "config_hash": config_hash(self.config),
                "window_ms": self.window_ms,
                "rounds": self._rounds,
                "sessions": self._n_sessions,
                "chunks": self._n_chunks,
                "clock_ms": round(self._sim.clock_ms, 6),
                "windows_sealed": sealed_total,
                "windows_open": open_windows,
                "incidents": self._detector.n_opened,
                "localization": localization,
                "faultscore": scoreboard,
                "uptime_s": round(time.time() - self._started, 3),
                "sessions_per_s": (
                    round(self._n_sessions / measured_s, 3) if measured_s > 0 else 0.0
                ),
            }

    def faultscore_report(self):
        """The cumulative batch-style report (CLI exit summary)."""
        with self._lock:
            return self._faultscore.result()
