"""The stdlib-only HTTP/JSONL observability plane of the live service.

One :class:`ThreadingHTTPServer` in front of a :class:`LiveService`; every
endpoint is a read-only snapshot taken under the service lock, so readers
never observe a half-stepped round.  The endpoint set is the written
contract :data:`SERVE_ENDPOINTS` — docs/OBSERVABILITY.md's "Service mode"
table must list exactly these paths (tests/test_docs_contract.py checks
both directions).

JSON endpoints (``/health``, ``/metrics``) serialize with the canonical
:func:`~repro.obs.manifest.dump_json` (sorted keys, fixed indent);
JSONL endpoints (``/windows``, ``/incidents``, ``/events``) emit one
sorted-key document per line — ``/events`` leads with the same
``{"schema": "repro.trace/1", ...}`` meta line a trace export carries.
Everything except ``/health`` (which reports wall-clock uptime) is
byte-identical across two same-seed runs stepped the same number of
rounds.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Tuple

from ..obs.manifest import dump_json
from .online import incident_json_line
from .service import LiveService
from .windows import window_json_line

__all__ = ["SERVE_ENDPOINTS", "ObservabilityPlane", "start_plane"]

#: The endpoint contract: path → one-line description.  Adding an endpoint
#: here REQUIRES a row in docs/OBSERVABILITY.md ("Service mode"); the
#: docs-sync lint enforces both directions.
SERVE_ENDPOINTS: Dict[str, str] = {
    "/health": (
        "liveness, progress counters, live fault scoring, sessions/s "
        "(the only endpoint with wall-clock fields)"
    ),
    "/metrics": (
        "the deterministic observability document: run identity plus the "
        "workload-scoped metrics registry snapshot (JSON)"
    ),
    "/windows": (
        "retained sealed rolling-window documents, oldest first "
        "(JSONL, schema repro.serve.window/1)"
    ),
    "/incidents": (
        "online-localization incident documents, closed then open "
        "(JSONL, schema repro.serve.incident/1)"
    ),
    "/events": (
        "trace-sampled chunk events from the bounded ring, meta line "
        "first (NDJSON, schema repro.trace/1)"
    ),
}


class _PlaneHandler(BaseHTTPRequestHandler):
    """Routes GETs to service snapshots; everything else is a 404/405."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def _respond(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service: LiveService = self.server.service  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/health":
            body = dump_json(service.health_document()).encode("utf-8")
            self._respond(body, "application/json")
        elif path == "/metrics":
            body = dump_json(service.metrics_document()).encode("utf-8")
            self._respond(body, "application/json")
        elif path == "/windows":
            lines = [window_json_line(doc) for doc in service.window_documents()]
            body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
            self._respond(body, "application/x-ndjson")
        elif path == "/incidents":
            lines = [incident_json_line(doc) for doc in service.incident_documents()]
            body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
            self._respond(body, "application/x-ndjson")
        elif path == "/events":
            body = ("\n".join(service.trace_events()) + "\n").encode("utf-8")
            self._respond(body, "application/x-ndjson")
        else:
            known = ", ".join(sorted(SERVE_ENDPOINTS))
            body = f"unknown path {path!r}; endpoints: {known}\n".encode("utf-8")
            self._respond(body, "text/plain", status=404)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (the CLI owns the console)."""


class ObservabilityPlane:
    """A running HTTP plane: the server plus its daemon thread."""

    def __init__(self, service: LiveService, host: str, port: int) -> None:
        self.server = ThreadingHTTPServer((host, port), _PlaneHandler)
        self.server.service = service  # type: ignore[attr-defined]
        self.server.daemon_threads = True
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="repro-serve-plane", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port 0 resolves to the kernel's pick."""
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=5.0)


def start_plane(
    service: LiveService, host: str = "127.0.0.1", port: int = 0
) -> ObservabilityPlane:
    """Bind and start the observability plane (daemon thread)."""
    return ObservabilityPlane(service, host, port)
