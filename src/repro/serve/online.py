"""Online localization over sealed windows: incidents + live fault scoring.

The batch pipeline runs the §4 cascade over a finished dataset and scores
it afterwards (:mod:`repro.core.faultscore`).  A live service cannot wait:
this module re-expresses the cascade's *output side* as an incident
detector over the rolling windows of :mod:`repro.serve.windows` — each
sealed window's per-verdict chunk fractions either open/extend an
incident or close one — and scores detections against the injected
:class:`~repro.faults.FaultSpec` epochs *as windows seal*, not after the
run.

Everything here is pure folding over sealed window documents, so the
incident stream is as deterministic as the windows themselves:
byte-identical across identical runs, independent of when HTTP clients
happen to poll.

Incident documents carry :data:`INCIDENT_SCHEMA`
(``repro.serve.incident/1``) with the field set
:data:`INCIDENT_DOC_FIELDS` (docs/OBSERVABILITY.md "Service mode").
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, FrozenSet, List, Optional, Set

from ..core.faultscore import EXPECTED_BOTTLENECK
from ..core.localization import Bottleneck
from ..faults.spec import FaultSpec

__all__ = [
    "INCIDENT_SCHEMA",
    "INCIDENT_DOC_FIELDS",
    "VERDICT_GROUPS",
    "expected_group",
    "IncidentDetector",
    "FaultScoreboard",
    "incident_json_line",
]

INCIDENT_SCHEMA = "repro.serve.incident/1"

#: Field set of one incident document — the written contract
#: (docs/OBSERVABILITY.md "Service mode"; lint in tests/test_docs_contract.py).
INCIDENT_DOC_FIELDS = (
    "schema",
    "incident_id",
    "group",
    "verdicts",
    "start_ms",
    "end_ms",
    "open",
    "windows",
    "confidence",
    "peak_fraction",
    "blamed",
)

#: Detector groups: the cascade's verdicts pooled by blamed component
#: layer, mirroring how EXPECTED_BOTTLENECK pools the two network
#: verdicts (an RTT inflation also collapses throughput — Fig. 16).
VERDICT_GROUPS: Dict[str, FrozenSet[str]] = {
    "server": frozenset({Bottleneck.SERVER.value}),
    "network": frozenset(
        {Bottleneck.NETWORK_LATENCY.value, Bottleneck.NETWORK_THROUGHPUT.value}
    ),
    "client-download-stack": frozenset({Bottleneck.CLIENT_DOWNLOAD_STACK.value}),
    "client-rendering": frozenset({Bottleneck.CLIENT_RENDERING.value}),
}


def expected_group(fault_class: str) -> Optional[str]:
    """The detector group a fault class should surface in, or None."""
    expected = EXPECTED_BOTTLENECK.get(fault_class)
    if not expected:
        return None
    first = expected[0].value
    for group, verdicts in VERDICT_GROUPS.items():
        if first in verdicts:
            return group
    return None


class _OpenIncident:
    """Mutable state of one in-progress incident."""

    __slots__ = (
        "incident_id", "group", "start_ms", "windows",
        "fraction_sum", "peak_fraction", "blame",
    )

    def __init__(self, incident_id: str, group: str, start_ms: float) -> None:
        self.incident_id = incident_id
        self.group = group
        self.start_ms = start_ms
        self.windows = 0
        self.fraction_sum = 0.0
        self.peak_fraction = 0.0
        self.blame: Counter = Counter()


class IncidentDetector:
    """Open/extend/close incidents from sealed window documents.

    A window is *scorable* when it holds at least ``min_chunks`` chunks
    (the quiet drain tail between arrival bursts yields windows of a
    handful of chunks whose fractions are statistically meaningless —
    those are neutral: they neither open nor close incidents).  A
    scorable window is *anomalous* for a verdict group when the group's
    chunk fraction reaches ``threshold`` — the same "is a QoE-relevant
    share of chunks suffering here?" question the batch cascade answers
    fleet-wide (§4), asked per window.  An anomalous window opens (or
    extends) the group's incident; the first clean *scorable* window
    closes it.  Confidence is the mean anomalous fraction over the
    incident's windows; the blamed component is the modal problem server
    (server group) or modal problem ISP/org (network group) accumulated
    across those windows.

    The defaults are calibrated against the organic cascade output of a
    warmed-up fleet (warmup ≈ 2000 sessions): healthy scorable windows
    sit below ~0.45 server-attributed fraction, while a cache brownout
    (every lookup a miss paying the backend fetch) pushes bursts past
    0.8, so ``threshold=0.6`` separates them with margin on both sides.
    """

    def __init__(self, threshold: float = 0.6, min_chunks: int = 64) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = float(threshold)
        self.min_chunks = int(min_chunks)
        self._open: Dict[str, _OpenIncident] = {}
        self._closed: List[Dict[str, Any]] = []
        self._n_opened = 0

    # -- folding -------------------------------------------------------------

    def scorable(self, window: Dict[str, Any]) -> bool:
        """Whether the window holds enough chunks to score at all."""
        return window["n_chunks"] >= self.min_chunks

    def _fractions(self, window: Dict[str, Any]) -> Dict[str, float]:
        n_chunks = window["n_chunks"]
        bottlenecks = window["bottlenecks"]
        return {
            group: sum(bottlenecks.get(verdict, 0) for verdict in verdicts) / n_chunks
            for group, verdicts in VERDICT_GROUPS.items()
        }

    def _blame_counts(self, group: str, window: Dict[str, Any]) -> Counter:
        if group == "server":
            return Counter(
                {
                    f"server:{server_id}": entry["server_chunks"]
                    for server_id, entry in window["servers"].items()
                    if entry["server_chunks"]
                }
            )
        if group == "network":
            return Counter(
                {
                    f"org:{org}": entry["network_chunks"]
                    for org, entry in window["orgs"].items()
                    if entry["network_chunks"]
                }
            )
        return Counter({"client": 1})

    def observe(self, window: Dict[str, Any]) -> Set[str]:
        """Fold one sealed window; returns the groups flagged for it.

        Non-scorable windows are neutral — no groups flagged, and any
        open incident stays open until a scorable window rules on it.
        """
        if not self.scorable(window):
            return set()
        fractions = self._fractions(window)
        flagged: Set[str] = set()
        for group in sorted(VERDICT_GROUPS):
            fraction = fractions.get(group, 0.0)
            incident = self._open.get(group)
            if fraction >= self.threshold:
                flagged.add(group)
                if incident is None:
                    self._n_opened += 1
                    incident = _OpenIncident(
                        incident_id=f"inc-{self._n_opened:05d}-{group}",
                        group=group,
                        start_ms=window["start_ms"],
                    )
                    self._open[group] = incident
                incident.windows += 1
                incident.fraction_sum += fraction
                incident.peak_fraction = max(incident.peak_fraction, fraction)
                incident.blame.update(self._blame_counts(group, window))
            elif incident is not None:
                self._closed.append(self._document(incident, end_ms=window["start_ms"]))
                del self._open[group]
        return flagged

    # -- documents -----------------------------------------------------------

    def _document(
        self, incident: _OpenIncident, end_ms: Optional[float]
    ) -> Dict[str, Any]:
        if incident.blame:
            # modal component; count desc, then name asc for a stable pick
            blamed = min(incident.blame.items(), key=lambda kv: (-kv[1], kv[0]))[0]
        else:
            blamed = ""
        return {
            "schema": INCIDENT_SCHEMA,
            "incident_id": incident.incident_id,
            "group": incident.group,
            "verdicts": sorted(VERDICT_GROUPS[incident.group]),
            "start_ms": incident.start_ms,
            "end_ms": end_ms,
            "open": end_ms is None,
            "windows": incident.windows,
            "confidence": (
                round(incident.fraction_sum / incident.windows, 9)
                if incident.windows
                else 0.0
            ),
            "peak_fraction": round(incident.peak_fraction, 9),
            "blamed": blamed,
        }

    def incidents(self) -> List[Dict[str, Any]]:
        """Closed incidents then open ones, in incident-id order."""
        documents = list(self._closed)
        documents.extend(
            self._document(incident, end_ms=None)
            for incident in self._open.values()
        )
        documents.sort(key=lambda doc: doc["incident_id"])
        return documents

    @property
    def n_opened(self) -> int:
        return self._n_opened

    @property
    def n_open(self) -> int:
        """Incidents currently open (not yet closed by a clean window)."""
        return len(self._open)


class FaultScoreboard:
    """Live recall of the incident stream against injected fault epochs.

    For each :class:`~repro.faults.FaultEvent` the scoreboard counts the
    *scorable* sealed windows (at least ``min_chunks`` chunks — the same
    bar the detector applies) overlapping the epoch and how many of
    those were flagged by the detector in the event's expected verdict
    group — the window-level recall the acceptance bar reads — plus the
    detection latency measured in scorable windows from fault onset
    (the first scorable window overlapping the epoch is delay zero).
    """

    def __init__(
        self,
        faults: Optional[FaultSpec],
        window_ms: float,
        *,
        min_chunks: int = 64,
    ) -> None:
        self.window_ms = float(window_ms)
        self.min_chunks = int(min_chunks)
        self._events: List[Dict[str, Any]] = []
        if faults is not None:
            for event in faults.events:
                self._events.append(
                    {
                        "label": event.label,
                        "fault_class": event.fault_class,
                        "start_ms": event.start_ms,
                        "end_ms": event.end_ms,
                        "expected_group": expected_group(event.fault_class),
                        "windows_total": 0,
                        "windows_flagged": 0,
                        "first_scorable_index": None,
                        "first_flagged_index": None,
                    }
                )

    def observe(self, window: Dict[str, Any], flagged: Set[str]) -> None:
        """Score one sealed scorable window against every overlapping epoch."""
        if window["n_chunks"] < self.min_chunks:
            return
        for entry in self._events:
            if entry["expected_group"] is None:
                continue
            if not (
                window["start_ms"] < entry["end_ms"]
                and window["end_ms"] > entry["start_ms"]
            ):
                continue
            entry["windows_total"] += 1
            if entry["first_scorable_index"] is None:
                entry["first_scorable_index"] = window["index"]
            if entry["expected_group"] in flagged:
                entry["windows_flagged"] += 1
                if entry["first_flagged_index"] is None:
                    entry["first_flagged_index"] = window["index"]

    def summary(self) -> Dict[str, Any]:
        """The live scoring document served under ``/health``."""
        events: List[Dict[str, Any]] = []
        total = flagged = 0
        detected_within_one = True
        for entry in self._events:
            onset_index = entry["first_scorable_index"]
            if onset_index is None:
                onset_index = int(entry["start_ms"] // self.window_ms)
            first = entry["first_flagged_index"]
            delay = None if first is None else first - onset_index
            within = delay is not None and delay <= 1
            if entry["windows_total"]:
                detected_within_one = detected_within_one and within
            total += entry["windows_total"]
            flagged += entry["windows_flagged"]
            events.append(
                {
                    "label": entry["label"],
                    "expected_group": entry["expected_group"],
                    "start_ms": entry["start_ms"],
                    "end_ms": entry["end_ms"],
                    "windows_total": entry["windows_total"],
                    "windows_flagged": entry["windows_flagged"],
                    "recall": (
                        round(entry["windows_flagged"] / entry["windows_total"], 9)
                        if entry["windows_total"]
                        else 0.0
                    ),
                    "detection_delay_windows": delay,
                    "within_one_window": within,
                }
            )
        return {
            "events": events,
            "windows_total": total,
            "windows_flagged": flagged,
            "recall": round(flagged / total, 9) if total else 0.0,
            "detected_within_one_window": detected_within_one and bool(self._events),
        }


def incident_json_line(document: Dict[str, Any]) -> str:
    """Canonical one-line serialization (sorted keys) of an incident doc."""
    return json.dumps(document, sort_keys=True)
