"""``repro watch``: tail a running service's observability plane.

A stdlib-only (urllib) client of :mod:`repro.serve.plane`: polls
``/health`` on an interval, prints one status line per poll, and surfaces
every incident the online localizer has emitted since the previous poll
(tracked by incident id against ``/incidents``).  This is the operator
loop the paper's motivation describes — watch the service, see the
problem localized as it develops — pointed at the reproduction.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional, Set

__all__ = ["watch", "format_health_line", "format_incident_line"]


def _fetch(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def format_health_line(health: Dict) -> str:
    """One status line from a ``/health`` document."""
    fs = health.get("faultscore", {})
    recall = fs.get("recall", 0.0)
    scored = fs.get("windows_total", 0)
    score = f" recall={recall:.2f}/{scored}w" if scored else ""
    return (
        f"round={health['rounds']} sessions={health['sessions']} "
        f"chunks={health['chunks']} clock={health['clock_ms'] / 1000.0:.1f}s "
        f"windows={health['windows_sealed']} incidents={health['incidents']} "
        f"{health['sessions_per_s']:.1f} sessions/s{score}"
    )


def format_incident_line(incident: Dict) -> str:
    """One line per incident document."""
    state = "OPEN" if incident["open"] else "closed"
    end = incident["end_ms"]
    span = (
        f"{incident['start_ms'] / 1000.0:.1f}s–"
        f"{'…' if end is None else f'{end / 1000.0:.1f}s'}"
    )
    return (
        f"incident {incident['incident_id']} [{state}] group={incident['group']} "
        f"{span} windows={incident['windows']} "
        f"confidence={incident['confidence']:.2f} blamed={incident['blamed'] or '—'}"
    )


def watch(
    url: str,
    *,
    interval: float = 2.0,
    max_polls: Optional[int] = None,
    once: bool = False,
    out: Callable[[str], None] = print,
) -> int:
    """Poll *url* until interrupted (or *max_polls*); returns an exit code.

    Prints a ``/health`` status line per poll and any incidents not yet
    seen.  ``once`` is a single poll (the smoke-test spelling of
    ``max_polls=1``).  Unreachable service → exit code 1.
    """
    base = url.rstrip("/")
    seen: Set[str] = set()
    polls = 0
    limit = 1 if once else max_polls
    try:
        while True:
            try:
                health = json.loads(_fetch(f"{base}/health", timeout=10.0))
            except (urllib.error.URLError, OSError) as error:
                out(f"watch: {base} unreachable: {error}")
                return 1
            out(format_health_line(health))
            try:
                body = _fetch(f"{base}/incidents", timeout=10.0)
            except (urllib.error.URLError, OSError):
                body = b""
            for line in body.decode("utf-8").splitlines():
                if not line.strip():
                    continue
                incident = json.loads(line)
                key = incident["incident_id"]
                # re-announce an incident when it transitions to closed
                if incident["open"]:
                    key += "/open"
                if key in seen:
                    continue
                seen.add(key)
                out("  " + format_incident_line(incident))
            polls += 1
            if limit is not None and polls >= limit:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
