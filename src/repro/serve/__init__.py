"""Live service mode: rolling windows + online localization over HTTP.

The batch pipeline replays a collection period and analyzes it after the
fact; this package runs the same engines *continuously* — arrival round
after arrival round on one checkpointed clock — and localizes problems
while they develop, scored live against injected fault ground truth.
``repro serve`` boots it; ``repro watch`` tails it; the endpoint,
window-document, and incident-document contracts live in
docs/OBSERVABILITY.md ("Service mode").
"""

from .online import (
    INCIDENT_DOC_FIELDS,
    INCIDENT_SCHEMA,
    FaultScoreboard,
    IncidentDetector,
    expected_group,
    incident_json_line,
)
from .plane import SERVE_ENDPOINTS, ObservabilityPlane, start_plane
from .service import LiveService
from .watch import format_health_line, format_incident_line, watch
from .windows import (
    WINDOW_DOC_FIELDS,
    WINDOW_SCHEMA,
    RollingWindows,
    window_json_line,
)

__all__ = [
    "INCIDENT_DOC_FIELDS",
    "INCIDENT_SCHEMA",
    "SERVE_ENDPOINTS",
    "WINDOW_DOC_FIELDS",
    "WINDOW_SCHEMA",
    "FaultScoreboard",
    "IncidentDetector",
    "LiveService",
    "ObservabilityPlane",
    "RollingWindows",
    "expected_group",
    "format_health_line",
    "format_incident_line",
    "incident_json_line",
    "start_plane",
    "watch",
    "window_json_line",
]
