"""Rolling metric windows for the live service mode.

The paper's operators watch the service in fixed windows, not finished
datasets: rebuffer ratio, join time, and per-server/per-ISP aggregates
per interval, with problems localized as they develop (§1, §4).  This
module folds joined session views into tumbling ``window_ms`` buckets
keyed by each chunk's request time and **seals** every bucket that can
no longer receive data.

Sealing is exact, not heuristic: a service round drains its event loop
completely, so the round-end clock is ``>=`` every emitted chunk time,
and the next round's first arrival is strictly later.  Every bucket
whose ``end_ms <= clock`` is therefore final — no late data, no
approximate watermarks — which is what makes the ``/windows`` endpoint
byte-stable across identical runs (the determinism contract of
docs/OBSERVABILITY.md extended to a long-lived process).

Sealed documents carry the versioned schema
:data:`WINDOW_SCHEMA` (``repro.serve.window/1``); the field set is the
written contract :data:`WINDOW_DOC_FIELDS` documented in
docs/OBSERVABILITY.md ("Service mode") and kept in sync both ways by
tests/test_docs_contract.py.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from statistics import median
from typing import Any, Deque, Dict, List, Optional

from ..core.localization import Bottleneck, SessionDiagnosis
from ..telemetry.dataset import SessionView

__all__ = ["WINDOW_SCHEMA", "WINDOW_DOC_FIELDS", "RollingWindows", "window_json_line"]

WINDOW_SCHEMA = "repro.serve.window/1"

#: Field set of one sealed window document — the written contract
#: (docs/OBSERVABILITY.md "Service mode"; lint in tests/test_docs_contract.py).
WINDOW_DOC_FIELDS = (
    "schema",
    "index",
    "start_ms",
    "end_ms",
    "n_sessions",
    "n_chunks",
    "media_ms",
    "rebuffer_ms",
    "rebuffer_ratio",
    "rebuffer_events",
    "join_count",
    "join_ms_median",
    "bottlenecks",
    "problem_fraction",
    "servers",
    "orgs",
    "fault_labels",
)


class _Bucket:
    """Accumulator state of one not-yet-sealed window."""

    __slots__ = (
        "n_sessions", "n_chunks", "media_ms", "rebuffer_ms",
        "rebuffer_events", "joins", "bottlenecks", "server_chunks",
        "server_problems", "org_chunks", "org_network", "fault_labels",
    )

    def __init__(self) -> None:
        self.n_sessions = 0
        self.n_chunks = 0
        self.media_ms = 0.0
        self.rebuffer_ms = 0.0
        self.rebuffer_events = 0
        self.joins: List[float] = []
        self.bottlenecks: Counter = Counter()
        self.server_chunks: Counter = Counter()
        self.server_problems: Counter = Counter()
        self.org_chunks: Counter = Counter()
        self.org_network: Counter = Counter()
        self.fault_labels: Counter = Counter()


_NETWORK_VERDICTS = frozenset(
    {Bottleneck.NETWORK_LATENCY, Bottleneck.NETWORK_THROUGHPUT}
)


class RollingWindows:
    """Tumbling ``window_ms`` buckets over chunk request times.

    ``fold`` charges one session's chunks to their windows (plus the
    session itself and its join time to the window containing the session
    start); ``seal_through`` finalizes every bucket ending at or before
    the supplied clock into an immutable window document.  Sealed
    documents are retained in a bounded deque (``retain``), so a
    run-forever service holds O(retain + open windows) state, never
    O(run duration) — the flat-RSS requirement of the memory-smoke tier.
    """

    def __init__(self, window_ms: float, retain: int = 256) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if retain <= 0:
            raise ValueError("retain must be positive")
        self.window_ms = float(window_ms)
        self.retain = int(retain)
        self._buckets: Dict[int, _Bucket] = {}
        self._sealed: Deque[Dict[str, Any]] = deque(maxlen=retain)
        self._sealed_through = -1  # highest sealed window index
        self.n_sealed_total = 0

    def _bucket(self, t_ms: float) -> _Bucket:
        index = int(t_ms // self.window_ms)
        if index <= self._sealed_through:
            raise RuntimeError(
                f"data for sealed window {index} at t={t_ms:.3f} ms — the "
                "round-drain sealing invariant is broken"
            )
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _Bucket()
        return bucket

    def fold(self, view: SessionView, diagnosis: SessionDiagnosis) -> None:
        """Charge one joined session (and its diagnosis) to its windows."""
        session_bucket = self._bucket(view.player_session.start_ms)
        session_bucket.n_sessions += 1
        join_ms = view.startup_delay_ms
        if join_ms is not None:
            session_bucket.joins.append(join_ms)
        org = view.cdn_session.org
        for chunk, attribution in zip(view.chunks, diagnosis.attributions):
            bucket = self._bucket(chunk.player.request_sent_ms)
            bucket.n_chunks += 1
            bucket.media_ms += chunk.player.chunk_duration_ms
            bucket.rebuffer_ms += chunk.player.rebuffer_ms
            bucket.rebuffer_events += chunk.player.rebuffer_count
            verdict = attribution.bottleneck
            bucket.bottlenecks[verdict.value] += 1
            server_id = chunk.cdn.server_id
            bucket.server_chunks[server_id] += 1
            if verdict is Bottleneck.SERVER:
                bucket.server_problems[server_id] += 1
            bucket.org_chunks[org] += 1
            if verdict in _NETWORK_VERDICTS:
                bucket.org_network[org] += 1
            if chunk.truth is not None and chunk.truth.fault_labels:
                for label in chunk.truth.fault_labels.split(","):
                    if label:
                        bucket.fault_labels[label] += 1

    def _seal(self, index: int, bucket: _Bucket) -> Dict[str, Any]:
        problems = sum(
            count
            for verdict, count in bucket.bottlenecks.items()
            if verdict != Bottleneck.NONE.value
        )
        return {
            "schema": WINDOW_SCHEMA,
            "index": index,
            "start_ms": round(index * self.window_ms, 6),
            "end_ms": round((index + 1) * self.window_ms, 6),
            "n_sessions": bucket.n_sessions,
            "n_chunks": bucket.n_chunks,
            "media_ms": round(bucket.media_ms, 6),
            "rebuffer_ms": round(bucket.rebuffer_ms, 6),
            "rebuffer_ratio": (
                round(bucket.rebuffer_ms / bucket.media_ms, 9)
                if bucket.media_ms > 0
                else 0.0
            ),
            "rebuffer_events": bucket.rebuffer_events,
            "join_count": len(bucket.joins),
            "join_ms_median": (
                round(median(bucket.joins), 6) if bucket.joins else None
            ),
            "bottlenecks": {
                verdict.value: bucket.bottlenecks.get(verdict.value, 0)
                for verdict in Bottleneck
            },
            "problem_fraction": (
                round(problems / bucket.n_chunks, 9) if bucket.n_chunks else 0.0
            ),
            "servers": {
                server_id: {
                    "chunks": count,
                    "server_chunks": bucket.server_problems.get(server_id, 0),
                }
                for server_id, count in sorted(bucket.server_chunks.items())
            },
            "orgs": {
                org: {
                    "chunks": count,
                    "network_chunks": bucket.org_network.get(org, 0),
                }
                for org, count in sorted(bucket.org_chunks.items())
            },
            "fault_labels": dict(sorted(bucket.fault_labels.items())),
        }

    def seal_through(self, clock_ms: float) -> List[Dict[str, Any]]:
        """Finalize every window ending at or before *clock_ms*.

        Returns the newly sealed documents in window order.  Empty windows
        (no bucket ever created) are skipped — a gap in traffic is a gap
        in the stream, exactly like a production metrics pipeline.
        """
        limit = int(clock_ms // self.window_ms)  # windows < limit are final
        sealed: List[Dict[str, Any]] = []
        for index in sorted(self._buckets):
            if index >= limit:
                break
            sealed.append(self._seal(index, self._buckets.pop(index)))
        if sealed:
            self._sealed_through = max(self._sealed_through, sealed[-1]["index"])
            self._sealed.extend(sealed)
            self.n_sealed_total += len(sealed)
        return sealed

    @property
    def sealed(self) -> List[Dict[str, Any]]:
        """Retained sealed documents, oldest first."""
        return list(self._sealed)

    @property
    def n_open(self) -> int:
        return len(self._buckets)


def window_json_line(document: Dict[str, Any]) -> str:
    """Canonical one-line serialization (sorted keys) of a window document."""
    return json.dumps(document, sort_keys=True)
