"""Command-line interface: simulate, analyze, and reproduce from a shell.

Usage (also via ``python -m repro``):

    repro simulate --sessions 2000 --out trace/         # run + persist
    repro simulate --sessions 2000 --out trace/ \
        --metrics-out metrics.json                       # + observability doc
    repro analyze trace/                                 # QoE + localization
    repro findings trace/                                # Table-1 checks
    repro experiment fig05 [--scale small] [--plot]      # reproduce a figure
    repro report --scale medium --out report.md          # the whole suite
    repro list                                           # experiment catalog
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import __version__
from .analysis import plotting
from .api import run
from .core import diagnose_dataset, evaluate_key_findings, filter_proxies, qoe, whatif
from .simulation.config import SimulationConfig
from .telemetry.io import load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "End-to-end video streaming characterization "
            "(IMC 2016 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("simulate", help="simulate a collection period")
    sim.add_argument("--sessions", type=int, default=2000)
    sim.add_argument("--warmup", type=int, default=None,
                     help="warmup sessions (default: 2x sessions)")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--videos", type=int, default=150)
    sim.add_argument("--abr", choices=["rate", "buffer", "hybrid"], default="rate")
    sim.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 shards the run across CPUs with "
             "identical telemetry (default: 1, the classic serial loop)",
    )
    sim.add_argument(
        "--engine", choices=["auto", "event", "fleet"], default="auto",
        help="stepping engine: 'event' is the classic per-session event "
             "loop, 'fleet' advances calm sessions in vectorized cohorts, "
             "'auto' picks by session count; every engine emits "
             "byte-identical telemetry (see docs/PERFORMANCE.md)",
    )
    sim.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per shard attempt in seconds; a shard "
             "exceeding it is killed and retried once (default: none)",
    )
    sim.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="bounded-memory mode: spill telemetry to sorted columnar runs "
             "under DIR instead of holding records in RAM; the persisted "
             "dataset is byte-identical either way (see docs/TELEMETRY.md)",
    )
    sim.add_argument(
        "--spill-threshold", type=int, default=262_144, metavar="ROWS",
        help="rows buffered per record kind before a sorted run is flushed "
             "(the RSS knob; default: 262144, ~80 MB of write buffer)",
    )
    sim.add_argument("--out", required=True, help="output dataset directory")
    sim.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the deterministic observability document (run manifest "
             "+ metrics registry) as JSON; byte-identical for any --workers "
             "value (see docs/OBSERVABILITY.md)",
    )
    sim.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile the run with cProfile and dump pstats data to FILE "
             "(with --workers >1 only the parent process is profiled)",
    )
    sim.add_argument(
        "--faults", default=None, metavar="SPEC.json",
        help="inject a seeded fault schedule from a FaultSpec JSON file; "
             "ground-truth fault labels are stamped into the telemetry "
             "(see docs/FAULTS.md and examples/fault_*.json)",
    )
    sim.add_argument(
        "--trace-out", default=None, metavar="FILE.jsonl",
        help="export the per-chunk causal trace as JSONL (plus a sibling "
             ".chrome.json for chrome://tracing); byte-identical for any "
             "--workers value (see docs/OBSERVABILITY.md, 'Tracing')",
    )
    sim.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="P",
        help="fraction of sessions to trace, head-sampled by session-id "
             "hash so the sampled set is shard-independent (default: 1.0; "
             "only meaningful with --trace-out)",
    )

    trace = commands.add_parser(
        "trace",
        help="drill into a causal trace: reconstruct one chunk's timeline "
             "and name its dominant latency stage",
    )
    trace.add_argument("trace_file", help="JSONL trace from 'simulate --trace-out'")
    trace.add_argument(
        "--session", default=None, help="session id (default: slowest chunk)"
    )
    trace.add_argument(
        "--chunk", type=int, default=None,
        help="chunk index within --session (default: slowest chunk)",
    )
    trace.add_argument(
        "--validate", action="store_true",
        help="check every event against the tracing contract and exit",
    )

    metrics = commands.add_parser(
        "metrics", help="observability document utilities"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    mdiff = metrics_sub.add_parser(
        "diff",
        help="compare two --metrics-out documents; print the first "
             "divergent key (the determinism-break debugging tool)",
    )
    mdiff.add_argument("doc_a", help="first metrics JSON document")
    mdiff.add_argument("doc_b", help="second metrics JSON document")
    mdiff.add_argument(
        "--include-execution", action="store_true",
        help="also compare the execution block (spans, shard reports, "
             "engine/spill/analysis counters); excluded by default because "
             "it legitimately varies across --engine/--workers choices",
    )

    faultscore = commands.add_parser(
        "faultscore",
        help="score bottleneck localization against injected fault ground truth",
    )
    faultscore.add_argument(
        "dataset", help="dataset directory from 'simulate --faults ...'"
    )
    faultscore.add_argument(
        "--analysis", choices=["auto", "records", "columnar"], default="auto",
        help="read path for the scoring pass (byte-identical results; see "
             "docs/PERFORMANCE.md, 'The read path')",
    )

    scenario = commands.add_parser(
        "scenario", help="run a canned multi-period incident scenario"
    )
    scenario.add_argument(
        "name", help="scenario name (flash-crowd, cache-flush, backend-brownout)"
    )
    scenario.add_argument("--seed", type=int, default=29)
    scenario.add_argument(
        "--workers", type=int, default=1,
        help="shard the scenario across N worker processes",
    )
    scenario.add_argument(
        "--out", default=None,
        help="directory to persist per-period datasets (baseline/, incident/)",
    )
    scenario.add_argument(
        "--json", default=None, metavar="FILE", dest="json_out",
        help="write the outcome document (per-period QoE, deltas, "
             "faultscore) as JSON — the same serialization sweep cells "
             "use ('-' for stdout; see docs/SCENARIOS.md)",
    )

    sweep = commands.add_parser(
        "sweep",
        help="factorial scenario sweeps: run a grid, list its cells, "
             "re-aggregate a report (docs/SCENARIOS.md)",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="execute every cell of a sweep spec through repro.api.run"
    )
    sweep_run.add_argument("spec", help="SweepSpec JSON file (the scenario DSL)")
    sweep_run.add_argument(
        "--out", default=None,
        help="output directory (sweep.json, report.json/.txt, cells/*)",
    )
    sweep_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per cell; cells run one after another and "
             "each shards internally, preserving per-cell byte identity",
    )
    sweep_run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per shard attempt within each cell",
    )
    sweep_run.add_argument(
        "--cell", action="append", default=None, metavar="NAME",
        help="run only the named cell(s); repeatable — a single cell "
             "reproduces its record stream exactly (determinism contract)",
    )
    sweep_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N whole cells concurrently on a process pool; "
             "outcomes aggregate in canonical grid order, so the report "
             "artifacts are byte-identical to a serial run "
             "(see docs/SCENARIOS.md)",
    )
    sweep_list = sweep_sub.add_parser(
        "list", help="print the factorial grid of a sweep spec in run order"
    )
    sweep_list.add_argument("spec", help="SweepSpec JSON file")
    sweep_report = sweep_sub.add_parser(
        "report",
        help="re-aggregate a sweep output directory into report.json/.txt",
    )
    sweep_report.add_argument("out_dir", help="directory from 'sweep run --out'")

    serve = commands.add_parser(
        "serve",
        help="live service mode: continuous arrival rounds with rolling "
             "windows and online localization behind an HTTP/JSONL plane "
             "(docs/OBSERVABILITY.md, 'Service mode')",
    )
    serve.add_argument(
        "--scenario", default=None, metavar="NAME|SPEC.json",
        help="canned scenario name (flash-crowd, cache-flush, "
             "backend-brownout) or a ScenarioSpec JSON file; the first "
             "resolved period's config (and faults) drives the service",
    )
    serve.add_argument(
        "--faults", default=None, metavar="SPEC.json",
        help="inject a FaultSpec schedule (overrides the scenario's)",
    )
    serve.add_argument(
        "--sessions", type=int, default=150,
        help="session arrivals per round (default: 150)",
    )
    serve.add_argument(
        "--warmup", type=int, default=2000,
        help="cache-warming sessions before the first round (default: "
             "2000 — enough that organic miss-driven server verdicts "
             "settle below the incident threshold)",
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--window-ms", type=float, default=10_000.0, metavar="MS",
        help="rolling-window width in simulated ms (default: 10000)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="HTTP port for the observability plane (0 = ephemeral)",
    )
    serve.add_argument(
        "--rounds", type=int, default=None, metavar="N",
        help="exit after N rounds (default: run until interrupted)",
    )
    serve.add_argument(
        "--engine", choices=["auto", "event", "fleet"], default="auto",
        help="stepping engine per round (same registry as 'simulate')",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=0.05, metavar="P",
        help="fraction of sessions feeding the /events trace ring "
             "(default: 0.05; 0 disables)",
    )
    serve.add_argument(
        "--retain-windows", type=int, default=256, metavar="N",
        help="sealed windows kept for /windows (bounded memory; "
             "default: 256)",
    )
    serve.add_argument(
        "--threshold", type=float, default=0.6,
        help="per-window anomalous chunk fraction opening an incident "
             "(default: 0.6)",
    )
    serve.add_argument(
        "--min-chunks", type=int, default=64,
        help="minimum chunks before a window is scorable (default: 64)",
    )
    serve.add_argument(
        "--out", default=None, metavar="DIR",
        help="on exit, write windows.jsonl, incidents.jsonl and "
             "report.json under DIR",
    )

    watch = commands.add_parser(
        "watch", help="tail a running 'repro serve' observability plane"
    )
    watch.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8765",
        help="service base URL (default: http://127.0.0.1:8765)",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    watch.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="stop after N polls (default: poll until interrupted)",
    )
    watch.add_argument(
        "--once", action="store_true", help="poll once and exit"
    )

    analyze = commands.add_parser("analyze", help="QoE + bottleneck localization")
    analyze.add_argument("dataset", help="dataset directory from 'simulate'")
    analyze.add_argument("--no-proxy-filter", action="store_true")
    analyze.add_argument(
        "--analysis", choices=["auto", "records", "columnar"], default="auto",
        help="read path: 'records' streams per-session record objects, "
             "'columnar' computes on whole telemetry columns, 'auto' picks "
             "by dataset size/residence; results are byte-identical either "
             "way (see docs/PERFORMANCE.md, 'The read path')",
    )

    findings = commands.add_parser("findings", help="evaluate Table-1 findings")
    findings.add_argument("dataset", help="dataset directory from 'simulate'")

    experiment = commands.add_parser("experiment", help="reproduce a paper artifact")
    experiment.add_argument("experiment_id", help="e.g. fig05, table04")
    experiment.add_argument(
        "--scale", choices=["tiny", "small", "medium", "large"], default="small"
    )
    experiment.add_argument(
        "--plot", action="store_true", help="render the series as terminal charts"
    )
    experiment.add_argument(
        "--workers", type=int, default=1,
        help="shard the underlying simulation across N worker processes",
    )

    commands.add_parser("list", help="list reproducible paper artifacts")

    report = commands.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument(
        "--scale", choices=["tiny", "small", "medium", "large"], default="small"
    )
    report.add_argument("--out", default=None, help="markdown file (default: stdout)")
    report.add_argument(
        "--workers", type=int, default=1,
        help="shard the underlying simulation across N worker processes",
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    warmup = args.warmup if args.warmup is not None else 2 * args.sessions
    config = SimulationConfig(
        n_sessions=args.sessions,
        warmup_sessions=warmup,
        seed=args.seed,
        n_videos=args.videos,
        abr_name=args.abr,
        workers=args.workers,
        engine=args.engine,
        shard_timeout_s=args.shard_timeout,
        # tracing is an execution knob: it never changes the workload
        trace_sample=args.trace_sample if args.trace_out else 0.0,
        # memory mode is an execution knob too (docs/TELEMETRY.md)
        spill_dir=args.spill_dir,
        spill_threshold_rows=args.spill_threshold,
    )
    mode = "serially" if args.workers <= 1 else f"on {args.workers} shard workers"
    mode += f" ({args.engine} engine)"
    injected = f", faults from {args.faults}" if args.faults else ""
    print(
        f"simulating {args.sessions} sessions (+{warmup} warmup), "
        f"seed {args.seed}, {mode}{injected}..."
    )
    started = time.perf_counter()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        result = profiler.runcall(run, config, faults=args.faults)
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler).sort_stats("cumulative")
        print(f"wrote cProfile data to {args.profile}; top stages:")
        stats.print_stats(10)
    else:
        result = run(config, faults=args.faults)
    wall_time_s = time.perf_counter() - started
    path = result.save(args.out, wall_time_s=wall_time_s)
    print(
        f"wrote {result.dataset.n_sessions} sessions / "
        f"{result.dataset.n_chunks} chunks to {path} "
        f"(+ manifest.json)"
    )
    for report in result.shard_reports:
        status = "ok" if report.succeeded else f"FAILED ({report.error})"
        print(
            f"  shard {report.shard_index}/{report.n_shards}: "
            f"{report.sessions} sessions on {report.n_servers} servers in "
            f"{report.wall_time_s:.2f}s, retries={report.retries}, "
            f"peak_rss={report.peak_rss_bytes / 1e6:.0f} MB [{status}]"
        )
    if args.metrics_out:
        metrics_path = result.write_metrics_document(args.metrics_out)
        print(f"wrote metrics document to {metrics_path}")
    if args.trace_out:
        jsonl_path, chrome_path = result.write_trace(args.trace_out)
        print(
            f"wrote {result.trace.n_events} trace events "
            f"(sample {result.config.trace_sample:g}) to {jsonl_path} "
            f"+ {chrome_path}"
        )
    if result.metrics is not None:
        for name, total_s in result.metrics.tracer.totals():
            print(f"  span {name}: {total_s:.3f}s")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.trace import (
        TRACE_EVENT_SPECS,
        chunk_events,
        chunk_fault_labels,
        dominant_stage,
        read_trace_jsonl,
        slowest_chunk,
        stage_durations,
        validate_trace,
    )

    try:
        rows = read_trace_jsonl(args.trace_file)
    except OSError as error:
        print(error, file=sys.stderr)
        return 1
    if args.validate:
        try:
            summary = validate_trace(rows)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 1
        print(
            f"trace OK: {summary['events']} events, "
            f"{summary['sessions']} sessions, {summary['chunks']} chunks"
        )
        return 0
    if not rows:
        print("trace holds no events", file=sys.stderr)
        return 1
    if args.session is not None:
        session_rows = [row for row in rows if row["session"] == args.session]
        if not session_rows:
            print(f"no events for session {args.session!r}", file=sys.stderr)
            return 1
        if args.chunk is not None:
            key = (args.session, args.chunk)
        else:
            key = slowest_chunk(session_rows)
    else:
        key = slowest_chunk(rows)
    events = chunk_events(rows, *key)
    if not events:
        print(f"no events for chunk {key}", file=sys.stderr)
        return 1
    labels = chunk_fault_labels(events)
    suffix = f"  [fault epochs: {labels}]" if labels else ""
    print(f"chunk timeline: session={key[0]} chunk={key[1]}{suffix}")
    t0 = events[0]["t_ms"]
    # canonical order is per-session seq (emission order); wall-clock
    # order reads better for a timeline, with seq as the tie-break
    for row in sorted(events, key=lambda row: (row["t_ms"], row["seq"])):
        spec = TRACE_EVENT_SPECS[row["name"]]
        duration = f"{row['dur_ms']:10.3f} ms" if spec.phase == "span" else " " * 13
        details = " ".join(
            f"{name}={value}" for name, value in sorted(row["args"].items())
        )
        fault = f"  !{row['faults']}" if row["faults"] else ""
        print(
            f"  +{row['t_ms'] - t0:10.3f} ms  {row['name']:<20}{duration}"
            f"  {details}{fault}".rstrip()
        )
    totals = stage_durations(events)
    total_fb = sum(totals.values())
    print("\nfirst-byte stage breakdown:")
    for stage, total in sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])):
        share = 100.0 * total / total_fb if total_fb > 0 else 0.0
        print(f"  {stage:<12} {total:10.3f} ms  ({share:5.1f}%)")
    stage, total = dominant_stage(events)
    print(f"\ndominant stage: {stage} ({total:.3f} ms of first-byte latency)")
    return 0


def _flatten_document(payload, prefix: str = ""):
    """Depth-first (key path, scalar) pairs with sorted dict keys."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            yield from _flatten_document(
                payload[key], f"{prefix}.{key}" if prefix else str(key)
            )
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            yield from _flatten_document(value, f"{prefix}[{index}]")
    else:
        yield prefix or "<root>", payload


def _cmd_metrics(args: argparse.Namespace) -> int:
    import itertools
    import json

    from .obs.manifest import validate_manifest

    # only `metrics diff` exists today; the subparser enforces that
    documents = []
    dropped_execution = False
    for path in (args.doc_a, args.doc_b):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if isinstance(payload, dict) and "manifest" in payload:
            try:
                validate_manifest(payload["manifest"])
            except ValueError as error:
                print(f"{path}: {error}", file=sys.stderr)
                return 2
        if (
            isinstance(payload, dict)
            and not args.include_execution
            and payload.pop("execution", None) is not None
        ):
            # the execution block (spans, shard reports, engine/spill/
            # analysis counters) legitimately varies across --engine and
            # --workers choices; only the workload-scoped payload is under
            # the byte-identity contract (docs/OBSERVABILITY.md)
            dropped_execution = True
        documents.append(payload)
    if dropped_execution:
        print(
            "note: execution block excluded from the comparison "
            "(pass --include-execution to compare it)"
        )
    sentinel = object()
    n_compared = 0
    for (key_a, value_a), (key_b, value_b) in itertools.zip_longest(
        _flatten_document(documents[0]),
        _flatten_document(documents[1]),
        fillvalue=(None, sentinel),
    ):
        if key_a != key_b:
            only = (key_a, args.doc_a) if value_b is sentinel else (key_b, args.doc_b)
            if value_a is not sentinel and value_b is not sentinel:
                print(f"documents diverge at key: {key_a} vs {key_b}")
            else:
                print(f"key only in {only[1]}: {only[0]}")
            return 1
        if value_a != value_b:
            print(f"first divergent key: {key_a}")
            print(f"  {args.doc_a}: {value_a!r}")
            print(f"  {args.doc_b}: {value_b!r}")
            return 1
        n_compared += 1
    print(f"documents identical ({n_compared} keys compared)")
    return 0


def _cmd_faultscore(args: argparse.Namespace) -> int:
    from .core.faultscore import score_fault_localization

    dataset = load_dataset(args.dataset)
    report = score_fault_localization(dataset, analysis=args.analysis)
    print(report.format_report())
    if report.n_labeled == 0:
        print(
            "no fault-labeled chunks in this dataset — was it produced by "
            "'repro simulate --faults spec.json'?",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .core import compare_datasets
    from .simulation.scenarios import SCENARIOS, run_scenario

    if args.name not in SCENARIOS:
        print(
            f"unknown scenario {args.name!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    print(f"running scenario {args.name!r}, seed {args.seed}, "
          f"workers {args.workers}...")
    outcome = run_scenario(
        args.name, seed=args.seed, workers=args.workers
    )
    comparison = compare_datasets(outcome.baseline, outcome.incident)
    print(comparison)
    if args.out:
        from .telemetry.io import save_dataset

        base = Path(args.out)
        save_dataset(outcome.baseline, base / "baseline")
        save_dataset(outcome.incident, base / "incident")
        print(f"wrote baseline/ and incident/ datasets under {base}")
    if args.json_out:
        from .obs.manifest import dump_json
        from .sweep.report import outcome_document

        document = outcome_document(
            name=args.name,
            labels=["baseline", "incident"],
            datasets=[outcome.baseline, outcome.incident],
        )
        payload = dump_json(document)
        if args.json_out == "-":
            sys.stdout.write(payload)
        else:
            path = Path(args.json_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload, encoding="utf-8")
            print(f"wrote outcome document to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import (
        SweepSpec,
        aggregate_report,
        format_report,
        load_cell_documents,
        run_sweep,
        write_report,
    )

    if args.sweep_command == "list":
        spec = SweepSpec.load(args.spec)
        print(f"sweep {spec.name!r}: {spec.n_cells} cells over "
              f"{len(spec.axes)} axes "
              f"({' x '.join(axis.axis for axis in spec.axes)})")
        for cell in spec.cells():
            print(f"  {cell.name}")
        return 0

    if args.sweep_command == "report":
        documents, failures = load_cell_documents(args.out_dir)
        if not documents and not failures:
            print(f"no cells found under {args.out_dir}", file=sys.stderr)
            return 2
        sweep_name = Path(args.out_dir).name
        sweep_json = Path(args.out_dir) / "sweep.json"
        if sweep_json.is_file():
            import json as _json

            sweep_name = _json.loads(
                sweep_json.read_text(encoding="utf-8")
            ).get("name", sweep_name)
        report = aggregate_report(sweep_name, documents, failures)
        write_report(report, args.out_dir)
        print(format_report(report))
        return 0

    # sweep run
    spec = SweepSpec.load(args.spec)
    n_selected = len(args.cell) if args.cell else spec.n_cells
    print(f"running sweep {spec.name!r}: {n_selected} of {spec.n_cells} "
          f"cells, workers {args.workers}...")
    started = time.perf_counter()
    try:
        result = run_sweep(
            spec,
            workers=args.workers,
            shard_timeout_s=args.shard_timeout,
            out_dir=args.out,
            cell_names=args.cell,
            progress=print,
            jobs=args.jobs,
        )
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    print()
    print(format_report(result.report))
    print(f"\nsweep finished in {elapsed:.1f}s "
          f"({result.n_failed}/{len(result.cells)} cells failed)")
    if result.out_dir is not None:
        print(f"wrote sweep.json, report.json, report.txt and "
              f"cells/ under {result.out_dir}")
    return 1 if result.n_failed else 0


def _serve_config(args: argparse.Namespace) -> SimulationConfig:
    """Resolve the service config: scenario (canned or file) + CLI knobs."""
    from .sweep.spec import CANNED_SCENARIOS, ScenarioSpec

    if args.scenario:
        if args.scenario in CANNED_SCENARIOS:
            spec = CANNED_SCENARIOS[args.scenario]
        else:
            spec = ScenarioSpec.load(args.scenario)
        # the service is single-period by nature: round after round on one
        # config; the first resolved period carries the scenario's base
        # overrides and composed fault schedule
        config = spec.resolve(seed=args.seed)[0].config
    else:
        config = SimulationConfig(seed=args.seed)
    config = config.with_overrides(
        n_sessions=args.sessions,
        warmup_sessions=args.warmup,
        engine=args.engine,
        trace_sample=args.trace_sample,
    )
    if args.faults:
        from .faults.spec import FaultSpec

        config = config.with_overrides(faults=FaultSpec.load(args.faults))
    return config


def _cmd_serve(args: argparse.Namespace) -> int:
    import itertools
    import json

    from .obs.manifest import dump_json
    from .serve import SERVE_ENDPOINTS, LiveService, start_plane
    from .serve.watch import format_incident_line

    config = _serve_config(args)
    service = LiveService(
        config,
        window_ms=args.window_ms,
        sessions_per_round=args.sessions,
        retain_windows=args.retain_windows,
        threshold=args.threshold,
        min_chunks=args.min_chunks,
    )
    plane = start_plane(service, host=args.host, port=args.port)
    fault_note = (
        f", faults: {config.faults.name}" if config.faults is not None else ""
    )
    print(
        f"serving on {plane.url} — {args.sessions} sessions/round, "
        f"window {args.window_ms:g} ms, seed {config.seed}{fault_note}"
    )
    print(f"endpoints: {', '.join(sorted(SERVE_ENDPOINTS))}")
    print("tail with: repro watch " + plane.url)
    announced = 0
    try:
        for round_index in itertools.count():
            if args.rounds is not None and round_index >= args.rounds:
                break
            summary = service.step()
            print(
                f"round {summary['round']}: {summary['sessions']} sessions, "
                f"{summary['chunks']} chunks, "
                f"{summary['windows_sealed']} windows sealed, "
                f"clock {summary['clock_ms'] / 1000.0:.1f}s, "
                f"{summary['incidents_open']} incident(s) open"
            )
            incidents = service.incident_documents()
            for incident in incidents[announced:]:
                print("  " + format_incident_line(incident))
            announced = len(incidents)
    except KeyboardInterrupt:
        print("\ninterrupted — shutting down")
    finally:
        plane.close()
    health = service.health_document()
    score = health["faultscore"]
    print(
        f"served {health['rounds']} rounds, {health['sessions']} sessions, "
        f"{health['windows_sealed']} windows, {health['incidents']} "
        f"incident(s), {health['sessions_per_s']:.1f} sessions/s"
    )
    if score["events"]:
        print(
            f"live fault scoring: recall {score['recall']:.2f} over "
            f"{score['windows_total']} fault windows, detected within one "
            f"window: {score['detected_within_one_window']}"
        )
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        windows_path = out / "windows.jsonl"
        windows_path.write_text(
            "".join(
                json.dumps(doc, sort_keys=True) + "\n"
                for doc in service.window_documents()
            ),
            encoding="utf-8",
        )
        incidents_path = out / "incidents.jsonl"
        incidents_path.write_text(
            "".join(
                json.dumps(doc, sort_keys=True) + "\n"
                for doc in service.incident_documents()
            ),
            encoding="utf-8",
        )
        report_path = out / "report.json"
        report_path.write_text(dump_json(health), encoding="utf-8")
        print(f"wrote windows.jsonl, incidents.jsonl, report.json under {out}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .serve.watch import watch

    return watch(
        args.url,
        interval=args.interval,
        max_polls=args.max_polls,
        once=args.once,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    from . import obs

    dataset = load_dataset(args.dataset)
    if not args.no_proxy_filter:
        dataset, report = filter_proxies(dataset)
        print(
            f"proxy filter kept {report.n_kept_sessions}/{report.n_input_sessions} "
            f"sessions {report.removal_reasons()}"
        )

    # each columnar pass publishes its own registry; sum the analysis.*
    # span totals across passes so the breakdown covers the whole command
    # (a record-path call publishes nothing, so the same run is never
    # collected twice)
    analysis_spans: dict = {}
    collected_runs: list = []

    def collect_spans() -> None:
        run = obs.last_run()
        if run is None or any(run is seen for seen in collected_runs):
            return
        collected_runs.append(run)
        for span in run.get("spans", ()):
            if span["name"].startswith("analysis."):
                analysis_spans[span["name"]] = (
                    analysis_spans.get(span["name"], 0.0) + span["total_s"]
                )

    summary = qoe.summarize(dataset, analysis=args.analysis)
    collect_spans()
    print(
        plotting.format_table(
            ["metric", "value"],
            [(k, f"{v:.4g}") for k, v in summary.items()],
            title="\nQoE summary",
        )
    )
    fractions = diagnose_dataset(dataset, analysis=args.analysis)
    collect_spans()
    if fractions:
        ordered = sorted(fractions.items(), key=lambda kv: kv[1], reverse=True)
        print()
        print(
            plotting.ascii_bars(
                [k for k, _ in ordered],
                [100.0 * v for _, v in ordered],
                unit="%",
                title="Bottleneck localization (share of chunks)",
            )
        )
    headrooms = whatif.all_headrooms(dataset)
    if headrooms:
        print("\nCounterfactual headroom (upper bounds on direct effects):")
        for report in headrooms.values():
            print(f"  {report}")
    if analysis_spans:
        print("\nRead-path span breakdown (docs/PERFORMANCE.md):")
        for name, total_s in sorted(analysis_spans.items()):
            print(f"  span {name}: {total_s:.3f}s")
    return 0


def _cmd_findings(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    dataset, _ = filter_proxies(dataset)
    report = evaluate_key_findings(dataset)
    print(report)
    return 0 if report.all_passed else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    # imported lazily: pulls in the full experiment registry
    from .analysis.experiments import (
        DATASET_EXPERIMENTS,
        RESULT_EXPERIMENTS,
        common,
        run_experiment,
    )

    experiment_id = args.experiment_id
    if experiment_id in DATASET_EXPERIMENTS:
        result = run_experiment(
            experiment_id, common.filtered_dataset(args.scale, workers=args.workers)
        )
    elif experiment_id in RESULT_EXPERIMENTS:
        result = run_experiment(
            experiment_id, common.standard_result(args.scale, workers=args.workers)
        )
    else:
        result = run_experiment(experiment_id)
    print(result.format_report())
    if args.plot:
        for name, value in result.series.items():
            chart = plotting.render_series_auto(name, value)
            if chart:
                print()
                print(chart)
    return 0 if result.all_checks_passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_all

    results = run_all(scale=args.scale, workers=args.workers)
    lines = [
        "# Reproduction report",
        "",
        f"Scale: {args.scale}; experiments: {len(results)}.",
        "",
    ]
    n_passed = 0
    for experiment_id in sorted(results):
        result = results[experiment_id]
        status = "PASS" if result.all_checks_passed else "FAIL"
        n_passed += result.all_checks_passed
        lines.append(f"## {experiment_id} — {result.title} [{status}]")
        lines.append("")
        for key, value in result.summary.items():
            rendered = f"{value:.4g}" if isinstance(value, float) else str(value)
            lines.append(f"- {key} = {rendered}")
        failed = [name for name, ok in result.checks.items() if not ok]
        if failed:
            lines.append(f"- failed checks: {', '.join(failed)}")
        lines.append("")
    lines.insert(3, f"**{n_passed}/{len(results)} experiments pass all checks.**")
    text = "\n".join(lines)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out} ({n_passed}/{len(results)} passing)")
    else:
        print(text)
    return 0 if n_passed == len(results) else 1


def _cmd_list(args: argparse.Namespace) -> int:
    from .analysis.experiments import all_experiments, get_experiment

    for experiment_id in all_experiments():
        module = sys.modules[get_experiment(experiment_id).__module__]
        title = getattr(module, "TITLE", "")
        print(f"  {experiment_id:<9} {title}")
    return 0


_HANDLERS = {
    "simulate": _cmd_simulate,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "faultscore": _cmd_faultscore,
    "scenario": _cmd_scenario,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "watch": _cmd_watch,
    "analyze": _cmd_analyze,
    "findings": _cmd_findings,
    "experiment": _cmd_experiment,
    "list": _cmd_list,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # the reader went away (e.g. piped into `head`) — normal exit
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
