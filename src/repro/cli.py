"""Command-line interface: simulate, analyze, and reproduce from a shell.

Usage (also via ``python -m repro``):

    repro simulate --sessions 2000 --out trace/         # run + persist
    repro simulate --sessions 2000 --out trace/ \
        --metrics-out metrics.json                       # + observability doc
    repro analyze trace/                                 # QoE + localization
    repro findings trace/                                # Table-1 checks
    repro experiment fig05 [--scale small] [--plot]      # reproduce a figure
    repro report --scale medium --out report.md          # the whole suite
    repro list                                           # experiment catalog
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import __version__
from .analysis import plotting
from .api import run
from .core import diagnose_dataset, evaluate_key_findings, filter_proxies, qoe, whatif
from .simulation.config import SimulationConfig
from .telemetry.io import load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "End-to-end video streaming characterization "
            "(IMC 2016 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("simulate", help="simulate a collection period")
    sim.add_argument("--sessions", type=int, default=2000)
    sim.add_argument("--warmup", type=int, default=None,
                     help="warmup sessions (default: 2x sessions)")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--videos", type=int, default=150)
    sim.add_argument("--abr", choices=["rate", "buffer", "hybrid"], default="rate")
    sim.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 shards the run across CPUs with "
             "identical telemetry (default: 1, the classic serial loop)",
    )
    sim.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per shard attempt in seconds; a shard "
             "exceeding it is killed and retried once (default: none)",
    )
    sim.add_argument("--out", required=True, help="output dataset directory")
    sim.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the deterministic observability document (run manifest "
             "+ metrics registry) as JSON; byte-identical for any --workers "
             "value (see docs/OBSERVABILITY.md)",
    )
    sim.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile the run with cProfile and dump pstats data to FILE "
             "(with --workers >1 only the parent process is profiled)",
    )
    sim.add_argument(
        "--faults", default=None, metavar="SPEC.json",
        help="inject a seeded fault schedule from a FaultSpec JSON file; "
             "ground-truth fault labels are stamped into the telemetry "
             "(see docs/FAULTS.md and examples/fault_*.json)",
    )

    faultscore = commands.add_parser(
        "faultscore",
        help="score bottleneck localization against injected fault ground truth",
    )
    faultscore.add_argument(
        "dataset", help="dataset directory from 'simulate --faults ...'"
    )

    scenario = commands.add_parser(
        "scenario", help="run a canned multi-period incident scenario"
    )
    scenario.add_argument(
        "name", help="scenario name (flash-crowd, cache-flush, backend-brownout)"
    )
    scenario.add_argument("--seed", type=int, default=29)
    scenario.add_argument(
        "--workers", type=int, default=1,
        help="shard the scenario across N worker processes",
    )
    scenario.add_argument(
        "--out", default=None,
        help="directory to persist per-period datasets (baseline/, incident/)",
    )

    analyze = commands.add_parser("analyze", help="QoE + bottleneck localization")
    analyze.add_argument("dataset", help="dataset directory from 'simulate'")
    analyze.add_argument("--no-proxy-filter", action="store_true")

    findings = commands.add_parser("findings", help="evaluate Table-1 findings")
    findings.add_argument("dataset", help="dataset directory from 'simulate'")

    experiment = commands.add_parser("experiment", help="reproduce a paper artifact")
    experiment.add_argument("experiment_id", help="e.g. fig05, table04")
    experiment.add_argument(
        "--scale", choices=["tiny", "small", "medium", "large"], default="small"
    )
    experiment.add_argument(
        "--plot", action="store_true", help="render the series as terminal charts"
    )
    experiment.add_argument(
        "--workers", type=int, default=1,
        help="shard the underlying simulation across N worker processes",
    )

    commands.add_parser("list", help="list reproducible paper artifacts")

    report = commands.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument(
        "--scale", choices=["tiny", "small", "medium", "large"], default="small"
    )
    report.add_argument("--out", default=None, help="markdown file (default: stdout)")
    report.add_argument(
        "--workers", type=int, default=1,
        help="shard the underlying simulation across N worker processes",
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    warmup = args.warmup if args.warmup is not None else 2 * args.sessions
    config = SimulationConfig(
        n_sessions=args.sessions,
        warmup_sessions=warmup,
        seed=args.seed,
        n_videos=args.videos,
        abr_name=args.abr,
        workers=args.workers,
        shard_timeout_s=args.shard_timeout,
    )
    mode = "serially" if args.workers <= 1 else f"on {args.workers} shard workers"
    injected = f", faults from {args.faults}" if args.faults else ""
    print(
        f"simulating {args.sessions} sessions (+{warmup} warmup), "
        f"seed {args.seed}, {mode}{injected}..."
    )
    started = time.perf_counter()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        result = profiler.runcall(run, config, faults=args.faults)
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler).sort_stats("cumulative")
        print(f"wrote cProfile data to {args.profile}; top stages:")
        stats.print_stats(10)
    else:
        result = run(config, faults=args.faults)
    wall_time_s = time.perf_counter() - started
    path = result.save(args.out, wall_time_s=wall_time_s)
    print(
        f"wrote {result.dataset.n_sessions} sessions / "
        f"{result.dataset.n_chunks} chunks to {path} "
        f"(+ manifest.json)"
    )
    for report in result.shard_reports:
        status = "ok" if report.succeeded else f"FAILED ({report.error})"
        print(
            f"  shard {report.shard_index}/{report.n_shards}: "
            f"{report.sessions} sessions on {report.n_servers} servers in "
            f"{report.wall_time_s:.2f}s, retries={report.retries}, "
            f"peak_rss={report.peak_rss_bytes / 1e6:.0f} MB [{status}]"
        )
    if args.metrics_out:
        metrics_path = result.write_metrics_document(args.metrics_out)
        print(f"wrote metrics document to {metrics_path}")
    if result.metrics is not None:
        for name, total_s in result.metrics.tracer.totals():
            print(f"  span {name}: {total_s:.3f}s")
    return 0


def _cmd_faultscore(args: argparse.Namespace) -> int:
    from .core.faultscore import score_fault_localization

    dataset = load_dataset(args.dataset)
    report = score_fault_localization(dataset)
    print(report.format_report())
    if report.n_labeled == 0:
        print(
            "no fault-labeled chunks in this dataset — was it produced by "
            "'repro simulate --faults spec.json'?",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .core import compare_datasets
    from .simulation.scenarios import SCENARIOS, run_scenario

    if args.name not in SCENARIOS:
        print(
            f"unknown scenario {args.name!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    print(f"running scenario {args.name!r}, seed {args.seed}, "
          f"workers {args.workers}...")
    outcome = run_scenario(
        args.name, seed=args.seed, workers=args.workers
    )
    comparison = compare_datasets(outcome.baseline, outcome.incident)
    print(comparison)
    if args.out:
        from .telemetry.io import save_dataset

        base = Path(args.out)
        save_dataset(outcome.baseline, base / "baseline")
        save_dataset(outcome.incident, base / "incident")
        print(f"wrote baseline/ and incident/ datasets under {base}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    if not args.no_proxy_filter:
        dataset, report = filter_proxies(dataset)
        print(
            f"proxy filter kept {report.n_kept_sessions}/{report.n_input_sessions} "
            f"sessions {report.removal_reasons()}"
        )
    summary = qoe.summarize(dataset)
    print(
        plotting.format_table(
            ["metric", "value"],
            [(k, f"{v:.4g}") for k, v in summary.items()],
            title="\nQoE summary",
        )
    )
    fractions = diagnose_dataset(dataset)
    if fractions:
        ordered = sorted(fractions.items(), key=lambda kv: kv[1], reverse=True)
        print()
        print(
            plotting.ascii_bars(
                [k for k, _ in ordered],
                [100.0 * v for _, v in ordered],
                unit="%",
                title="Bottleneck localization (share of chunks)",
            )
        )
    headrooms = whatif.all_headrooms(dataset)
    if headrooms:
        print("\nCounterfactual headroom (upper bounds on direct effects):")
        for report in headrooms.values():
            print(f"  {report}")
    return 0


def _cmd_findings(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    dataset, _ = filter_proxies(dataset)
    report = evaluate_key_findings(dataset)
    print(report)
    return 0 if report.all_passed else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    # imported lazily: pulls in the full experiment registry
    from .analysis.experiments import (
        DATASET_EXPERIMENTS,
        RESULT_EXPERIMENTS,
        common,
        run_experiment,
    )

    experiment_id = args.experiment_id
    if experiment_id in DATASET_EXPERIMENTS:
        result = run_experiment(
            experiment_id, common.filtered_dataset(args.scale, workers=args.workers)
        )
    elif experiment_id in RESULT_EXPERIMENTS:
        result = run_experiment(
            experiment_id, common.standard_result(args.scale, workers=args.workers)
        )
    else:
        result = run_experiment(experiment_id)
    print(result.format_report())
    if args.plot:
        for name, value in result.series.items():
            chart = plotting.render_series_auto(name, value)
            if chart:
                print()
                print(chart)
    return 0 if result.all_checks_passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_all

    results = run_all(scale=args.scale, workers=args.workers)
    lines = [
        "# Reproduction report",
        "",
        f"Scale: {args.scale}; experiments: {len(results)}.",
        "",
    ]
    n_passed = 0
    for experiment_id in sorted(results):
        result = results[experiment_id]
        status = "PASS" if result.all_checks_passed else "FAIL"
        n_passed += result.all_checks_passed
        lines.append(f"## {experiment_id} — {result.title} [{status}]")
        lines.append("")
        for key, value in result.summary.items():
            rendered = f"{value:.4g}" if isinstance(value, float) else str(value)
            lines.append(f"- {key} = {rendered}")
        failed = [name for name, ok in result.checks.items() if not ok]
        if failed:
            lines.append(f"- failed checks: {', '.join(failed)}")
        lines.append("")
    lines.insert(3, f"**{n_passed}/{len(results)} experiments pass all checks.**")
    text = "\n".join(lines)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out} ({n_passed}/{len(results)} passing)")
    else:
        print(text)
    return 0 if n_passed == len(results) else 1


def _cmd_list(args: argparse.Namespace) -> int:
    from .analysis.experiments import all_experiments, get_experiment

    for experiment_id in all_experiments():
        module = sys.modules[get_experiment(experiment_id).__module__]
        title = getattr(module, "TITLE", "")
        print(f"  {experiment_id:<9} {title}")
    return 0


_HANDLERS = {
    "simulate": _cmd_simulate,
    "faultscore": _cmd_faultscore,
    "scenario": _cmd_scenario,
    "analyze": _cmd_analyze,
    "findings": _cmd_findings,
    "experiment": _cmd_experiment,
    "list": _cmd_list,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # the reader went away (e.g. piped into `head`) — normal exit
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
