"""Unit and integration tests for the simulation layer."""

import numpy as np
import pytest

from repro.cdn.cache import CacheStatus
from repro.simulation.config import SimulationConfig
from repro.simulation.controlled import run_controlled_rendering_experiment
from repro.simulation.driver import Simulator, simulate
from repro.simulation.engine import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(30.0, lambda t: order.append(("b", t)))
        loop.schedule(10.0, lambda t: order.append(("a", t)))
        loop.schedule(20.0, lambda t: order.append(("m", t)))
        end = loop.run()
        assert [name for name, _ in order] == ["a", "m", "b"]
        assert end == 30.0
        assert loop.events_processed == 3

    def test_ties_fifo(self):
        loop = EventLoop()
        order = []
        loop.schedule(5.0, lambda t: order.append("first"))
        loop.schedule(5.0, lambda t: order.append("second"))
        loop.run()
        assert order == ["first", "second"]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def chain(t):
            seen.append(t)
            if len(seen) < 3:
                loop.schedule(t + 10.0, chain)

        loop.schedule(0.0, chain)
        loop.run()
        assert seen == [0.0, 10.0, 20.0]

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop()

        def bad(t):
            loop.schedule(t - 1.0, lambda _: None)

        loop.schedule(10.0, bad)
        with pytest.raises(ValueError):
            loop.run()

    def test_until_bound(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda t: seen.append(t))
        loop.schedule(100.0, lambda t: seen.append(t))
        loop.run(until_ms=50.0)
        assert seen == [1.0]
        assert len(loop) == 1


class TestConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.n_sessions > 0

    def test_with_overrides(self):
        config = SimulationConfig().with_overrides(n_sessions=5, seed=99)
        assert config.n_sessions == 5
        assert config.seed == 99

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_sessions=0)
        with pytest.raises(ValueError):
            SimulationConfig(n_videos=0)
        with pytest.raises(ValueError):
            SimulationConfig(prefetch_depth=-1)
        with pytest.raises(ValueError):
            SimulationConfig(max_buffer_ms=0.0)


class TestDriver:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        return simulate(SimulationConfig(n_sessions=150, warmup_sessions=150, seed=21))

    def test_all_sessions_recorded(self, tiny_result):
        assert tiny_result.dataset.n_sessions == 150

    def test_every_session_has_both_sides(self, tiny_result):
        player_ids = {s.session_id for s in tiny_result.dataset.player_sessions}
        cdn_ids = {s.session_id for s in tiny_result.dataset.cdn_sessions}
        assert player_ids == cdn_ids

    def test_chunk_counts_match_plan(self, tiny_result):
        sessions = tiny_result.dataset.sessions()
        assert all(s.n_chunks >= 1 for s in sessions)
        assert sum(s.n_chunks for s in sessions) == tiny_result.dataset.n_chunks

    def test_chunk_ids_contiguous(self, tiny_result):
        for session in tiny_result.dataset.sessions():
            ids = [c.chunk_id for c in session.chunks]
            assert ids == list(range(len(ids)))

    def test_every_chunk_has_tcp_snapshot(self, tiny_result):
        for session in tiny_result.dataset.sessions():
            for chunk in session.chunks:
                assert len(chunk.tcp) >= 1  # §2.1: at least one per chunk

    def test_timing_decomposition_consistent(self, tiny_result):
        """Player D_FB must exceed the CDN's recorded server latency."""
        for chunk in tiny_result.dataset.join_chunks():
            assert chunk.player.dfb_ms > chunk.cdn.total_server_ms

    def test_ground_truth_parallel_to_chunks(self, tiny_result):
        truth_keys = {(t.session_id, t.chunk_id) for t in tiny_result.dataset.ground_truth}
        chunk_keys = {
            (c.session_id, c.chunk_id) for c in tiny_result.dataset.player_chunks
        }
        assert truth_keys == chunk_keys

    def test_reproducible(self):
        config = SimulationConfig(n_sessions=40, seed=33)
        a = simulate(config).dataset
        b = simulate(config).dataset
        assert [c.dfb_ms for c in a.player_chunks] == [c.dfb_ms for c in b.player_chunks]
        assert [c.cache_status for c in a.cdn_chunks] == [
            c.cache_status for c in b.cdn_chunks
        ]

    def test_seed_changes_output(self):
        a = simulate(SimulationConfig(n_sessions=40, seed=1)).dataset
        b = simulate(SimulationConfig(n_sessions=40, seed=2)).dataset
        assert [c.dfb_ms for c in a.player_chunks] != [c.dfb_ms for c in b.player_chunks]

    def test_warmup_improves_hit_ratio(self):
        cold = simulate(SimulationConfig(n_sessions=200, warmup_sessions=0, seed=5))
        warm = simulate(SimulationConfig(n_sessions=200, warmup_sessions=1000, seed=5))

        def miss_fraction(result):
            chunks = result.dataset.cdn_chunks
            return np.mean([c.cache_status == "miss" for c in chunks])

        assert miss_fraction(warm) < miss_fraction(cold)

    def test_warm_first_chunks_reduces_first_chunk_misses(self):
        base = SimulationConfig(n_sessions=200, warmup_sessions=0, seed=6)
        plain = simulate(base)
        warmed = simulate(base.with_overrides(warm_first_chunks=True))

        def first_chunk_miss(result):
            return np.mean(
                [
                    c.cache_status == "miss"
                    for c in result.dataset.cdn_chunks
                    if c.chunk_id == 0
                ]
            )

        assert first_chunk_miss(warmed) < first_chunk_miss(plain)

    def test_prefetch_reduces_followup_misses(self):
        base = SimulationConfig(n_sessions=300, warmup_sessions=0, seed=7)
        plain = simulate(base)
        prefetching = simulate(
            base.with_overrides(prefetch_after_miss=True, prefetch_depth=4)
        )

        def later_chunk_miss(result):
            return np.mean(
                [
                    c.cache_status == "miss"
                    for c in result.dataset.cdn_chunks
                    if c.chunk_id > 0
                ]
            )

        assert later_chunk_miss(prefetching) < later_chunk_miss(plain)

    def test_mapping_strategy_plumbs(self):
        config = SimulationConfig(
            n_sessions=100, seed=8, mapping_strategy="popularity-partitioned"
        )
        result = simulate(config)
        assert result.dataset.n_sessions == 100

    def test_fleet_miss_ratio_in_range(self, tiny_result):
        assert 0.0 <= tiny_result.fleet_miss_ratio <= 1.0

    def test_run_continues_cache_state(self):
        simulator = Simulator(SimulationConfig(n_sessions=100, seed=9))
        first = simulator.run()
        second = simulator.run()

        def miss_fraction(result):
            return np.mean(
                [c.cache_status == "miss" for c in result.dataset.cdn_chunks]
            )

        # the second period reuses warmed caches
        assert miss_fraction(second) < miss_fraction(first)


class TestSessionActorBehaviour:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(SimulationConfig(n_sessions=400, warmup_sessions=400, seed=13))

    def test_abr_adapts_upwards(self, result):
        """Sessions should not stay at the startup rung when bandwidth allows."""
        bitrates = [
            c.bitrate_kbps for c in result.dataset.player_chunks if c.chunk_id >= 2
        ]
        assert np.mean([b >= 1750 for b in bitrates]) > 0.3

    def test_first_chunk_dfb_higher(self, result):
        first = [c.dfb_ms for c in result.dataset.player_chunks if c.chunk_id == 0]
        later = [c.dfb_ms for c in result.dataset.player_chunks if c.chunk_id == 2]
        assert np.median(first) > np.median(later)

    def test_request_pacing_respects_buffer(self, result):
        """Requests should be roughly chunk-duration-spaced in steady state."""
        for session in result.dataset.sessions():
            if session.n_chunks < 6:
                continue
            sends = [c.player.request_sent_ms for c in session.chunks]
            gaps = np.diff(sends)
            # after the buffer fills, gaps approach the 6 s chunk duration
            assert np.median(gaps[3:]) > 2000.0
            break

    def test_rebuffering_exists_but_rare(self, result):
        sessions = result.dataset.sessions()
        fraction = np.mean([s.total_rebuffer_ms > 0 for s in sessions])
        assert 0.0 < fraction < 0.15

    def test_cache_statuses_all_present(self, result):
        statuses = {c.cache_status for c in result.dataset.cdn_chunks}
        assert statuses == {"hit_ram", "hit_disk", "miss"}

    def test_visibility_recorded(self, result):
        flags = [c.visible for c in result.dataset.player_chunks]
        assert 0.8 < np.mean(flags) <= 1.0


class TestControlledExperiment:
    def test_gpu_then_increasing_cpu_levels(self):
        result = run_controlled_rendering_experiment(n_trials=10, seed=1)
        assert result.labels[0] == "GPU"
        assert len(result.dropped_pct) == len(result.labels)
        assert result.dropped_pct[0] < 1.5

    def test_load_monotonic_trend(self):
        result = run_controlled_rendering_experiment(n_trials=20, seed=2)
        software = result.dropped_pct[1:]
        assert software[-1] > software[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_controlled_rendering_experiment(n_cores=0)
        with pytest.raises(ValueError):
            run_controlled_rendering_experiment(n_chunks=0)
