"""Regression pins for the PR-4 hot-path optimizations (docs/PERFORMANCE.md).

Four families of guarantees:

* the closed-form RFC 6298 estimator matches the iterative per-ACK
  reference on recorded ack sequences (exactly for one ACK, to float
  round-off for replayed updates, exactly at the 16-iteration cap);
* the analytic loss-free TCP fast path is value- and RNG-stream-identical
  to the general round loop it short-circuits;
* ``Dataset.merge_all``'s k-way merge equals the old
  concatenate-then-stable-sort, including tie-breaking by input position;
* the ``EventLoop`` keeps FIFO order for equal-timestamp events and keeps
  rejecting past scheduling, on both the bounded and unbounded run paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_dataset, player_chunk, tcp_snap
from repro.net.path import NetworkPath
from repro.net.tcp import TcpConnection
from repro.simulation.engine import EventLoop
from repro.telemetry.dataset import Dataset


def iterative_rfc6298(srtt, rttvar, sample_ms, n_acks):
    """The pre-optimization estimator: one EWMA update per ACK, capped."""
    if srtt is None:
        return sample_ms, sample_ms / 2.0
    for _ in range(min(n_acks, 16)):
        rttvar = 0.75 * rttvar + 0.25 * abs(srtt - sample_ms)
        srtt = 0.875 * srtt + 0.125 * sample_ms
    return srtt, rttvar


def make_calm_path(rng, *, loss_rate=0.0, base_rtt_ms=50.0, bottleneck_kbps=100_000.0):
    """A path that stays in the calm regime for the whole test horizon."""
    return NetworkPath(
        base_rtt_ms=base_rtt_ms,
        bottleneck_kbps=bottleneck_kbps,
        loss_rate=loss_rate,
        jitter_sigma=0.1,
        rng=rng,
        episode_gap_mean_ms=1e12,
    )


class TestClosedFormRfc6298:
    def record_ack_sequence(self, seed, length=200):
        """A recorded (sample_ms, n_acks) ack trace like transfer() produces."""
        rng = np.random.default_rng(seed)
        samples = 80.0 * rng.lognormal(0.0, 0.4, size=length)
        acks = rng.integers(1, 40, size=length)
        return [(float(s), int(n)) for s, n in zip(samples, acks)]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_iterative_reference_on_recorded_sequences(self, seed):
        conn = TcpConnection(make_calm_path(np.random.default_rng(seed)),
                             np.random.default_rng(seed))
        ref_srtt, ref_rttvar = None, 0.0
        for sample_ms, n_acks in self.record_ack_sequence(seed):
            conn.observe_rtt(sample_ms, n_acks=n_acks)
            ref_srtt, ref_rttvar = iterative_rfc6298(
                ref_srtt, ref_rttvar, sample_ms, n_acks
            )
            # The closed form regroups the same float products, so the
            # trajectories agree to round-off, not bit-for-bit — the
            # documented (docs/PERFORMANCE.md) accuracy contract.
            assert conn.srtt_ms == pytest.approx(ref_srtt, rel=1e-12, abs=1e-9)
            assert conn.rttvar_ms == pytest.approx(ref_rttvar, rel=1e-12, abs=1e-9)

    def test_first_sample_initialization_is_exact(self):
        conn = TcpConnection(make_calm_path(np.random.default_rng(0)),
                             np.random.default_rng(0))
        conn.observe_rtt(100.0, n_acks=7)
        assert conn.srtt_ms == 100.0
        assert conn.rttvar_ms == 50.0

    def test_cap_at_sixteen_iterations(self):
        # n_acks far beyond the cap must give exactly the n_acks=16 state.
        conn_a = TcpConnection(make_calm_path(np.random.default_rng(0)),
                               np.random.default_rng(0))
        conn_b = TcpConnection(make_calm_path(np.random.default_rng(0)),
                               np.random.default_rng(0))
        for conn in (conn_a, conn_b):
            conn.observe_rtt(100.0)
        conn_a.observe_rtt(37.5, n_acks=16)
        conn_b.observe_rtt(37.5, n_acks=5000)
        assert conn_a.srtt_ms == conn_b.srtt_ms
        assert conn_a.rttvar_ms == conn_b.rttvar_ms


class TestLossFreeFastPath:
    def make_conn(self, seed, *, probe=None, max_window_segments=64,
                  bottleneck_kbps=100_000.0):
        # Small receiver window so every round's in-flight window fits the
        # bottleneck queue (rounds that would overflow it are excluded from
        # batching per round), large enough to saturate.
        path = make_calm_path(
            np.random.default_rng(seed), bottleneck_kbps=bottleneck_kbps
        )
        path.fault_probe = probe
        return TcpConnection(
            path, np.random.default_rng(seed + 1),
            max_window_segments=max_window_segments,
        )

    def test_fast_path_equals_general_loop(self, monkeypatch):
        batch_rounds = []
        original = TcpConnection._advance_loss_free_rounds

        def spy(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            batch_rounds.append(result[3])
            return result

        monkeypatch.setattr(TcpConnection, "_advance_loss_free_rounds", spy)
        fast = self.make_conn(33)
        # A probe that never reports a fault disables batching without
        # touching any sampled value or consuming any RNG draw, so the
        # control connection replays the identical general loop.
        control = self.make_conn(33, probe=lambda now_ms: None)

        for start_ms in (0.0, 20_000.0):
            result_fast = fast.transfer(5_000_000, start_ms)
            result_control = control.transfer(5_000_000, start_ms)
            assert result_fast == result_control

        assert sum(batch_rounds) > 10  # the fast path did the bulk of the work
        assert result_fast.rounds > 10
        # Full state sync: estimator, window, counters, and both RNG
        # streams line up exactly after the batched rounds.
        for attr in ("srtt_ms", "rttvar_ms", "cwnd", "ssthresh",
                     "bytes_acked_total", "segments_sent_total", "retx_total",
                     "_next_snapshot_ms"):
            assert getattr(fast, attr) == getattr(control, attr), attr
        assert fast.path.rng.random() == control.path.rng.random()
        assert fast.rng.random() == control.rng.random()

    def test_fast_path_interleaves_with_overflow_rounds(self, monkeypatch):
        # With an unconstrained receiver window, slow start overshoots the
        # bottleneck queue: those rounds can drop segments and must run in
        # the general loop, with batching resuming once loss halves the
        # window back under capacity. The interleaved trajectory must stay
        # identical to the pure general loop.
        batch_rounds = []
        original = TcpConnection._advance_loss_free_rounds

        def spy(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            batch_rounds.append(result[3])
            return result

        monkeypatch.setattr(TcpConnection, "_advance_loss_free_rounds", spy)
        # Narrow bottleneck: the queue holds ~107 segments, so slow start
        # overshoots it within a few rounds.
        fast = self.make_conn(
            71, max_window_segments=100_000, bottleneck_kbps=10_000.0
        )
        control = self.make_conn(
            71, probe=lambda now_ms: None,
            max_window_segments=100_000, bottleneck_kbps=10_000.0,
        )

        for start_ms in (0.0, 120_000.0):
            result_fast = fast.transfer(3_000_000, start_ms)
            result_control = control.transfer(3_000_000, start_ms)
            assert result_fast == result_control

        assert sum(batch_rounds) > 10
        assert fast.retx_total > 0  # overflow loss really happened
        for attr in ("srtt_ms", "rttvar_ms", "cwnd", "ssthresh",
                     "bytes_acked_total", "segments_sent_total", "retx_total",
                     "_next_snapshot_ms"):
            assert getattr(fast, attr) == getattr(control, attr), attr
        assert fast.path.rng.random() == control.path.rng.random()
        assert fast.rng.random() == control.rng.random()

    def test_fast_path_declines_on_lossy_path(self, monkeypatch):
        batch_calls = []
        original = TcpConnection._advance_loss_free_rounds

        def spy(self, *args, **kwargs):
            batch_calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TcpConnection, "_advance_loss_free_rounds", spy)
        path = make_calm_path(np.random.default_rng(5), loss_rate=0.02)
        conn = TcpConnection(path, np.random.default_rng(6), max_window_segments=64)
        conn.transfer(2_000_000, 0.0)
        assert batch_calls == []


class TestKWayMerge:
    def shard_datasets(self):
        shards = []
        for index, session in enumerate(["s3", "s1", "s2"]):
            shard = make_dataset(3)
            for name in ("player_chunks", "cdn_chunks", "tcp_snapshots",
                         "player_sessions", "cdn_sessions"):
                for record in getattr(shard, name):
                    assert record.session_id == "s1"
            shard.player_chunks = [
                player_chunk(session=session, chunk=c, dfb_ms=100.0 + index)
                for c in (2, 0, 1)
            ]
            shard.tcp_snapshots = [
                tcp_snap(session=session, chunk=0, t=float(t)) for t in (1500, 500)
            ]
            shards.append(shard)
        return shards

    def test_merge_all_equals_concat_then_stable_sort(self):
        shards = self.shard_datasets()
        merged = Dataset.merge_all(shards)
        reference = Dataset()
        for shard in shards:
            reference = reference.merge(shard, canonicalize=False)
        assert merged == reference.sorted()

    def test_assume_sorted_skips_nothing_when_inputs_sorted(self):
        shards = [shard.sorted() for shard in self.shard_datasets()]
        assert Dataset.merge_all(shards, assume_sorted=True) == Dataset.merge_all(shards)

    def test_ties_prefer_earlier_inputs(self):
        # Identical sort keys across shards: the k-way merge must keep
        # input order, exactly like concatenate + stable sort did.
        first = Dataset(player_chunks=[player_chunk(chunk=0, dfb_ms=111.0)])
        second = Dataset(player_chunks=[player_chunk(chunk=0, dfb_ms=222.0)])
        merged = Dataset.merge_all([first, second])
        assert [r.dfb_ms for r in merged.player_chunks] == [111.0, 222.0]
        flipped = Dataset.merge_all([second, first])
        assert [r.dfb_ms for r in flipped.player_chunks] == [222.0, 111.0]


class TestEventLoopOrderPins:
    def test_equal_timestamp_events_run_fifo(self):
        loop = EventLoop()
        order = []
        for tag in range(5):
            loop.schedule(10.0, lambda now, tag=tag: order.append(tag))
        # An equal-timestamp event scheduled *during* the tied batch runs
        # after every previously queued event at that timestamp.
        loop.schedule(10.0, lambda now: loop.schedule(10.0, lambda n: order.append("late")))
        loop.run()
        assert order == [0, 1, 2, 3, 4, "late"]

    def test_bounded_run_keeps_fifo_and_boundary(self):
        loop = EventLoop()
        order = []
        for at, tag in [(10.0, "a"), (10.0, "b"), (20.0, "c"), (30.0, "d")]:
            loop.schedule(at, lambda now, tag=tag: order.append(tag))
        assert loop.run(until_ms=20.0) == 20.0
        assert order == ["a", "b", "c"]  # events at the bound still run
        assert len(loop) == 1
        loop.run()
        assert order == ["a", "b", "c", "d"]

    def test_past_scheduling_rejected_inside_callbacks(self):
        loop = EventLoop()
        failures = []

        def callback(now_ms):
            with pytest.raises(ValueError):
                loop.schedule(now_ms - 0.001, lambda n: None)
            failures.append(now_ms)

        loop.schedule(5.0, callback)
        loop.run()
        assert failures == [5.0]
        # Outside run() the guard is inactive: pre-seeding history is legal.
        loop.schedule(0.0, lambda n: None)
