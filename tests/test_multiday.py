"""Tests for multi-day simulation and real day-boundary recurrence analysis."""

import numpy as np
import pytest

from repro.core.persistence import tail_latency_prefixes
from repro.core.proxy_filter import filter_proxies
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import Simulator

DAY_MS = 86_400_000.0


@pytest.fixture(scope="module")
def three_day_result():
    simulator = Simulator(
        SimulationConfig(n_sessions=500, warmup_sessions=1000, seed=19)
    )
    return simulator.run_days(n_days=3, sessions_per_day=500)


class TestRunDays:
    def test_total_sessions(self, three_day_result):
        assert three_day_result.dataset.n_sessions == 1500

    def test_sessions_land_in_their_days(self, three_day_result):
        starts = [s.start_ms for s in three_day_result.dataset.player_sessions]
        day_counts = np.bincount(
            [min(int(s // DAY_MS), 2) for s in starts], minlength=3
        )
        assert all(count == 500 for count in day_counts)

    def test_session_ids_unique_across_days(self, three_day_result):
        ids = [s.session_id for s in three_day_result.dataset.player_sessions]
        assert len(set(ids)) == len(ids)

    def test_caches_persist_across_days(self, three_day_result):
        """Later days must hit warmer caches than the first measured day."""
        by_day = {0: [], 1: [], 2: []}
        session_day = {
            s.session_id: min(int(s.start_ms // DAY_MS), 2)
            for s in three_day_result.dataset.player_sessions
        }
        for chunk in three_day_result.dataset.cdn_chunks:
            by_day[session_day[chunk.session_id]].append(
                chunk.cache_status == "miss"
            )
        assert np.mean(by_day[2]) <= np.mean(by_day[0]) + 0.02

    def test_validation(self):
        simulator = Simulator(SimulationConfig(n_sessions=10, seed=1))
        with pytest.raises(ValueError):
            simulator.run_days(0)


class TestRecurrenceOnRealDays:
    def test_tail_prefixes_recur_across_days(self, three_day_result):
        """§4.2-1: prefixes with structural problems (geography, enterprise
        paths) must re-appear in the daily tail — recurrence near 1.0."""
        dataset, _ = filter_proxies(three_day_result.dataset)
        pop_locations = {
            p.pop_id: p.location for p in three_day_result.deployment.pops
        }
        report = tail_latency_prefixes(dataset, pop_locations, n_days=3)
        assert report.n_persistent > 0
        # at test scale most prefixes are only *sampled* on one day; the
        # recurrence cut must still surface the genuinely recurring ones
        # and rank them at the top of the persistent set
        recurring = [p for p, f in report.recurrence.items() if f >= 2.0 / 3.0]
        assert len(recurring) >= 3
        assert set(recurring) <= set(report.persistent_prefixes)
