"""Live service mode: rounds, rolling windows, online localization, HTTP plane.

The headline contracts under test (docs/OBSERVABILITY.md "Service mode"):

* **Exact sealing** — each round's engine drain leaves the clock past
  every chunk it produced, so every window ending before the round-end
  clock is final when it seals; late data hitting a sealed window is a
  hard error, never silent miscounting.
* **Deterministic plane** — two same-seed services stepped the same
  number of rounds serve byte-identical ``/metrics`` and ``/windows``
  payloads, regardless of polling, engine choice, or a concurrent reader
  mid-rollover.
* **Online localization** — the calibrated detector stays quiet on a
  healthy warmed-up fleet and flags the canned mid-run cache brownout
  (examples/fault_live_brownout.json) within one window of onset with
  window recall >= 0.8, blaming a concrete server.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.faults.spec import FaultSpec
from repro.obs.manifest import dump_json
from repro.obs.trace import TRACE_SCHEMA
from repro.serve import (
    INCIDENT_DOC_FIELDS,
    INCIDENT_SCHEMA,
    SERVE_ENDPOINTS,
    WINDOW_DOC_FIELDS,
    WINDOW_SCHEMA,
    FaultScoreboard,
    IncidentDetector,
    LiveService,
    RollingWindows,
    expected_group,
    format_health_line,
    format_incident_line,
    incident_json_line,
    start_plane,
    window_json_line,
)
from repro.simulation.config import SimulationConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BROWNOUT_SPEC = REPO_ROOT / "examples" / "fault_live_brownout.json"

#: small-but-real service config for plumbing/determinism tests
SMALL = dict(n_sessions=60, warmup_sessions=200, seed=11, n_videos=15)


def small_service(*, seed=11, engine="auto", trace_sample=0.0, **kwargs):
    config = SimulationConfig(
        **{**SMALL, "seed": seed, "engine": engine, "trace_sample": trace_sample}
    )
    return LiveService(config, window_ms=10_000.0, sessions_per_round=60, **kwargs)


def windows_bytes(service) -> str:
    return "\n".join(window_json_line(w) for w in service.window_documents())


# ---------------------------------------------------------------------------
# rolling windows


class TestRollingWindows:
    def test_sealing_invariant_is_enforced(self):
        rw = RollingWindows(1000.0)
        rw._bucket(500.0)
        assert [w["index"] for w in rw.seal_through(2000.0)] == [0]
        with pytest.raises(RuntimeError, match="sealed"):
            rw._bucket(800.0)

    def test_seal_boundary_is_exclusive(self):
        # a clock sitting exactly on a window edge must NOT seal that
        # window: data at t == edge belongs to it
        rw = RollingWindows(1000.0)
        rw._bucket(500.0)
        rw._bucket(1500.0)
        sealed = rw.seal_through(1500.0)
        assert [w["index"] for w in sealed] == [0]
        assert rw.n_open == 1

    def test_window_documents_carry_the_contract_fields(self):
        service = small_service()
        service.step()
        docs = service.window_documents()
        assert docs, "one round must seal at least one window"
        for doc in docs:
            assert tuple(doc) == WINDOW_DOC_FIELDS
            assert doc["schema"] == WINDOW_SCHEMA
            assert doc["end_ms"] - doc["start_ms"] == pytest.approx(10_000.0)
            assert sum(doc["bottlenecks"].values()) == doc["n_chunks"]
            assert sum(e["chunks"] for e in doc["servers"].values()) == doc["n_chunks"]

    def test_retain_bounds_the_deque(self):
        service = small_service(retain_windows=4)
        service.run_rounds(2)
        assert len(service.window_documents()) <= 4
        health = service.health_document()
        assert health["windows_sealed"] > 4  # total is not truncated

    def test_sessions_and_chunks_accumulate(self):
        service = small_service()
        summaries = service.run_rounds(2)
        assert [s["round"] for s in summaries] == [0, 1]
        assert all(s["sessions"] == 60 for s in summaries)
        health = service.health_document()
        assert health["sessions"] == 120
        assert health["chunks"] == sum(s["chunks"] for s in summaries)


# ---------------------------------------------------------------------------
# determinism: the service-mode extension of the byte-identity contract


class TestServiceDeterminism:
    def test_windows_byte_identical_across_two_runs(self):
        a, b = small_service(), small_service()
        a.run_rounds(3)
        b.run_rounds(3)
        assert windows_bytes(a) == windows_bytes(b)

    def test_metrics_byte_identical_across_two_runs(self):
        a, b = small_service(), small_service()
        a.run_rounds(3)
        b.run_rounds(3)
        assert dump_json(a.metrics_document()) == dump_json(b.metrics_document())

    def test_windows_independent_of_engine_choice(self):
        event = small_service(engine="event")
        fleet = small_service(engine="fleet")
        event.run_rounds(2)
        fleet.run_rounds(2)
        assert windows_bytes(event) == windows_bytes(fleet)

    def test_seed_changes_the_stream(self):
        a, b = small_service(seed=11), small_service(seed=12)
        a.step()
        b.step()
        assert windows_bytes(a) != windows_bytes(b)

    def test_snapshot_determinism_under_concurrent_rollover(self):
        """A mid-run /metrics snapshot taken while the round loop is live
        equals the snapshot rebuilt from a fresh service stepped to the
        same round — concurrent readers never see a half-folded state."""
        live = small_service()
        snapshots = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                snapshots.append(live.metrics_document())

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            live.run_rounds(4)
        finally:
            done.set()
            thread.join()
        snapshots.append(live.metrics_document())

        rebuilt: dict = {}
        for snap in snapshots:
            rounds = snap["manifest"]["n_sessions"] // 60
            assert snap["manifest"]["n_sessions"] == rounds * 60
            if rounds not in rebuilt:
                fresh = small_service()
                fresh.run_rounds(rounds)
                rebuilt[rounds] = dump_json(fresh.metrics_document())
            assert dump_json(snap) == rebuilt[rounds]

    def test_windows_stable_under_concurrent_reader(self):
        live = small_service()
        seen: dict = {}
        done = threading.Event()

        def reader():
            while not done.is_set():
                for doc in live.window_documents():
                    line = window_json_line(doc)
                    prior = seen.setdefault(doc["index"], line)
                    assert prior == line, "a sealed window document mutated"

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            live.run_rounds(3)
        finally:
            done.set()
            thread.join()
        assert seen  # the reader actually observed sealed windows


# ---------------------------------------------------------------------------
# incident detector + scoreboard (synthetic windows)


def make_window(index, n_chunks, server=0, network=0, servers=None, orgs=None):
    bottlenecks = {
        "none": n_chunks - server - network,
        "server": server,
        "network-latency": network,
        "network-throughput": 0,
        "client-download-stack": 0,
        "client-rendering": 0,
    }
    return {
        "schema": WINDOW_SCHEMA,
        "index": index,
        "start_ms": index * 1000.0,
        "end_ms": (index + 1) * 1000.0,
        "n_chunks": n_chunks,
        "bottlenecks": bottlenecks,
        "servers": servers or {},
        "orgs": orgs or {},
    }


class TestIncidentDetector:
    def test_open_extend_close_cycle(self):
        det = IncidentDetector(threshold=0.5, min_chunks=10)
        servers = {"srv-a": {"chunks": 90, "server_chunks": 80}}
        assert det.observe(make_window(0, 100, server=10)) == set()
        assert det.observe(make_window(1, 100, server=80, servers=servers)) == {
            "server"
        }
        assert det.observe(make_window(2, 100, server=70, servers=servers)) == {
            "server"
        }
        assert det.observe(make_window(3, 100, server=5)) == set()
        (incident,) = det.incidents()
        assert tuple(incident) == INCIDENT_DOC_FIELDS
        assert incident["schema"] == INCIDENT_SCHEMA
        assert incident["group"] == "server"
        assert incident["open"] is False
        assert incident["start_ms"] == 1000.0
        assert incident["end_ms"] == 3000.0
        assert incident["windows"] == 2
        assert incident["confidence"] == pytest.approx(0.75)
        assert incident["blamed"] == "server:srv-a"

    def test_small_windows_are_neutral(self):
        # the drain tail between arrival bursts yields tiny windows;
        # they must neither flag nor close an open incident
        det = IncidentDetector(threshold=0.5, min_chunks=10)
        det.observe(make_window(0, 100, server=80))
        assert det.n_open == 1
        assert det.observe(make_window(1, 4, server=4)) == set()
        assert det.n_open == 1  # still open: no scorable evidence either way
        det.observe(make_window(2, 100, server=0))
        assert det.n_open == 0

    def test_network_group_blames_the_modal_org(self):
        det = IncidentDetector(threshold=0.5, min_chunks=10)
        orgs = {
            "isp-a": {"chunks": 50, "network_chunks": 45},
            "isp-b": {"chunks": 50, "network_chunks": 15},
        }
        det.observe(make_window(0, 100, network=60, orgs=orgs))
        (incident,) = det.incidents()
        assert incident["group"] == "network"
        assert incident["open"] is True
        assert incident["end_ms"] is None
        assert incident["blamed"] == "org:isp-a"

    def test_expected_group_mapping(self):
        assert expected_group("cache-brownout") == "server"
        assert expected_group("origin-slowdown") == "server"
        assert expected_group("network-latency") == "network"
        assert expected_group("network-loss") == "network"
        assert expected_group("client-render") == "client-rendering"
        assert expected_group("not-a-fault") is None


class TestFaultScoreboard:
    def _spec(self, tmp_path, start_ms, end_ms):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "events": [
                        {
                            "id": "ev-1",
                            "class": "cache-brownout",
                            "start_ms": start_ms,
                            "end_ms": end_ms,
                            "magnitude": 1.0,
                        }
                    ]
                }
            )
        )
        return FaultSpec.load(path)

    def test_counts_only_scorable_overlapping_windows(self, tmp_path):
        board = FaultScoreboard(
            self._spec(tmp_path, 1000.0, 4000.0), 1000.0, min_chunks=10
        )
        board.observe(make_window(0, 100), set())  # before the epoch
        board.observe(make_window(1, 4), {"server"})  # too small to score
        board.observe(make_window(2, 100), {"server"})
        board.observe(make_window(3, 100), set())
        board.observe(make_window(4, 100), {"server"})  # after the epoch
        summary = board.summary()
        (event,) = summary["events"]
        assert event["windows_total"] == 2
        assert event["windows_flagged"] == 1
        assert summary["recall"] == pytest.approx(0.5)

    def test_delay_measured_from_first_scorable_window(self, tmp_path):
        board = FaultScoreboard(
            self._spec(tmp_path, 1000.0, 5000.0), 1000.0, min_chunks=10
        )
        board.observe(make_window(1, 4), set())  # onset window: unscorable
        board.observe(make_window(2, 100), set())  # first scorable: clean
        board.observe(make_window(3, 100), {"server"})
        (event,) = board.summary()["events"]
        assert event["detection_delay_windows"] == 1
        assert event["within_one_window"] is True

    def test_no_faults_scores_empty(self):
        board = FaultScoreboard(None, 1000.0)
        board.observe(make_window(0, 100), {"server"})
        summary = board.summary()
        assert summary["events"] == []
        assert summary["detected_within_one_window"] is False


# ---------------------------------------------------------------------------
# the acceptance bar: canned brownout epoch, live detection


@pytest.fixture(scope="module")
def brownout_service():
    """The serve defaults against examples/fault_live_brownout.json."""
    config = SimulationConfig(
        n_sessions=150,
        warmup_sessions=2000,
        seed=7,
        faults=FaultSpec.load(BROWNOUT_SPEC),
    )
    service = LiveService(config, window_ms=10_000.0, sessions_per_round=150)
    service.run_rounds(8)
    return service


class TestBrownoutAcceptance:
    def test_exactly_one_incident_and_it_is_the_brownout(self, brownout_service):
        (incident,) = brownout_service.incident_documents()
        assert incident["group"] == "server"
        assert incident["blamed"].startswith("server:")
        assert incident["open"] is False, "incident must close after the epoch"

    def test_incident_brackets_the_epoch(self, brownout_service):
        spec = json.loads(BROWNOUT_SPEC.read_text())
        (epoch,) = spec["events"]
        (incident,) = brownout_service.incident_documents()
        # opened within one window of onset, closed after the epoch end
        assert abs(incident["start_ms"] - epoch["start_ms"]) <= 10_000.0
        assert incident["end_ms"] >= epoch["end_ms"]

    def test_live_recall_meets_the_bar(self, brownout_service):
        score = brownout_service.health_document()["faultscore"]
        assert score["detected_within_one_window"] is True
        assert score["recall"] >= 0.8
        (event,) = score["events"]
        assert event["detection_delay_windows"] <= 1

    def test_healthy_baseline_stays_quiet(self):
        config = SimulationConfig(n_sessions=150, warmup_sessions=2000, seed=7)
        service = LiveService(config, window_ms=10_000.0, sessions_per_round=150)
        service.run_rounds(6)
        assert service.incident_documents() == []
        assert service.health_document()["incidents"] == 0


# ---------------------------------------------------------------------------
# HTTP plane


@pytest.fixture(scope="module")
def plane():
    service = LiveService(
        SimulationConfig(**SMALL, trace_sample=0.5),
        window_ms=10_000.0,
        sessions_per_round=60,
    )
    service.run_rounds(2)
    plane = start_plane(service, port=0)
    yield service, plane
    plane.close()


def fetch(plane, path):
    with urllib.request.urlopen(f"{plane.url}{path}", timeout=10) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestHttpPlane:
    def test_health(self, plane):
        service, server = plane
        status, ctype, body = fetch(server, "/health")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["rounds"] == 2
        assert payload["sessions"] == 120

    def test_metrics_matches_the_inprocess_document(self, plane):
        service, server = plane
        _, _, body = fetch(server, "/metrics")
        assert body.decode("utf-8") == dump_json(service.metrics_document())

    def test_windows_ndjson(self, plane):
        service, server = plane
        _, ctype, body = fetch(server, "/windows")
        assert ctype == "application/x-ndjson"
        lines = body.decode("utf-8").splitlines()
        docs = service.window_documents()
        assert len(lines) == len(docs)
        assert [json.loads(line)["index"] for line in lines] == [
            d["index"] for d in docs
        ]

    def test_incidents_ndjson(self, plane):
        service, server = plane
        _, _, body = fetch(server, "/incidents")
        for line in body.decode("utf-8").splitlines():
            assert json.loads(line)["schema"] == INCIDENT_SCHEMA

    def test_events_leads_with_the_trace_meta_line(self, plane):
        service, server = plane
        _, _, body = fetch(server, "/events")
        first, *rest = body.decode("utf-8").splitlines()
        meta = json.loads(first)
        assert meta["schema"] == TRACE_SCHEMA
        assert "name" not in meta
        assert rest, "trace_sample=0.5 must trace some sessions"
        assert all("name" in json.loads(line) for line in rest)

    def test_unknown_path_is_404(self, plane):
        _, server = plane
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server, "/nope")
        assert err.value.code == 404

    def test_endpoint_table_is_exhaustive(self, plane):
        _, server = plane
        for path in SERVE_ENDPOINTS:
            status, _, _ = fetch(server, path)
            assert status == 200


# ---------------------------------------------------------------------------
# watch formatting + CLI


class TestWatch:
    def test_health_line(self):
        line = format_health_line(
            {
                "rounds": 3,
                "sessions": 450,
                "chunks": 2700,
                "clock_ms": 123456.0,
                "windows_sealed": 12,
                "incidents": 1,
                "sessions_per_s": 500.0,
            }
        )
        assert "round=3" in line and "clock=123.5s" in line

    def test_incident_line_open_and_closed(self):
        doc = {
            "incident_id": "inc-00001-server",
            "group": "server",
            "start_ms": 10_000.0,
            "end_ms": None,
            "open": True,
            "windows": 2,
            "confidence": 0.75,
            "blamed": "server:srv-a",
        }
        assert "[OPEN]" in format_incident_line(doc)
        closed = dict(doc, open=False, end_ms=30_000.0)
        assert "[closed]" in format_incident_line(closed)

    def test_watch_once_against_a_live_plane(self, plane, capsys):
        _, server = plane
        assert cli_main(["watch", server.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "sessions/s" in out

    def test_watch_unreachable_exits_nonzero(self, capsys):
        assert (
            cli_main(["watch", "http://127.0.0.1:9", "--once", "--interval", "0"])
            == 1
        )


class TestCliServe:
    def test_serve_rounds_writes_artifacts(self, tmp_path, capsys):
        argv = [
            "serve",
            "--sessions", "60",
            "--warmup", "200",
            "--seed", "11",
            "--rounds", "2",
            "--port", "0",
            "--out", str(tmp_path / "out"),
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "serving on http://" in out
        assert "served 2 rounds" in out
        windows = (tmp_path / "out" / "windows.jsonl").read_text().splitlines()
        assert windows
        assert all(json.loads(w)["schema"] == WINDOW_SCHEMA for w in windows)
        report = json.loads((tmp_path / "out" / "report.json").read_text())
        assert report["rounds"] == 2
        assert (tmp_path / "out" / "incidents.jsonl").exists()

    def test_serve_canned_scenario_resolves(self, capsys):
        argv = [
            "serve",
            "--scenario", "flash-crowd",
            "--sessions", "40",
            "--warmup", "100",
            "--rounds", "1",
            "--port", "0",
        ]
        assert cli_main(argv) == 0
        assert "served 1 rounds" in capsys.readouterr().out

    def test_json_line_helpers_are_sorted(self):
        doc = {"b": 1, "a": 2}
        assert window_json_line(doc) == '{"a": 2, "b": 1}'
        assert incident_json_line(doc) == '{"a": 2, "b": 1}'
