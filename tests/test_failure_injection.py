"""Failure-injection tests: the analysis must degrade gracefully when the
telemetry is imperfect — lost beacons, missing TCP snapshots, clock skew,
and truncated sessions are everyday events in a production pipeline."""

import numpy as np
import pytest

from helpers import make_dataset, player_chunk
from repro.core import downstack, netdiag, perfscore, qoe
from repro.core.proxy_filter import filter_proxies
from repro.telemetry.dataset import Dataset


def drop_fraction(records, fraction, seed=0):
    """Drop a random *fraction* of records (simulating beacon loss)."""
    rng = np.random.default_rng(seed)
    keep = rng.random(len(records)) >= fraction
    return [r for r, k in zip(records, keep) if k]


@pytest.fixture(scope="module")
def lossy_dataset(small_result):
    """The small trace with 20% of player beacons and 30% of TCP snapshots lost."""
    base = small_result.dataset
    return Dataset(
        player_chunks=drop_fraction(base.player_chunks, 0.20, seed=1),
        cdn_chunks=list(base.cdn_chunks),
        tcp_snapshots=drop_fraction(base.tcp_snapshots, 0.30, seed=2),
        player_sessions=list(base.player_sessions),
        cdn_sessions=list(base.cdn_sessions),
        ground_truth=list(base.ground_truth),
    )


class TestBeaconLoss:
    def test_join_survives_beacon_loss(self, lossy_dataset):
        joined = lossy_dataset.join_chunks()
        assert joined  # still joins what remains
        # every surviving joined chunk is internally consistent
        assert all(j.player.chunk_id == j.cdn.chunk_id for j in joined)

    def test_sessions_remain_ordered(self, lossy_dataset):
        for session in lossy_dataset.sessions():
            ids = [c.chunk_id for c in session.chunks]
            assert ids == sorted(ids)

    def test_qoe_summary_still_computes(self, lossy_dataset):
        summary = qoe.summarize(lossy_dataset)
        assert summary["n_sessions"] > 0
        assert np.isfinite(summary["median_bitrate_kbps"])

    def test_proxy_filter_still_works(self, lossy_dataset):
        filtered, report = filter_proxies(lossy_dataset)
        assert 0.5 < report.kept_fraction <= 1.0
        assert filtered.n_sessions == report.n_kept_sessions

    def test_retx_analysis_tolerates_missing_snapshots(self, lossy_dataset):
        rows = netdiag.per_chunk_retx_rates(lossy_dataset)
        assert rows
        assert all(0.0 <= rate <= 1.0 for _, rate in rows)

    def test_eq5_returns_none_not_garbage(self, lossy_dataset):
        """Chunks that lost all their TCP snapshots must yield None, never
        a fabricated bound."""
        none_seen = False
        for chunk in lossy_dataset.join_chunks():
            bound = downstack.persistent_ds_bound_ms(chunk)
            if not chunk.tcp:
                assert bound is None
                none_seen = True
            elif bound is not None:
                assert bound >= 0.0
        assert none_seen, "injection produced no snapshot-less chunks"


class TestClockSkew:
    def test_negative_residuals_floored(self):
        """Clock skew can push D_FB below the CDN-recorded latency; the
        rtt0 bound must floor, not go negative."""
        from repro.core.decomposition import rtt0_upper_bound

        dataset = make_dataset(1)
        dataset.player_chunks[0] = player_chunk(dfb_ms=0.2)  # skewed low
        chunk = dataset.join_chunks()[0]
        assert rtt0_upper_bound(chunk) == 0.1

    def test_perf_score_with_degenerate_timing(self):
        record = player_chunk(dfb_ms=0.0, dlb_ms=0.0)
        assert perfscore.perf_score(record) == float("inf")
        assert perfscore.latency_share(record) == 0.0


class TestTruncatedSessions:
    def test_single_chunk_sessions_analyzable(self):
        dataset = make_dataset(1)
        sessions = dataset.sessions()
        assert sessions[0].n_chunks == 1
        assert netdiag.split_sessions_by_loss(dataset).without_loss
        assert downstack.detect_transient_outliers(sessions[0]) == []

    def test_empty_dataset_everywhere(self):
        empty = Dataset()
        assert empty.join_chunks() == []
        assert empty.sessions() == []
        assert qoe.summarize(empty) == {"n_sessions": 0}
        assert netdiag.per_chunk_retx_rates(empty) == []
        assert netdiag.org_cv_table(empty) == []
        filtered, report = filter_proxies(empty)
        assert filtered.n_sessions == 0
        assert report.kept_fraction == 0.0
