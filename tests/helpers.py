"""Builders for synthetic telemetry records used across test modules."""

from repro.telemetry.dataset import Dataset
from repro.telemetry.records import (
    CdnChunkRecord,
    CdnSessionRecord,
    PlayerChunkRecord,
    PlayerSessionRecord,
    TcpInfoRecord,
)


def player_chunk(session="s1", chunk=0, **kwargs):
    defaults = dict(
        session_id=session,
        chunk_id=chunk,
        dfb_ms=100.0,
        dlb_ms=900.0,
        bitrate_kbps=1050.0,
        chunk_duration_ms=6000.0,
        rebuffer_count=0,
        rebuffer_ms=0.0,
        visible=True,
        avg_fps=30.0,
        dropped_frames=0,
        total_frames=180,
        request_sent_ms=0.0,
        hw_rendered=False,
    )
    defaults.update(kwargs)
    return PlayerChunkRecord(**defaults)


def cdn_chunk(session="s1", chunk=0, **kwargs):
    defaults = dict(
        session_id=session,
        chunk_id=chunk,
        d_wait_ms=0.3,
        d_open_ms=0.1,
        d_read_ms=1.0,
        d_be_ms=0.0,
        cache_status="hit_ram",
        chunk_bytes=787_500,
        server_id="srv-x-00",
        pop_id="pop-x",
        served_at_ms=30.0,
    )
    defaults.update(kwargs)
    return CdnChunkRecord(**defaults)


def tcp_snap(session="s1", chunk=0, t=500.0, **kwargs):
    defaults = dict(
        session_id=session,
        chunk_id=chunk,
        t_ms=t,
        cwnd_segments=40,
        srtt_ms=60.0,
        rttvar_ms=5.0,
        retx_total=0,
        mss=1460,
    )
    defaults.update(kwargs)
    return TcpInfoRecord(**defaults)


def player_session(session="s1", **kwargs):
    defaults = dict(
        session_id=session,
        client_ip="10.0.0.1",
        user_agent="UA",
        video_id=1,
        video_duration_ms=60_000.0,
        start_ms=0.0,
        os="Windows",
        browser="Chrome",
    )
    defaults.update(kwargs)
    return PlayerSessionRecord(**defaults)


def cdn_session(session="s1", **kwargs):
    defaults = dict(
        session_id=session,
        client_ip="10.0.0.1",
        user_agent="UA",
        pop_id="pop-x",
        server_id="srv-x-00",
        org="Comcast",
        conn_type="cable",
        country="US",
        city="Chicago",
        lat=41.9,
        lon=-87.6,
    )
    defaults.update(kwargs)
    return CdnSessionRecord(**defaults)


def make_dataset(n_chunks=3) -> Dataset:
    return Dataset(
        player_chunks=[player_chunk(chunk=i) for i in range(n_chunks)],
        cdn_chunks=[cdn_chunk(chunk=i) for i in range(n_chunks)],
        tcp_snapshots=[tcp_snap(chunk=i, t=500.0 * (i + 1)) for i in range(n_chunks)],
        player_sessions=[player_session()],
        cdn_sessions=[cdn_session()],
        ground_truth=[],
    )
