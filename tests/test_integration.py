"""End-to-end integration tests: full pipeline invariants on a simulated
trace, cross-validating analysis estimates against simulator ground truth."""

import numpy as np
import pytest

from repro.core import decomposition, downstack, qoe
from repro.core.proxy_filter import filter_proxies
from repro.telemetry.io import load_dataset, save_dataset


class TestEndToEndInvariants:
    def test_eq1_decomposition_holds_exactly(self, small_result):
        """D_FB = D_CDN + D_BE + D_DS + rtt0 must hold against ground truth."""
        for chunk in small_result.dataset.join_chunks():
            truth = chunk.truth
            assert truth is not None
            reconstructed = (
                chunk.cdn.d_cdn_ms
                + chunk.cdn.d_be_ms
                + truth.true_dds_ms
                + truth.true_rtt0_ms
            )
            assert chunk.player.dfb_ms == pytest.approx(reconstructed, rel=1e-6)

    def test_dlb_relates_to_network_transfer(self, small_result):
        """Observed D_LB = network D_LB minus any download-stack shift."""
        for chunk in small_result.dataset.join_chunks():
            truth = chunk.truth
            assert chunk.player.dlb_ms <= truth.network_dlb_ms + 1e-6 or (
                truth.network_dlb_ms < 1.0
            )

    def test_retx_counters_match_truth(self, small_result):
        """TCP-layer counters in telemetry must track the simulator's loss."""
        for session in small_result.dataset.sessions():
            truth_retx = sum(
                c.truth.segments_retx for c in session.chunks if c.truth
            )
            last_counter = max(
                (c.last_tcp.retx_total for c in session.chunks if c.last_tcp),
                default=0,
            )
            assert last_counter == truth_retx

    def test_dropped_frames_match_truth(self, small_result):
        for chunk in small_result.dataset.join_chunks():
            assert chunk.player.dropped_fraction == pytest.approx(
                chunk.truth.true_drop_fraction, abs=0.01
            )

    def test_rebuffer_only_after_startup(self, small_result):
        for session in small_result.dataset.sessions():
            if session.chunks and session.chunks[0].chunk_id == 0:
                assert session.chunks[0].player.rebuffer_count == 0

    def test_wall_clock_ordering(self, small_result):
        """Requests within a session are strictly ordered in time."""
        for session in small_result.dataset.sessions():
            sends = [c.player.request_sent_ms for c in session.chunks]
            assert all(b > a for a, b in zip(sends[:-1], sends[1:]))

    def test_tcp_snapshots_within_session_window(self, small_result):
        for session in small_result.dataset.sessions():
            if not session.chunks:
                continue
            start = session.chunks[0].player.request_sent_ms
            for chunk in session.chunks:
                for snap in chunk.tcp:
                    assert snap.t_ms >= start

    def test_cumulative_retx_monotone(self, small_result):
        for session in small_result.dataset.sessions():
            last = 0
            for chunk in session.chunks:
                for snap in chunk.tcp:
                    assert snap.retx_total >= last
                    last = snap.retx_total


class TestPipelineOnDisk:
    def test_full_pipeline_via_disk_round_trip(self, small_result, tmp_path):
        """Simulate -> persist -> reload -> filter -> analyze: the same
        pipeline a production deployment would run from logs."""
        save_dataset(small_result.dataset, tmp_path / "trace")
        reloaded = load_dataset(tmp_path / "trace")
        filtered, report = filter_proxies(reloaded)
        assert report.kept_fraction > 0.7
        summary = qoe.summarize(filtered)
        assert summary["n_sessions"] > 1000
        assert summary["median_startup_ms"] > 100.0


class TestEstimatorValidation:
    """The analysis must recover simulator truth it was never shown."""

    def test_eq5_bound_is_conservative(self, medium_dataset):
        """The Eq. 5 DS bound must (almost) never exceed the true DS latency
        by more than measurement slack — it is a *lower* bound."""
        violations = 0
        total = 0
        for chunk in medium_dataset.join_chunks():
            if chunk.truth is None:
                continue
            bound = downstack.persistent_ds_bound_ms(chunk)
            if bound is None or bound <= 0:
                continue
            total += 1
            if bound > chunk.truth.true_dds_ms + 100.0:
                violations += 1
        assert total > 100
        assert violations / total < 0.10

    def test_platform_ordering_recovered(self, medium_dataset):
        """The analysis, seeing only telemetry, must recover the platform
        DS ordering that was baked into the client models."""
        rows = downstack.platform_ds_table(medium_dataset, min_chunks=30)
        by_key = {(r.os, r.browser): r for r in rows}
        bad = by_key.get(("Windows", "Safari"))
        good = by_key.get(("Windows", "Chrome"))
        assert bad is not None and good is not None
        assert bad.expected_ds_ms > 5 * max(good.expected_ds_ms, 0.1)

    def test_baseline_rtt_unbiased_for_quiet_sessions(self, medium_dataset):
        """For sessions without congestion episodes, srtt_min should sit
        close to the true minimum request RTT."""
        errors = []
        for session in medium_dataset.sessions():
            truths = [c.truth.true_rtt0_ms for c in session.chunks if c.truth]
            if len(truths) < 2:
                continue
            estimate = decomposition.session_min_rtt(session)
            errors.append(estimate / min(truths))
        assert 0.7 < np.median(errors) < 1.5
