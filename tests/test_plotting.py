"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.plotting import (
    ascii_bars,
    ascii_cdf,
    ascii_series,
    format_table,
    render_series_auto,
)


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bars(["alpha", "b"], [10.0, 5.0], unit="%")
        assert "alpha" in chart and "b" in chart
        assert "10.00%" in chart and "5.00%" in chart

    def test_largest_bar_is_full_width(self):
        chart = ascii_bars(["big", "small"], [100.0, 1.0], width=20)
        big_line = next(line for line in chart.splitlines() if "big" in line)
        assert big_line.count("█") == 20

    def test_zero_values_render(self):
        chart = ascii_bars(["x"], [0.0])
        assert "0.00" in chart

    def test_title_included(self):
        assert ascii_bars(["x"], [1.0], title="My chart").startswith("My chart")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_empty_ok(self):
        assert ascii_bars([], []) == ""


class TestAsciiCdf:
    def test_contains_curve_points(self):
        chart = ascii_cdf([1.0, 2.0, 3.0, 10.0])
        assert "•" in chart
        assert "1" in chart and "10" in chart  # axis extremes

    def test_log_axis(self):
        chart = ascii_cdf([1.0, 10.0, 100.0, 1000.0], log_x=True)
        assert "•" in chart

    def test_log_axis_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_cdf([0.0, 0.0], log_x=True)

    def test_empty_samples(self):
        assert ascii_cdf([]) == "(no samples)"

    def test_dimensions_respected(self):
        chart = ascii_cdf(list(range(1, 50)), width=30, height=6)
        body = [line for line in chart.splitlines() if "|" in line]
        assert len(body) == 6


class TestAsciiSeries:
    def test_plots_points(self):
        chart = ascii_series([(0, 1.0), (1, 5.0), (2, 2.0)])
        assert "●" in chart
        assert "5" in chart

    def test_empty(self):
        assert ascii_series([]) == "(no points)"

    def test_constant_series(self):
        chart = ascii_series([(0, 3.0), (1, 3.0)])
        assert "●" in chart


class TestRenderSeriesAuto:
    def test_numeric_list_becomes_cdf(self):
        chart = render_series_auto("latency", [float(i) for i in range(20)])
        assert chart is not None and "CDF" in chart

    def test_pairs_become_series(self):
        chart = render_series_auto("retx", [(0, 5.0), (1, 1.0), (2, 0.5)])
        assert chart is not None and "●" in chart

    def test_stat_rows_use_first_two_columns(self):
        rows = [(0.5, 10.0, 9.0, 8.0, 11.0, 100), (1.5, 5.0, 4.0, 3.0, 6.0, 80)]
        chart = render_series_auto("binned", rows)
        assert chart is not None

    def test_none_for_unplottable(self):
        assert render_series_auto("text", "a string") is None
        assert render_series_auto("scalar", 4.2) is None
        assert render_series_auto("empty", []) is None
        assert render_series_auto("short", [1.0, 2.0]) is None
        assert render_series_auto("labels", [("a", "b"), ("c", "d")]) is None

    def test_none_y_rows_skipped(self):
        chart = render_series_auto("cond", [(0, 1.0, None), (1, None, None), (2, 3.0, None)])
        assert chart is not None  # two usable points remain


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["name", "v"], [("long-name", 1), ("x", 22)])
        lines = table.splitlines()
        assert "-+-" in lines[1]
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title(self):
        assert format_table(["a"], [(1,)], title="T").startswith("T")
