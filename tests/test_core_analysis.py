"""Tests for the analysis pipeline (repro.core) — unit behaviour on
synthetic records plus ground-truth validation on simulated traces."""

import numpy as np
import pytest

from repro.core import (
    decomposition,
    downstack,
    netdiag,
    perfscore,
    persistence,
    popularity,
    qoe,
    rendering_diag,
)
from repro.core.proxy_filter import filter_proxies
from repro.telemetry.dataset import Dataset

from helpers import (
    cdn_chunk,
    cdn_session,
    make_dataset,
    player_chunk,
    player_session,
    tcp_snap,
)


class TestProxyFilter:
    def test_keeps_clean_sessions(self):
        dataset = make_dataset(2)
        filtered, report = filter_proxies(dataset)
        assert filtered.n_sessions == 1
        assert report.kept_fraction == 1.0

    def test_removes_ip_mismatch(self):
        dataset = make_dataset(1)
        dataset.cdn_sessions[0] = cdn_session(client_ip="198.51.100.7")
        filtered, report = filter_proxies(dataset)
        assert filtered.n_sessions == 0
        assert "s1" in report.ip_mismatch_sessions

    def test_removes_ua_mismatch(self):
        dataset = make_dataset(1)
        dataset.cdn_sessions[0] = cdn_session(user_agent="ProxyBot/1.0")
        filtered, report = filter_proxies(dataset)
        assert filtered.n_sessions == 0
        assert "s1" in report.ua_mismatch_sessions

    def test_removes_mega_ip(self):
        dataset = Dataset()
        # 40 sessions from one IP, each watching 1 h inside a ~2 min window
        for i in range(40):
            sid = f"s{i}"
            dataset.player_sessions.append(
                player_session(session=sid, client_ip="203.0.113.5")
            )
            dataset.cdn_sessions.append(cdn_session(session=sid, client_ip="203.0.113.5"))
            dataset.player_chunks.append(
                player_chunk(session=sid, chunk=0, chunk_duration_ms=3_600_000.0)
            )
            dataset.cdn_chunks.append(cdn_chunk(session=sid, chunk=0))
        filtered, report = filter_proxies(dataset)
        assert "203.0.113.5" in report.mega_ips
        assert filtered.n_sessions == 0

    def test_normal_volume_not_flagged(self):
        dataset = make_dataset(3)
        _, report = filter_proxies(dataset)
        assert not report.mega_ips

    def test_validation(self):
        with pytest.raises(ValueError):
            filter_proxies(make_dataset(1), media_budget_factor=0.0)

    def test_detects_simulated_proxies(self, small_result):
        """On a simulated trace, the filter must catch explicit enterprise
        proxies (IP mismatch) and transparent mega-IPs, and keep most
        sessions (paper kept 77%)."""
        _, report = filter_proxies(small_result.dataset)
        assert report.n_removed > 0
        assert 0.7 < report.kept_fraction < 1.0
        assert len(report.ip_mismatch_sessions) > 0


class TestDecomposition:
    def test_rtt0_upper_bound(self):
        dataset = make_dataset(1)
        chunk = dataset.join_chunks()[0]
        # dfb 100, server total 1.4 -> bound ~98.6
        assert decomposition.rtt0_upper_bound(chunk) == pytest.approx(98.6)

    def test_rtt0_floor_on_clock_skew(self):
        dataset = make_dataset(1)
        dataset.player_chunks[0] = player_chunk(dfb_ms=0.5)
        chunk = dataset.join_chunks()[0]
        assert decomposition.rtt0_upper_bound(chunk) == 0.1

    def test_chunk_baseline_uses_min(self):
        dataset = make_dataset(1)
        dataset.tcp_snapshots = [tcp_snap(srtt_ms=40.0)]
        chunk = dataset.join_chunks()[0]
        assert decomposition.chunk_baseline_rtt(chunk) == 40.0

    def test_session_min_rtt(self):
        dataset = make_dataset(3)
        assert decomposition.session_min_rtt(dataset.sessions()[0]) <= 60.0

    def test_sigma_none_for_single_sample(self):
        dataset = make_dataset(1)
        assert decomposition.session_srtt_sigma(dataset.sessions()[0]) is None

    def test_rtt0_bound_validates_against_truth(self, small_result):
        """Eq. 1: the estimator must actually bound the true rtt0 from above."""
        violations = 0
        total = 0
        for chunk in small_result.dataset.join_chunks():
            if chunk.truth is None:
                continue
            total += 1
            if decomposition.rtt0_upper_bound(chunk) < chunk.truth.true_rtt0_ms - 1.0:
                violations += 1
        assert total > 100
        assert violations / total < 0.01

    def test_baseline_tracks_true_rtt(self, small_result):
        """The per-chunk baseline should approximate true rtt0 within ~2x
        for the majority of chunks."""
        ratios = []
        for chunk in small_result.dataset.join_chunks():
            if chunk.truth is None or chunk.truth.true_rtt0_ms <= 0:
                continue
            ratios.append(
                decomposition.chunk_baseline_rtt(chunk) / chunk.truth.true_rtt0_ms
            )
        assert 0.5 < np.median(ratios) < 2.0


class TestPerfScore:
    def test_score_formula(self):
        record = player_chunk(dfb_ms=1000.0, dlb_ms=2000.0)
        assert perfscore.perf_score(record) == pytest.approx(2.0)

    def test_shares_sum_to_one(self):
        record = player_chunk(dfb_ms=250.0, dlb_ms=750.0)
        assert perfscore.latency_share(record) + perfscore.throughput_share(
            record
        ) == pytest.approx(1.0)

    def test_split_by_score(self):
        dataset = make_dataset(1)
        dataset.player_chunks.append(
            player_chunk(chunk=1, dfb_ms=4000.0, dlb_ms=4000.0)
        )
        dataset.cdn_chunks.append(cdn_chunk(chunk=1))
        good, bad = perfscore.split_by_score(dataset.join_chunks())
        assert len(good) == 1 and len(bad) == 1
        assert bad[0].chunk_id == 1

    def test_zero_duration_chunk(self):
        record = player_chunk(dfb_ms=0.0, dlb_ms=0.0)
        assert perfscore.perf_score(record) == float("inf")


class TestDownstackDetection:
    def test_eq4_needs_min_chunks(self):
        dataset = make_dataset(3)
        assert downstack.detect_transient_outliers(dataset.sessions()[0]) == []

    def test_eq5_bound_zero_for_clean_chunk(self):
        dataset = make_dataset(1)
        chunk = dataset.join_chunks()[0]
        # dfb 100 << RTO ~280 -> bound 0
        assert downstack.persistent_ds_bound_ms(chunk) == 0.0

    def test_eq5_bound_positive_for_stack_latency(self):
        dataset = make_dataset(1)
        dataset.player_chunks[0] = player_chunk(dfb_ms=900.0)
        chunk = dataset.join_chunks()[0]
        bound = downstack.persistent_ds_bound_ms(chunk)
        # 900 - 1.4 - (200 + 60 + 20) = ~618
        assert bound == pytest.approx(618.6, abs=1.0)

    def test_eq5_none_without_tcp(self):
        dataset = make_dataset(1)
        dataset.tcp_snapshots = []
        chunk = dataset.join_chunks()[0]
        assert downstack.persistent_ds_bound_ms(chunk) is None

    def test_rto_uses_max_snapshot(self):
        dataset = make_dataset(1)
        dataset.tcp_snapshots = [
            tcp_snap(t=100.0, srtt_ms=500.0, rttvar_ms=100.0),
            tcp_snap(t=600.0, srtt_ms=50.0, rttvar_ms=5.0),
        ]
        chunk = dataset.join_chunks()[0]
        assert downstack.chunk_rto_ms(chunk) == pytest.approx(200 + 500 + 400)

    def test_eq4_detection_against_ground_truth(self, medium_dataset):
        """Eq. 4 should recover a decent share of true transient events in
        sessions long enough to carry the statistics, with low false-positive
        rate."""
        truth = {
            (t.session_id, t.chunk_id)
            for t in medium_dataset.ground_truth
            if t.transient_ds
        }
        flagged = {
            (sid, c.chunk_id)
            for sid, chunks in downstack.detect_transient_outliers_dataset(
                medium_dataset
            ).items()
            for c in chunks
        }
        assert flagged, "detector found nothing"
        precision = len(flagged & truth) / len(flagged)
        assert precision > 0.5

    def test_transient_signature_against_truth(self, medium_dataset):
        truth_transients = []
        truth_normal = []
        for chunk in medium_dataset.join_chunks():
            if chunk.truth is None:
                continue
            flag = downstack.transient_signature(chunk)
            (truth_transients if chunk.truth.transient_ds else truth_normal).append(flag)
        assert np.mean(truth_transients) > 0.6  # recall
        assert np.mean(truth_normal) < 0.05  # false-positive rate

    def test_platform_table_sorted(self, medium_dataset):
        rows = downstack.platform_ds_table(medium_dataset, min_chunks=30)
        means = [r.mean_ds_ms for r in rows]
        assert means == sorted(means, reverse=True)
        assert all(0.0 <= r.nonzero_fraction <= 1.0 for r in rows)


class TestNetdiag:
    def test_session_cv_none_without_samples(self):
        dataset = make_dataset(1)
        dataset.tcp_snapshots = []
        assert netdiag.session_srtt_cv(dataset.sessions()[0]) is None

    def test_org_cv_table_threshold(self, medium_dataset):
        rows = netdiag.org_cv_table(medium_dataset, min_sessions=30)
        assert all(r.n_sessions >= 30 for r in rows)
        pcts = [r.percentage for r in rows]
        assert pcts == sorted(pcts, reverse=True)

    def test_enterprises_dominate_high_cv(self, medium_dataset):
        rows = netdiag.org_cv_table(medium_dataset, min_sessions=30)
        enterprise = [r.percentage for r in rows if r.org.startswith("Enterprise")]
        residential = [r.percentage for r in rows if not r.org.startswith("Enterprise")]
        assert enterprise and residential
        assert max(enterprise) > max(residential)

    def test_path_cv_values(self, medium_dataset):
        values = netdiag.path_cv_values(medium_dataset, min_sessions=3)
        assert len(values) > 10
        assert all(v >= 0 for v in values)

    def test_loss_split_covers_all_sessions(self, medium_dataset):
        split = netdiag.split_sessions_by_loss(medium_dataset)
        total = len(split.with_loss) + len(split.without_loss)
        assert total == len(medium_dataset.sessions())
        assert split.with_loss and split.without_loss

    def test_per_chunk_retx_first_highest(self, medium_dataset):
        rows = netdiag.per_chunk_retx_rates(medium_dataset)
        rates = dict(rows)
        assert rates[0] == max(rates.values())

    def test_rebuffer_given_loss_rows_shape(self, medium_dataset):
        rows = netdiag.rebuffer_given_loss_by_chunk(medium_dataset, max_chunk_id=8)
        assert all(0.0 <= p <= 1.0 for _, p, _ in rows)
        assert all(cid <= 8 for cid, _, _ in rows)

    def test_rebuffer_vs_retx_bins(self, medium_dataset):
        rows = netdiag.session_rebuffer_vs_retx(medium_dataset)
        assert rows
        with pytest.raises(ValueError):
            netdiag.session_rebuffer_vs_retx(medium_dataset, retx_bin_edges=(1,))


class TestPersistence:
    def test_prefix_min_rtt_groups(self, small_dataset):
        minima = persistence.prefix_min_rtt(small_dataset)
        assert len(minima) > 10
        assert all(v > 0 for v in minima.values())

    def test_session_persistence_conditional_higher(self, medium_dataset):
        report = persistence.session_server_persistence(medium_dataset)
        assert (
            report.mean_miss_ratio_given_one_miss > report.overall_miss_ratio
        )
        assert report.mean_slow_ratio_given_one_slow > report.overall_slow_read_ratio

    def test_tail_latency_prefixes(self, medium_result, medium_dataset):
        pop_locations = {p.pop_id: p.location for p in medium_result.deployment.pops}
        report = persistence.tail_latency_prefixes(medium_dataset, pop_locations)
        assert report.n_persistent > 0
        assert 0.0 <= report.non_us_fraction <= 1.0
        # recurrence frequencies are day-fractions
        assert all(0.0 < f <= 1.0 for f in report.recurrence.values())

    def test_tail_latency_validation(self, medium_dataset):
        with pytest.raises(ValueError):
            persistence.tail_latency_prefixes(
                medium_dataset, {}, top_recurrence_fraction=0.0
            )

    def test_empty_dataset(self):
        report = persistence.session_server_persistence(Dataset())
        assert report.overall_miss_ratio == 0.0


class TestPopularity:
    def test_video_ranks_by_volume(self, medium_dataset):
        ranks = popularity.video_ranks(medium_dataset)
        counts = {}
        for s in medium_dataset.player_sessions:
            counts[s.video_id] = counts.get(s.video_id, 0) + 1
        hottest = max(counts, key=counts.get)
        assert ranks[hottest] == 0

    def test_miss_pct_rises_into_tail(self, medium_dataset):
        rows = popularity.rank_tail_miss_percentage(medium_dataset)
        assert rows[-1][1] > rows[0][1]

    def test_hit_latency_rises_into_tail(self, medium_dataset):
        rows = popularity.rank_tail_hit_latency(medium_dataset)
        assert rows[-1][1] > rows[0][1]

    def test_load_latency_paradox(self, medium_dataset):
        corr = popularity.load_latency_correlation(medium_dataset)
        assert corr is not None
        assert corr < 0.2  # busier servers are NOT slower

    def test_server_rows_sorted_by_load(self, medium_dataset):
        rows = popularity.server_load_vs_latency(medium_dataset)
        loads = [r.n_requests for r in rows]
        assert loads == sorted(loads, reverse=True)

    def test_correlation_none_for_few_servers(self):
        assert popularity.load_latency_correlation(make_dataset(2)) is None


class TestQoe:
    def test_session_qoe_fields(self, small_dataset):
        view = small_dataset.sessions()[0]
        q = qoe.session_qoe(view)
        assert q.n_chunks == view.n_chunks
        assert 0.0 <= q.dropped_frame_pct <= 100.0

    def test_summarize_keys(self, small_dataset):
        summary = qoe.summarize(small_dataset)
        assert summary["n_sessions"] > 0
        assert summary["median_startup_ms"] > 0
        assert 0 <= summary["rebuffer_session_fraction"] <= 1

    def test_summarize_empty(self):
        assert qoe.summarize(Dataset()) == {"n_sessions": 0}

    def test_startup_relations_monotone_inputs(self, medium_dataset):
        stat = qoe.startup_vs_first_chunk_srtt(medium_dataset)
        assert len(stat.centers) >= 3
        assert stat.means[-1] > stat.means[0]


class TestRenderingDiag:
    def test_drops_vs_rate_shape(self, medium_dataset):
        stat = rendering_diag.drops_vs_download_rate(medium_dataset)
        assert len(stat.centers) >= 4
        slow = stat.means[0]
        fast = stat.means[-1]
        assert slow > fast

    def test_hw_rendering_low(self, medium_dataset):
        hw = rendering_diag.hardware_rendering_drop_pct(medium_dataset)
        assert hw is not None and hw < 2.0

    def test_rate_rule_split_sums_to_one(self, medium_dataset):
        split = rendering_diag.rate_rule_validation(medium_dataset)
        total = (
            split.confirming_fraction
            + split.low_rate_good_render
            + split.good_rate_bad_render
        )
        assert total == pytest.approx(1.0)
        assert split.confirming_fraction > 0.5

    def test_browser_table_normalized(self, medium_dataset):
        rows = rendering_diag.browser_rendering_table(medium_dataset)
        windows_share = sum(r.chunk_share_pct for r in rows if r.os == "Windows")
        assert windows_share > 85.0

    def test_first_chunk_split_nonempty(self, medium_dataset):
        first, other = rendering_diag.first_chunk_equivalence_split(
            medium_dataset, srtt_band_ms=(30.0, 100.0)
        )
        assert first and other
        assert np.median(first) > np.median(other)
