"""Unit tests for the CDN substrate: policies, cache, server, PoPs, mapping."""

import numpy as np
import pytest

from repro.cdn.backend import BackendService
from repro.cdn.cache import CacheLevel, CacheStatus, TwoLevelCache
from repro.cdn.mapping import TrafficEngineering
from repro.cdn.policies import (
    FifoPolicy,
    GdSizePolicy,
    LruPolicy,
    PerfectLfuPolicy,
    make_policy,
)
from repro.cdn.pop import build_default_deployment
from repro.cdn.server import CdnServer, CdnServerConfig
from repro.workload.geo import GeoPoint


class TestPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_insert(key, 1, 1.0)
        policy.on_hit("a")
        assert policy.select_victim() == "b"

    def test_lru_remove(self):
        policy = LruPolicy()
        policy.on_insert("a", 1, 1.0)
        policy.on_remove("a")
        assert len(policy) == 0
        with pytest.raises(LookupError):
            policy.select_victim()

    def test_fifo_ignores_hits(self):
        policy = FifoPolicy()
        for key in "abc":
            policy.on_insert(key, 1, 1.0)
        policy.on_hit("a")
        assert policy.select_victim() == "a"

    def test_gdsize_prefers_evicting_cheap_large(self):
        policy = GdSizePolicy()
        policy.on_insert("large_cheap", 100, 1.0)
        policy.on_insert("small_costly", 1, 100.0)
        assert policy.select_victim() == "large_cheap"

    def test_gdsize_clock_advances(self):
        policy = GdSizePolicy()
        policy.on_insert("a", 10, 1.0)
        victim = policy.select_victim()
        policy.on_remove(victim)
        # after the clock advanced, new same-priority objects outrank old ones
        policy.on_insert("b", 10, 1.0)
        policy.on_insert("c", 10, 1.0)
        assert policy.select_victim() == "b"

    def test_gdsize_hit_refreshes(self):
        policy = GdSizePolicy()
        policy.on_insert("a", 10, 1.0)
        policy.on_insert("b", 10, 1.0)
        # advance the clock by evicting a dummy
        policy.on_insert("dummy", 1000, 0.001)
        policy.on_remove(policy.select_victim())
        policy.on_hit("a")
        assert policy.select_victim() == "b"

    def test_gdsize_size_validation(self):
        with pytest.raises(ValueError):
            GdSizePolicy().on_insert("a", 0, 1.0)

    def test_perfect_lfu_keeps_frequency_across_eviction(self):
        policy = PerfectLfuPolicy()
        for _ in range(5):
            policy.on_insert("hot", 1, 1.0)
            policy.on_remove("hot")
        policy.on_insert("hot", 1, 1.0)  # freq now 6
        policy.on_insert("cold", 1, 1.0)  # freq 1
        assert policy.select_victim() == "cold"

    def test_perfect_lfu_hits_increase_frequency(self):
        policy = PerfectLfuPolicy()
        policy.on_insert("a", 1, 1.0)
        policy.on_insert("b", 1, 1.0)
        policy.on_hit("a")
        assert policy.select_victim() == "b"

    def test_make_policy_names(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("GD-Size"), GdSizePolicy)
        assert isinstance(make_policy("perfect-lfu"), PerfectLfuPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        with pytest.raises(ValueError):
            make_policy("nope")

    @pytest.mark.parametrize("name", ["lru", "fifo", "gdsize", "perfect-lfu"])
    def test_policy_len_tracks_contents(self, name):
        policy = make_policy(name)
        policy.on_insert("a", 2, 1.0)
        policy.on_insert("b", 2, 1.0)
        assert len(policy) == 2
        policy.on_remove("a")
        assert len(policy) == 1


class TestCacheLevel:
    def test_hit_after_insert(self):
        cache = CacheLevel(100)
        cache.insert("a", 10)
        assert cache.lookup("a")
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = CacheLevel(100)
        assert not cache.lookup("missing")
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.0

    def test_eviction_frees_space(self):
        cache = CacheLevel(25)
        cache.insert("a", 10)
        cache.insert("b", 10)
        cache.insert("c", 10)  # evicts "a" (LRU)
        assert not cache.peek("a")
        assert cache.peek("b") and cache.peek("c")
        assert cache.used_bytes == 20
        assert cache.stats.evictions == 1

    def test_oversized_object_not_admitted(self):
        cache = CacheLevel(10)
        cache.insert("big", 100)
        assert not cache.peek("big")

    def test_reinsert_is_noop(self):
        cache = CacheLevel(100)
        cache.insert("a", 10)
        cache.insert("a", 10)
        assert cache.used_bytes == 10

    def test_invalidate(self):
        cache = CacheLevel(100)
        cache.insert("a", 10)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.used_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheLevel(0)
        with pytest.raises(ValueError):
            CacheLevel(10).insert("a", 0)


class TestTwoLevelCache:
    def test_miss_then_admit_then_ram_hit(self):
        cache = TwoLevelCache(100, 1000)
        assert cache.lookup("a", 10) is CacheStatus.MISS
        cache.admit("a", 10)
        assert cache.lookup("a", 10) is CacheStatus.HIT_RAM

    def test_disk_hit_promotes_to_ram(self):
        cache = TwoLevelCache(20, 1000)
        cache.admit("a", 10)
        cache.admit("b", 10)
        cache.admit("c", 10)  # "a" falls out of RAM but stays on disk
        assert cache.lookup("a", 10) is CacheStatus.HIT_DISK
        assert cache.lookup("a", 10) is CacheStatus.HIT_RAM  # promoted

    def test_disk_capacity_must_dominate(self):
        with pytest.raises(ValueError):
            TwoLevelCache(100, 50)

    def test_contains_no_side_effects(self):
        cache = TwoLevelCache(100, 1000)
        cache.admit("a", 10)
        hits_before = cache.ram.stats.hits
        assert cache.contains("a")
        assert cache.ram.stats.hits == hits_before

    def test_policy_name_plumbs_through(self):
        cache = TwoLevelCache(100, 1000, policy_name="gdsize")
        assert isinstance(cache.ram.policy, GdSizePolicy)
        assert isinstance(cache.disk.policy, GdSizePolicy)


class TestBackend:
    def test_latency_includes_rtt(self, rng):
        backend = BackendService(service_mean_ms=10.0, service_sigma=0.1)
        samples = [backend.first_byte_latency_ms(50.0, rng) for _ in range(100)]
        assert min(samples) > 50.0
        assert 55.0 < np.median(samples) < 70.0

    def test_negative_rtt_rejected(self, rng):
        with pytest.raises(ValueError):
            BackendService().first_byte_latency_ms(-1.0, rng)


class TestDeployment:
    def test_default_has_85_servers(self):
        deployment = build_default_deployment()
        assert deployment.n_servers == 85

    def test_every_pop_has_a_server(self):
        deployment = build_default_deployment()
        assert all(pop.n_servers >= 1 for pop in deployment.pops)

    def test_server_ids_unique(self):
        deployment = build_default_deployment()
        ids = deployment.all_server_ids()
        assert len(set(ids)) == len(ids) == 85

    def test_nearest_pop(self):
        deployment = build_default_deployment()
        near_chicago = GeoPoint(lat=41.9, lon=-87.6, city="x", country="US")
        assert deployment.nearest_pop(near_chicago).pop_id == "pop-chicago"

    def test_pop_of_server(self):
        deployment = build_default_deployment()
        pop = deployment.pops[0]
        assert deployment.pop_of_server(pop.server_ids[0]).pop_id == pop.pop_id
        with pytest.raises(KeyError):
            deployment.pop_of_server("srv-nowhere-99")

    def test_backend_rtt_positive(self):
        deployment = build_default_deployment()
        assert all(pop.backend_rtt_ms > 0 for pop in deployment.pops)

    def test_custom_server_count(self):
        deployment = build_default_deployment(total_servers=20)
        assert deployment.n_servers == 20

    def test_too_few_servers_rejected(self):
        with pytest.raises(ValueError):
            build_default_deployment(total_servers=3)


class TestTrafficEngineering:
    @pytest.fixture(scope="class")
    def deployment(self):
        return build_default_deployment()

    def test_cache_focused_is_sticky_per_video(self, deployment):
        te = TrafficEngineering(deployment=deployment)
        client = GeoPoint(lat=40.7, lon=-74.0, city="x", country="US")
        decisions = {
            te.assign(client, video_id=7, video_rank=7, session_id=f"s{i}").server_id
            for i in range(20)
        }
        assert len(decisions) == 1

    def test_cache_focused_spreads_videos(self, deployment):
        te = TrafficEngineering(deployment=deployment)
        client = GeoPoint(lat=40.7, lon=-74.0, city="x", country="US")
        servers = {
            te.assign(client, video_id=v, video_rank=v, session_id="s").server_id
            for v in range(50)
        }
        assert len(servers) > 1

    def test_nearest_pop_used(self, deployment):
        te = TrafficEngineering(deployment=deployment)
        seattle_client = GeoPoint(lat=47.6, lon=-122.3, city="x", country="US")
        decision = te.assign(seattle_client, 1, 1, "s")
        assert decision.pop.pop_id == "pop-seattle"

    def test_popularity_partitioned_spreads_hot_titles(self, deployment):
        te = TrafficEngineering(deployment=deployment, strategy="popularity-partitioned")
        te.configure_catalog(1000)
        client = GeoPoint(lat=40.7, lon=-74.0, city="x", country="US")
        hot_servers = {
            te.assign(client, video_id=0, video_rank=0, session_id=f"s{i}").server_id
            for i in range(30)
        }
        cold_servers = {
            te.assign(client, video_id=999, video_rank=999, session_id=f"s{i}").server_id
            for i in range(30)
        }
        assert len(hot_servers) > 1  # hot title spread over the PoP
        assert len(cold_servers) == 1  # tail stays cache-focused

    def test_random_strategy_varies_by_session(self, deployment):
        te = TrafficEngineering(deployment=deployment, strategy="random")
        client = GeoPoint(lat=40.7, lon=-74.0, city="x", country="US")
        servers = {
            te.assign(client, 1, 1, session_id=f"s{i}").server_id for i in range(30)
        }
        assert len(servers) > 1

    def test_strategy_validation(self, deployment):
        with pytest.raises(ValueError):
            TrafficEngineering(deployment=deployment, strategy="bogus")
        with pytest.raises(ValueError):
            TrafficEngineering(deployment=deployment, partition_top_fraction=0.0)


class TestCdnServer:
    def make_server(self, **config_kwargs):
        config_kwargs.setdefault("ram_capacity_bytes", 10 * 1024**2)
        config_kwargs.setdefault("disk_capacity_bytes", 100 * 1024**2)
        config = CdnServerConfig(**config_kwargs)
        return CdnServer("srv-test-00", backend_rtt_ms=30.0, config=config, seed=1)

    def test_first_request_misses_and_pays_backend(self):
        server = self.make_server()
        result = server.serve(("v", 0, 1000), 500_000, 0.0)
        assert result.status is CacheStatus.MISS
        assert result.d_be_ms > 30.0
        assert result.retry_timer_hit

    def test_second_request_hits_ram_fast(self):
        server = self.make_server()
        key = ("v", 0, 1000)
        server.serve(key, 500_000, 0.0)
        result = server.serve(key, 500_000, 100.0)
        assert result.status is CacheStatus.HIT_RAM
        assert result.d_be_ms == 0.0
        assert result.d_read_ms < 10.0
        assert not result.retry_timer_hit

    def test_disk_hit_pays_retry_timer(self):
        server = self.make_server(ram_capacity_bytes=1024**2)
        # fill RAM far beyond capacity so early objects fall to disk-only
        for i in range(10):
            server.serve(("v", i, 1000), 500_000, float(i))
        result = server.serve(("v", 0, 1000), 500_000, 100.0)
        assert result.status is CacheStatus.HIT_DISK
        assert result.d_read_ms >= server.config.retry_timer_ms

    def test_latency_ordering_hit_disk_miss(self):
        server = self.make_server(ram_capacity_bytes=1024**2)
        ram_hits, disk_hits, misses = [], [], []
        for i in range(60):
            result = server.serve(("v", i % 20, 1000), 400_000, float(i))
            bucket = {
                CacheStatus.HIT_RAM: ram_hits,
                CacheStatus.HIT_DISK: disk_hits,
                CacheStatus.MISS: misses,
            }[result.status]
            bucket.append(result.total_ms)
        assert misses and disk_hits
        if ram_hits:
            assert np.median(ram_hits) < np.median(disk_hits)
        assert np.median(disk_hits) < np.median(misses)

    def test_d_cdn_decomposition(self):
        server = self.make_server()
        result = server.serve(("v", 0, 1000), 100_000, 0.0)
        assert result.d_cdn_ms == pytest.approx(
            result.d_wait_ms + result.d_open_ms + result.d_read_ms
        )
        assert result.total_ms == pytest.approx(result.d_cdn_ms + result.d_be_ms)

    def test_prefetch_warms_cache(self):
        server = self.make_server()
        assert server.prefetch(("v", 1, 1000), 500_000)
        assert not server.prefetch(("v", 1, 1000), 500_000)  # already cached
        result = server.serve(("v", 1, 1000), 500_000, 0.0)
        assert result.status is not CacheStatus.MISS
        assert server.prefetch_fetches == 1

    def test_stats_counters(self):
        server = self.make_server()
        server.serve(("v", 0, 1000), 100_000, 0.0)
        server.serve(("v", 0, 1000), 100_000, 1.0)
        assert server.requests_served == 2
        assert server.bytes_served == 200_000
        assert server.cache_miss_ratio == pytest.approx(0.5)

    def test_load_estimate_rises_with_rate(self):
        server = self.make_server()
        for i in range(50):
            server.serve(("v", i, 1000), 100_000, i * 0.5)  # 2000 req/s
        busy = server.load_estimate
        quiet_server = self.make_server()
        for i in range(50):
            quiet_server.serve(("v", i, 1000), 100_000, i * 1000.0)
        assert busy > quiet_server.load_estimate
        assert quiet_server.request_rate_per_s < 10.0

    def test_serve_validation(self):
        server = self.make_server()
        with pytest.raises(ValueError):
            server.serve(("v", 0, 1000), 0, 0.0)
        with pytest.raises(ValueError):
            server.prefetch(("v", 0, 1000), 0)
