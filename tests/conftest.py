"""Shared fixtures: one simulation per scale, shared across the whole run.

The expensive full-path simulations are session-scoped (and additionally
memoized inside :mod:`repro.analysis.experiments.common`), so every test
module analyzes the same trace rather than re-simulating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import common
from repro.core.proxy_filter import filter_proxies


@pytest.fixture(scope="session")
def small_result():
    """A small full simulation (fast; for plumbing and smoke tests)."""
    return common.standard_result("small")


@pytest.fixture(scope="session")
def small_dataset(small_result):
    """The small simulation's proxy-filtered dataset."""
    dataset, _ = filter_proxies(small_result.dataset)
    return dataset


@pytest.fixture(scope="session")
def medium_result():
    """The standard medium simulation (shape assertions need its volume)."""
    return common.standard_result("medium")


@pytest.fixture(scope="session")
def medium_dataset(medium_result):
    """The medium simulation's proxy-filtered dataset."""
    return common.filtered_dataset("medium")


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
