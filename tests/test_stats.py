"""Unit tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    BinnedStat,
    Cdf,
    binned_stats,
    coefficient_of_variation,
    empirical_ccdf,
    empirical_cdf,
    iqr,
    quantile,
    zipf_weights,
)


class TestEmpiricalCdf:
    def test_sorted_and_normalized(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert list(cdf.xs) == [1.0, 2.0, 3.0]
        assert cdf.ps[-1] == pytest.approx(1.0)

    def test_probabilities_monotone(self):
        cdf = empirical_cdf(np.random.default_rng(0).normal(size=100))
        assert np.all(np.diff(cdf.ps) >= 0)

    def test_median_of_odd_sample(self):
        cdf = empirical_cdf([10.0, 20.0, 30.0])
        assert cdf.median == 20.0

    def test_value_at_extremes(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.value_at(0.0) == 1.0
        assert cdf.value_at(1.0) == 4.0

    def test_value_at_rejects_out_of_range(self):
        cdf = empirical_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.value_at(1.5)

    def test_prob_at_interpolates_steps(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.prob_at(2.5) == pytest.approx(0.5)
        assert cdf.prob_at(0.5) == 0.0
        assert cdf.prob_at(10.0) == pytest.approx(1.0)

    def test_empty_input(self):
        cdf = empirical_cdf([])
        assert len(cdf) == 0
        with pytest.raises(ValueError):
            cdf.median  # noqa: B018

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Cdf(xs=np.array([1.0, 2.0]), ps=np.array([1.0]))


class TestEmpiricalCcdf:
    def test_complementary(self):
        values = [1.0, 2.0, 3.0, 4.0]
        cdf = empirical_cdf(values)
        ccdf = empirical_ccdf(values)
        assert ccdf.complementary
        for x, p in zip(ccdf.xs, ccdf.ps):
            assert p == pytest.approx(1.0 - cdf.prob_at(x))

    def test_last_point_zero(self):
        ccdf = empirical_ccdf([5.0, 6.0])
        assert ccdf.ps[-1] == pytest.approx(0.0)


class TestBinnedStats:
    def test_basic_means(self):
        stat = binned_stats([0.5, 0.6, 1.5, 1.6], [1, 3, 10, 30], [0, 1, 2])
        assert len(stat.centers) == 2
        assert stat.means[0] == pytest.approx(2.0)
        assert stat.means[1] == pytest.approx(20.0)

    def test_min_count_drops_sparse_bins(self):
        stat = binned_stats([0.5, 1.5, 1.6], [1, 2, 3], [0, 1, 2], min_count=2)
        assert len(stat.centers) == 1
        assert stat.centers[0] == pytest.approx(1.5)

    def test_iqr_ordering(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, 500)
        y = rng.normal(size=500)
        stat = binned_stats(x, y, np.linspace(0, 10, 6))
        assert np.all(stat.q25 <= stat.medians)
        assert np.all(stat.medians <= stat.q75)

    def test_values_outside_bins_ignored(self):
        stat = binned_stats([-5.0, 0.5, 99.0], [111, 1, 222], [0, 1])
        assert stat.counts.sum() == 1
        assert stat.means[0] == pytest.approx(1.0)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            binned_stats([1], [1], [0])
        with pytest.raises(ValueError):
            binned_stats([1], [1], [1, 1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            binned_stats([1, 2], [1], [0, 1])

    def test_rows_shape(self):
        stat = binned_stats([0.5, 0.6], [1, 2], [0, 1])
        rows = stat.rows()
        assert len(rows) == 1
        assert len(rows[0]) == 6


class TestCoefficientOfVariation:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_known_value(self):
        # mean 2, population std 1 -> CV = 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_single_sample_nan(self):
        assert np.isnan(coefficient_of_variation([1.0]))

    def test_nonpositive_mean_nan(self):
        assert np.isnan(coefficient_of_variation([-1.0, 1.0]))

    def test_scale_invariance(self):
        base = [1.0, 2.0, 3.0, 4.0]
        scaled = [10 * v for v in base]
        assert coefficient_of_variation(base) == pytest.approx(
            coefficient_of_variation(scaled)
        )


class TestQuantiles:
    def test_quantile_median(self):
        assert quantile([1, 2, 3], 0.5) == 2.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_iqr_pair(self):
        low, high = iqr(list(range(101)))
        assert low == pytest.approx(25.0)
        assert high == pytest.approx(75.0)


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 0.8)
        assert weights.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert np.all(np.diff(weights) < 0)

    def test_alpha_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_higher_alpha_more_skew(self):
        flat = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 1.5)
        assert steep[0] > flat[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, 1.0, top_mass_rank=11)
