"""Tests for the experiment reproductions (one per paper figure/table).

Standalone experiments (fig03, fig13, fig17, fig20) are exercised fully;
dataset experiments run against the shared medium simulation and must pass
all of their shape checks — this is the "does the reproduction reproduce
the paper" gate.
"""

import pytest

from repro.analysis.experiments import (
    DATASET_EXPERIMENTS,
    RESULT_EXPERIMENTS,
    STANDALONE_EXPERIMENTS,
    all_experiments,
    get_experiment,
    run_experiment,
)
from repro.analysis.experiments.base import ExperimentResult, register


class TestRegistry:
    def test_all_23_experiments_registered(self):
        ids = all_experiments()
        assert len(ids) == 23
        assert set(DATASET_EXPERIMENTS) | set(RESULT_EXPERIMENTS) | set(
            STANDALONE_EXPERIMENTS
        ) == set(ids)

    def test_every_paper_artifact_covered(self):
        ids = set(all_experiments())
        for figure in range(3, 23):
            assert f"fig{figure:02d}" in ids
        for table in (1, 4, 5):
            assert f"table{table:02d}" in ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("fig03")(lambda: None)

    def test_result_formatting(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            summary={"value": 1.5},
            checks={"ok": True, "bad": False},
        )
        text = result.format_report()
        assert "PASS" in text and "FAIL" in text
        assert not result.all_checks_passed


class TestStandaloneExperiments:
    def test_fig03_skew_and_lengths(self):
        result = run_experiment("fig03", n_videos=5000, n_requests=100_000)
        assert result.all_checks_passed, result.format_report()
        assert 0.5 < result.summary["top10pct_playback_share_observed"] < 0.8

    def test_fig13_loss_position_paradox(self):
        result = run_experiment("fig13")
        assert result.all_checks_passed, result.format_report()
        assert (
            result.summary["case1_session_retx_pct"]
            < result.summary["case2_session_retx_pct"]
        )
        assert result.summary["case1_total_rebuffer_ms"] > 0
        assert result.summary["case2_total_rebuffer_ms"] == 0

    def test_fig17_detector_pinpoints_chunk(self):
        result = run_experiment("fig17")
        assert result.all_checks_passed, result.format_report()
        assert result.summary["flagged_chunk"] == 7.0

    def test_fig17_other_position(self):
        result = run_experiment("fig17", ds_chunk=12)
        assert result.summary["flagged_chunk"] == 12.0

    def test_fig20_controlled_rendering(self):
        result = run_experiment("fig20")
        assert result.all_checks_passed, result.format_report()
        assert result.summary["gpu_drop_pct"] < result.summary["software_idle_drop_pct"]


@pytest.mark.parametrize("experiment_id", sorted(DATASET_EXPERIMENTS))
def test_dataset_experiment_checks_pass(experiment_id, medium_dataset):
    result = run_experiment(experiment_id, medium_dataset)
    assert isinstance(result, ExperimentResult)
    assert result.series, "experiment produced no series data"
    assert result.all_checks_passed, result.format_report()


@pytest.mark.parametrize("experiment_id", sorted(RESULT_EXPERIMENTS))
def test_result_experiment_checks_pass(experiment_id, medium_result):
    result = run_experiment(experiment_id, medium_result)
    assert result.all_checks_passed, result.format_report()


class TestHeadlineNumbers:
    """The paper's named scalar statistics, within tolerance bands."""

    def test_hit_vs_miss_order_of_magnitude(self, medium_dataset):
        result = run_experiment("fig05", medium_dataset)
        # paper: 2 ms vs 80 ms (40x); require the right decades
        assert result.summary["median_hit_total_ms"] < 10.0
        assert result.summary["median_miss_total_ms"] > 40.0
        assert result.summary["hit_miss_ratio"] > 10.0

    def test_retry_timer_share(self, medium_dataset):
        result = run_experiment("fig05", medium_dataset)
        # paper: 35% of chunks pay the open-read-retry timer
        assert 0.15 < result.summary["retry_timer_chunk_fraction"] < 0.60

    def test_first_chunk_ds_gap_near_300ms(self, medium_dataset):
        result = run_experiment("fig18", medium_dataset)
        assert 150.0 < result.summary["median_gap_ms"] < 600.0

    def test_nonzero_ds_fraction_near_paper(self, medium_dataset):
        result = run_experiment("table05", medium_dataset)
        # paper: 17.6% of chunks have non-zero download-stack latency
        assert 0.05 < result.summary["nonzero_ds_chunk_fraction"] < 0.40

    def test_rendering_rule_confirmation_rate(self, medium_dataset):
        result = run_experiment("fig19", medium_dataset)
        # paper: 85.5% confirm, 5.7% low-rate-good, 6.9% good-rate-bad
        assert result.summary["rule_confirming_fraction"] > 0.70

    def test_all_13_findings_supported(self, medium_result):
        result = run_experiment("table01", medium_result)
        assert result.summary["n_supported"] == result.summary["n_findings"] == 13.0
