"""Engine-selection API + fleet-engine determinism contract.

The contract under test (docs/PERFORMANCE.md, "Fleet engine"): engine
choice is an execution knob.  For a fixed seed, ``engine="fleet"``
produces record- and byte-identical telemetry — datasets, metrics
documents, traces — to ``engine="event"`` and to any ``workers=K``
sharding of either, including under fault injection, tracing, and
spill-to-disk.  ``"auto"`` resolves purely from the session count, so
every shard resolves identically.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.api import run
from repro.engine import (
    AUTO_FLEET_MIN_SESSIONS,
    ENGINE_NAMES,
    ENGINE_REGISTRY,
    get_engine,
    resolve_engine,
    run_event_period,
    run_fleet_period,
)
from repro.obs.manifest import (
    EXECUTION_FIELDS,
    config_hash,
    dump_json,
    metrics_document,
)
from repro.obs.trace import event_json_line
from repro.simulation.config import SimulationConfig
from repro.simulation.execution import EXECUTION_FIELD_NAMES, ExecutionOptions

FAULT_SPEC = (
    Path(__file__).resolve().parent.parent / "examples" / "fault_cdn_degradation.json"
)

KINDS = (
    "player_chunks",
    "cdn_chunks",
    "tcp_snapshots",
    "player_sessions",
    "cdn_sessions",
    "ground_truth",
)


def _config(**overrides) -> SimulationConfig:
    """The identity workload: faults + tracing on a warmed two-tier CDN."""
    defaults = dict(
        n_sessions=120,
        warmup_sessions=40,
        seed=11,
        n_videos=60,
        n_servers=12,
        trace_sample=0.2,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _snapshot(config: SimulationConfig, spill_dir=None):
    """(per-kind record reprs, metrics-document bytes, trace JSONL) of a run."""
    if spill_dir is not None:
        config = config.with_overrides(spill_dir=str(spill_dir))
    result = run(config, faults=FAULT_SPEC)
    simulation = result.simulation
    dataset = simulation.dataset.sorted()
    kinds = {kind: [str(rec) for rec in getattr(dataset, kind)] for kind in KINDS}
    metrics = dump_json(metrics_document(simulation))
    trace = "\n".join(event_json_line(e) for e in simulation.trace.events())
    return kinds, metrics, trace


class TestEngineSelection:
    def test_auto_resolves_by_session_count(self):
        assert resolve_engine("auto", AUTO_FLEET_MIN_SESSIONS - 1) == "event"
        assert resolve_engine("auto", AUTO_FLEET_MIN_SESSIONS) == "fleet"
        assert resolve_engine("auto", 10 * AUTO_FLEET_MIN_SESSIONS) == "fleet"

    def test_concrete_names_pass_through(self):
        # explicit choices never flip on session count
        assert resolve_engine("event", 10**6) == "event"
        assert resolve_engine("fleet", 1) == "fleet"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp", 100)
        with pytest.raises(ValueError, match="unknown engine"):
            SimulationConfig(n_sessions=10, engine="warp")
        with pytest.raises(ValueError, match="registered engines"):
            get_engine("auto")  # "auto" must be resolved before dispatch

    def test_registry_covers_every_concrete_engine(self):
        assert set(ENGINE_REGISTRY) == set(ENGINE_NAMES) - {"auto"}
        assert ENGINE_REGISTRY["event"] is run_event_period
        assert ENGINE_REGISTRY["fleet"] is run_fleet_period
        assert get_engine("fleet") is run_fleet_period


class TestExecutionOptions:
    def test_typed_view_mirrors_config(self):
        config = SimulationConfig(
            n_sessions=10, workers=3, engine="fleet", trace_sample=0.5
        )
        options = config.execution
        assert isinstance(options, ExecutionOptions)
        for name in EXECUTION_FIELD_NAMES:
            assert getattr(options, name) == getattr(config, name)

    def test_hash_exclusion_is_structural(self):
        # the manifest's exclusion set IS the ExecutionOptions field list:
        # adding an execution knob to the dataclass excludes it from the
        # workload hash automatically
        assert EXECUTION_FIELDS == frozenset(EXECUTION_FIELD_NAMES)
        assert "engine" in EXECUTION_FIELDS
        assert "spill_dir" in EXECUTION_FIELDS

    def test_engine_excluded_from_config_hash(self, tmp_path):
        base = _config()
        reference = config_hash(base)
        for overrides in (
            dict(engine="event"),
            dict(engine="fleet"),
            dict(engine="fleet", workers=4),
            dict(spill_dir=str(tmp_path)),
            dict(trace_sample=0.0),
        ):
            assert config_hash(base.with_overrides(**overrides)) == reference
        assert config_hash(base.with_overrides(n_sessions=121)) != reference


class TestCrossEngineIdentity:
    """The PR's acceptance bar: event == fleet == sharded, byte for byte."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        spill = tmp_path_factory.mktemp("spill-event")
        return _snapshot(_config(engine="event"), spill_dir=spill)

    def test_fleet_matches_event(self, reference, tmp_path):
        kinds, metrics, trace = _snapshot(_config(engine="fleet"), spill_dir=tmp_path)
        ref_kinds, ref_metrics, ref_trace = reference
        for kind in KINDS:
            assert kinds[kind] == ref_kinds[kind], kind
        assert metrics == ref_metrics
        assert trace == ref_trace

    def test_sharded_fleet_matches_serial_event(self, reference, tmp_path):
        kinds, metrics, trace = _snapshot(
            _config(engine="fleet", workers=4), spill_dir=tmp_path
        )
        ref_kinds, ref_metrics, ref_trace = reference
        for kind in KINDS:
            assert kinds[kind] == ref_kinds[kind], kind
        assert metrics == ref_metrics
        assert trace == ref_trace

    def test_reference_is_nontrivial(self, reference):
        # guard against the identity trivially passing on an empty run
        kinds, _, trace = reference
        assert len(kinds["player_chunks"]) > 300
        assert len(kinds["tcp_snapshots"]) > 1000
        assert trace.count("\n") > 100


def _stream_digest(config: SimulationConfig) -> str:
    """One hash over every record of a run — the RNG-stream fingerprint."""
    result = run(config, faults=FAULT_SPEC)
    digest = hashlib.sha256()
    dataset = result.simulation.dataset.sorted()
    for kind in KINDS:
        for record in getattr(dataset, kind):
            digest.update(str(record).encode("utf-8"))
    return digest.hexdigest()


class TestDemotePromotePins:
    """RNG-stream-identity regression pins for the demote/promote boundary.

    The fleet engine must consume exactly the draws the event loop would,
    in the same order, at every demotion trigger.  These runs force each
    trigger — full tracing (permanent demotion), faults (epoch demotion),
    and a calm no-fault run (no demotion at all) — and pin that the fleet
    stream equals the event stream on each.
    """

    CASES = {
        "all-demoted": dict(trace_sample=1.0),
        "fault-epochs": dict(trace_sample=0.0),
        "calm": dict(trace_sample=0.0, n_sessions=90, seed=3),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_fleet_stream_equals_event_stream(self, name):
        overrides = self.CASES[name]
        event = _stream_digest(_config(engine="event", **overrides))
        fleet = _stream_digest(_config(engine="fleet", **overrides))
        assert event == fleet, f"{name}: fleet diverged from the event loop"

    def test_fleet_is_reproducible(self):
        config = _config(engine="fleet")
        assert _stream_digest(config) == _stream_digest(config)
