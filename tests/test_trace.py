"""Causal tracing: per-chunk events, tcp_info snapshots, deterministic export.

The headline contract under test (docs/OBSERVABILITY.md "Tracing"): for a
fixed seed, ``repro simulate --trace-out`` serializes **byte-identical**
trace JSONL whether the run is serial or sharded across any worker count;
head-based sampling is keyed by a stable session-id hash, so the sampled
set never depends on shard layout; per-event fault annotations union to
exactly the chunk's ground-truth ``fault_labels``; and the 500 ms
``net.tcp_sample`` stream reproduces the paper's first-chunk
retransmission spike (§4.3, Fig. 15 analogue).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro import SimulationConfig, run
from repro.cli import main as cli_main
from repro.obs import config_hash
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    load_run_manifest,
    validate_manifest,
)
from repro.obs.trace import (
    FIRST_BYTE_STAGES,
    TRACE_EVENT_SPECS,
    TraceRecorder,
    chrome_trace_document,
    chunk_events,
    chunk_fault_labels,
    chunk_ids,
    dominant_stage,
    read_trace_jsonl,
    session_sampled,
    slowest_chunk,
    stage_durations,
    trace_meta_line,
    validate_trace,
    write_trace,
)

BROWNOUT_SPEC = Path(__file__).resolve().parent.parent / "examples" / "fault_cache_brownout.json"


def _config(**overrides) -> SimulationConfig:
    """Small workload that still exercises warmup, prefetch, and misses."""
    defaults = dict(
        n_sessions=80,
        warmup_sessions=40,
        seed=11,
        n_videos=20,
        n_servers=12,
        warm_first_chunks=True,
        prefetch_after_miss=True,
        trace_sample=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def brownout_serial():
    return run(_config(), faults=BROWNOUT_SPEC)


@pytest.fixture(scope="module")
def brownout_sharded():
    return run(_config(workers=4), faults=BROWNOUT_SPEC)


@pytest.fixture(scope="module")
def brownout_rows(brownout_serial, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    brownout_serial.write_trace(path)
    return read_trace_jsonl(path)


# ---------------------------------------------------------------------------
# sampling


class TestSampling:
    def test_bounds(self):
        assert session_sampled("s0011-00000000", 1.0)
        assert not session_sampled("s0011-00000000", 0.0)

    def test_monotone_in_sample_rate(self):
        # hash < p1*2^64 implies hash < p2*2^64 for p1 <= p2: raising the
        # rate only ever adds sessions, never swaps them
        ids = [f"s0011-{i:08d}" for i in range(200)]
        low = {s for s in ids if session_sampled(s, 0.3)}
        high = {s for s in ids if session_sampled(s, 0.7)}
        assert low < high

    def test_rate_is_approximately_honored(self):
        ids = [f"s0011-{i:08d}" for i in range(2000)]
        frac = sum(session_sampled(s, 0.5) for s in ids) / len(ids)
        assert 0.4 < frac < 0.6

    def test_recorder_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            TraceRecorder(0.0)
        with pytest.raises(ValueError):
            TraceRecorder(1.5)

    def test_config_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            SimulationConfig(trace_sample=-0.1)
        with pytest.raises(ValueError):
            SimulationConfig(trace_sample=1.1)

    def test_trace_sample_is_an_execution_field(self):
        # tracing is observational: it must not change run identity
        assert config_hash(_config()) == config_hash(_config(trace_sample=0.0))


# ---------------------------------------------------------------------------
# recorder semantics


class TestRecorder:
    def test_unregistered_event_name_rejected(self):
        recorder = TraceRecorder(1.0)
        trace = recorder.session_trace("s0000-00000000")
        with pytest.raises(KeyError):
            trace.chunk(0).emit("cdn.made_up_event", 0.0)

    def test_events_sorted_by_canonical_key(self):
        recorder = TraceRecorder(1.0)
        trace = recorder.session_trace("s0000-00000000")
        ct = trace.chunk(1)
        ct.emit("session.request", 10.0)
        trace.chunk(0).emit("session.request", 99.0)
        ct.emit("client.last_byte", 20.0)
        keys = [event[:3] for event in recorder.events()]
        assert keys == sorted(keys)

    def test_seq_is_per_session_monotone(self):
        recorder = TraceRecorder(1.0)
        trace = recorder.session_trace("s0000-00000000")
        trace.chunk(0).emit("session.request", 0.0)
        trace.chunk(1).emit("session.request", 1.0)
        seqs = [event[2] for event in recorder.events()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


# ---------------------------------------------------------------------------
# determinism: the parallel-merge contract extends to traces


class TestDeterminism:
    def test_serial_and_sharded_jsonl_byte_identical(
        self, brownout_serial, brownout_sharded, tmp_path
    ):
        jsonl_a, chrome_a = brownout_serial.write_trace(tmp_path / "a.jsonl")
        jsonl_b, chrome_b = brownout_sharded.write_trace(tmp_path / "b.jsonl")
        assert jsonl_a.read_bytes() == jsonl_b.read_bytes()
        assert chrome_a.read_bytes() == chrome_b.read_bytes()

    def test_sampling_stable_under_reshard(self, tmp_path):
        cfg = dict(n_sessions=40, warmup_sessions=20, trace_sample=0.5)
        one = run(_config(**cfg))
        three = run(_config(**cfg, workers=3))
        jsonl_a, _ = one.write_trace(tmp_path / "w1.jsonl")
        jsonl_b, _ = three.write_trace(tmp_path / "w3.jsonl")
        assert jsonl_a.read_bytes() == jsonl_b.read_bytes()
        sampled = {event[0] for event in one.trace.events()}
        assert 0 < len(sampled) < one.dataset.n_sessions

    def test_warmup_is_never_traced(self, brownout_serial):
        traced_sessions = {event[0] for event in brownout_serial.trace.events()}
        measured = {s.session_id for s in brownout_serial.dataset.player_sessions}
        assert traced_sessions == measured

    def test_disabled_tracing_costs_nothing(self):
        result = run(_config(trace_sample=0.0))
        assert result.trace is None
        with pytest.raises(ValueError):
            result.write_trace("unused.jsonl")


# ---------------------------------------------------------------------------
# fault-epoch annotations


class TestFaultAnnotations:
    def test_event_labels_union_to_ground_truth(self, brownout_serial, brownout_rows):
        truth = {
            (gt.session_id, gt.chunk_id): gt.fault_labels
            for gt in brownout_serial.dataset.ground_truth
        }
        keys = chunk_ids(brownout_rows)
        assert set(keys) == set(truth)
        for key in keys:
            assert chunk_fault_labels(chunk_events(brownout_rows, *key)) == truth[key]

    def test_brownout_makes_origin_the_modal_dominant_stage(self, brownout_rows):
        counts = Counter(
            dominant_stage(chunk_events(brownout_rows, *key))[0]
            for key in chunk_ids(brownout_rows)
        )
        assert counts.most_common(1)[0][0] == "origin"

    def test_stage_durations_cover_first_byte_stages_only(self, brownout_rows):
        key = chunk_ids(brownout_rows)[0]
        totals = stage_durations(chunk_events(brownout_rows, *key))
        assert set(totals) <= set(FIRST_BYTE_STAGES)
        assert totals.get("propagation", 0.0) > 0.0


# ---------------------------------------------------------------------------
# the 500 ms tcp_info stream (paper §4.3, Fig. 15 analogue)


class TestTcpSnapshots:
    def test_first_chunk_carries_the_retx_spike(self, brownout_serial):
        retx_by_index = Counter()
        for gt in brownout_serial.dataset.ground_truth:
            retx_by_index[gt.chunk_id] += gt.segments_retx
        spike, _ = retx_by_index.most_common(1)[0]
        assert spike == 0

    def test_snapshots_record_rto_above_floor(self, brownout_serial):
        snaps = brownout_serial.dataset.tcp_snapshots
        assert snaps and all(s.rto_ms >= 200.0 for s in snaps)

    def test_trace_samples_sit_on_500ms_grid(self, brownout_rows):
        for key in chunk_ids(brownout_rows)[:50]:
            times = [
                row["t_ms"]
                for row in chunk_events(brownout_rows, *key)
                if row["name"] == "net.tcp_sample"
            ]
            # consecutive periodic samples are 500 ms apart; the final
            # end-of-transfer sample may close the interval early
            for earlier, later in zip(times, times[1:-1]):
                assert later - earlier == pytest.approx(500.0)

    def test_trace_samples_match_dataset_end_state(self, brownout_serial, brownout_rows):
        snaps = {
            (s.session_id, s.chunk_id): s
            for s in brownout_serial.dataset.tcp_snapshots
        }
        checked = 0
        for key in chunk_ids(brownout_rows)[:50]:
            rows = [
                row
                for row in chunk_events(brownout_rows, *key)
                if row["name"] == "net.tcp_sample"
            ]
            if not rows or key not in snaps:
                continue
            last = rows[-1]
            assert last["args"]["retx_total"] == snaps[key].retx_total
            assert last["args"]["rto_ms"] == pytest.approx(snaps[key].rto_ms)
            checked += 1
        assert checked > 0


# ---------------------------------------------------------------------------
# export formats


class TestExports:
    def test_jsonl_round_trip_validates(self, brownout_serial, brownout_rows):
        summary = validate_trace(brownout_rows)
        assert summary["events"] == brownout_serial.trace.n_events
        assert summary["sessions"] == brownout_serial.dataset.n_sessions

    def test_validation_catches_missing_terminal_event(self, brownout_rows):
        broken = [row for row in brownout_rows if row["name"] != "client.last_byte"]
        with pytest.raises(ValueError, match="client.last_byte"):
            validate_trace(broken)

    def test_validation_catches_unknown_event_name(self, brownout_rows):
        broken = [dict(brownout_rows[0], name="cdn.bogus")] + brownout_rows[1:]
        with pytest.raises(ValueError, match="cdn.bogus"):
            validate_trace(broken)

    def test_chrome_document_shape(self, brownout_serial):
        doc = chrome_trace_document(brownout_serial.trace.events())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["schema"] == "repro.trace/1"
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases <= {"X", "i", "M"}
        assert any(event["ph"] == "X" for event in doc["traceEvents"])

    def test_write_trace_emits_both_artifacts(self, brownout_serial, tmp_path):
        jsonl_path, chrome_path = write_trace(
            brownout_serial.trace.events(), tmp_path / "trace.jsonl"
        )
        assert jsonl_path.name == "trace.jsonl"
        assert chrome_path.name == "trace.chrome.json"
        json.loads(chrome_path.read_text())


# ---------------------------------------------------------------------------
# manifest schema versioning


class TestManifestVersioning:
    def test_manifest_carries_schema_version(self, brownout_serial):
        manifest = brownout_serial.manifest()
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION

    def test_saved_manifest_round_trips(self, brownout_serial, tmp_path):
        brownout_serial.save(tmp_path / "run")
        manifest = load_run_manifest(tmp_path / "run")
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION

    def test_unknown_version_rejected(self, brownout_serial):
        manifest = dict(brownout_serial.manifest())
        manifest["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_manifest(manifest)

    def test_foreign_schema_rejected(self, brownout_serial):
        manifest = dict(brownout_serial.manifest())
        manifest["schema"] = "someone.else/9"
        with pytest.raises(ValueError, match="schema"):
            validate_manifest(manifest)

    def test_legacy_manifest_reads_as_version_one(self, brownout_serial):
        manifest = dict(brownout_serial.manifest())
        del manifest["schema_version"]
        validate_manifest(manifest)  # pre-versioning manifests stay loadable


# ---------------------------------------------------------------------------
# CLI: --trace-out / repro trace / repro metrics diff


class TestCli:
    def _simulate(self, tmp_path, *extra):
        argv = [
            "simulate",
            "--sessions", "40",
            "--warmup", "20",
            "--seed", "11",
            "--videos", "15",
            "--out", str(tmp_path / "run"),
            *extra,
        ]
        assert cli_main(argv) == 0

    def test_trace_out_writes_both_artifacts(self, tmp_path, capsys):
        self._simulate(
            tmp_path,
            "--faults", str(BROWNOUT_SPEC),
            "--trace-out", str(tmp_path / "trace.jsonl"),
        )
        out = capsys.readouterr().out
        assert "trace events" in out
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "trace.chrome.json").exists()

    def test_trace_validate_and_drilldown(self, tmp_path, capsys):
        self._simulate(
            tmp_path,
            "--faults", str(BROWNOUT_SPEC),
            "--trace-out", str(tmp_path / "trace.jsonl"),
        )
        assert cli_main(["trace", str(tmp_path / "trace.jsonl"), "--validate"]) == 0
        assert "trace OK" in capsys.readouterr().out
        assert cli_main(["trace", str(tmp_path / "trace.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "chunk timeline" in out
        assert "fault epochs: cache-brownout:brownout-1" in out
        assert "dominant stage:" in out

    def test_trace_drilldown_specific_chunk(self, tmp_path, capsys):
        self._simulate(tmp_path, "--trace-out", str(tmp_path / "trace.jsonl"))
        capsys.readouterr()
        rows = read_trace_jsonl(tmp_path / "trace.jsonl")
        session, chunk = slowest_chunk(rows)
        argv = [
            "trace", str(tmp_path / "trace.jsonl"),
            "--session", session,
            "--chunk", str(chunk),
        ]
        assert cli_main(argv) == 0
        assert f"session={session} chunk={chunk}" in capsys.readouterr().out

    def test_trace_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["trace", str(tmp_path / "nope.jsonl")]) == 1

    def test_metrics_diff_identical(self, tmp_path, capsys):
        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps({"a": 1, "b": {"c": [1, 2]}}))
        assert cli_main(["metrics", "diff", str(doc), str(doc)]) == 0
        assert "documents identical" in capsys.readouterr().out

    def test_metrics_diff_reports_first_divergent_key(self, tmp_path, capsys):
        doc_a = tmp_path / "a.json"
        doc_b = tmp_path / "b.json"
        doc_a.write_text(json.dumps({"a": 1, "b": {"c": [1, 2], "d": 3}}))
        doc_b.write_text(json.dumps({"a": 1, "b": {"c": [1, 9], "d": 4}}))
        assert cli_main(["metrics", "diff", str(doc_a), str(doc_b)]) == 1
        out = capsys.readouterr().out
        assert "first divergent key: b.c[1]" in out

    def test_metrics_diff_real_documents(self, tmp_path, capsys):
        self._simulate(tmp_path, "--metrics-out", str(tmp_path / "m1.json"))
        a = json.loads((tmp_path / "m1.json").read_text())
        (tmp_path / "m2.json").write_text(json.dumps(a))
        capsys.readouterr()
        argv = ["metrics", "diff", str(tmp_path / "m1.json"), str(tmp_path / "m2.json")]
        assert cli_main(argv) == 0

    def test_metrics_diff_rejects_unknown_manifest_version(self, tmp_path, capsys):
        self._simulate(tmp_path, "--metrics-out", str(tmp_path / "m1.json"))
        doc = json.loads((tmp_path / "m1.json").read_text())
        doc["manifest"]["schema_version"] = 99
        (tmp_path / "m2.json").write_text(json.dumps(doc))
        capsys.readouterr()
        argv = ["metrics", "diff", str(tmp_path / "m2.json"), str(tmp_path / "m1.json")]
        assert cli_main(argv) == 2

    def test_metrics_diff_excludes_execution_block_by_default(
        self, tmp_path, capsys
    ):
        # the execution block (spans, shard reports, execution-scoped
        # counters) legitimately varies across --engine/--workers choices;
        # only the workload payload is under the byte-identity contract
        doc_a = tmp_path / "a.json"
        doc_b = tmp_path / "b.json"
        doc_a.write_text(json.dumps({"a": 1, "execution": {"wall_s": 1.0}}))
        doc_b.write_text(json.dumps({"a": 1, "execution": {"wall_s": 9.0}}))
        assert cli_main(["metrics", "diff", str(doc_a), str(doc_b)]) == 0
        out = capsys.readouterr().out
        assert "execution block excluded" in out
        assert "documents identical" in out

    def test_metrics_diff_include_execution_flag(self, tmp_path, capsys):
        doc_a = tmp_path / "a.json"
        doc_b = tmp_path / "b.json"
        doc_a.write_text(json.dumps({"a": 1, "execution": {"wall_s": 1.0}}))
        doc_b.write_text(json.dumps({"a": 1, "execution": {"wall_s": 9.0}}))
        argv = [
            "metrics", "diff", "--include-execution", str(doc_a), str(doc_b)
        ]
        assert cli_main(argv) == 1
        out = capsys.readouterr().out
        assert "execution block excluded" not in out
        assert "first divergent key: execution.wall_s" in out


# ---------------------------------------------------------------------------
# trace JSONL meta line (schema versioning for the third artifact class)


class TestTraceMetaLine:
    def test_meta_line_shape(self):
        line = trace_meta_line(3)
        assert line == '{"events": 3, "schema": "repro.trace/1"}'

    def test_export_leads_with_the_meta_line(self, brownout_serial, tmp_path):
        path = brownout_serial.write_trace(tmp_path / "trace.jsonl")[0]
        first = path.read_text(encoding="utf-8").splitlines()[0]
        meta = json.loads(first)
        assert meta["schema"] == "repro.trace/1"
        assert meta["events"] == brownout_serial.trace.n_events
        assert "name" not in meta

    def test_reader_skips_the_meta_line(self, brownout_serial, tmp_path):
        path = brownout_serial.write_trace(tmp_path / "trace.jsonl")[0]
        rows = read_trace_jsonl(path)
        assert len(rows) == brownout_serial.trace.n_events
        assert all("name" in row for row in rows)

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"schema": "someone.else/9", "events": 0}\n')
        with pytest.raises(ValueError, match="someone.else/9"):
            read_trace_jsonl(path)

    def test_premeta_export_still_loads(self, brownout_serial, tmp_path):
        # files written before the meta line existed: first line carries
        # event keys, never "schema"
        with_meta = brownout_serial.write_trace(tmp_path / "trace.jsonl")[0]
        lines = with_meta.read_text(encoding="utf-8").splitlines()
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text("\n".join(lines[1:]) + "\n")
        assert read_trace_jsonl(legacy) == read_trace_jsonl(with_meta)

    def test_cli_trace_validates_through_the_meta_line(self, tmp_path, capsys):
        self._simulate_with_trace(tmp_path)
        assert cli_main(["trace", str(tmp_path / "trace.jsonl"), "--validate"]) == 0
        assert "trace OK" in capsys.readouterr().out

    @staticmethod
    def _simulate_with_trace(tmp_path):
        argv = [
            "simulate",
            "--sessions", "40",
            "--warmup", "20",
            "--seed", "11",
            "--videos", "15",
            "--out", str(tmp_path / "run"),
            "--trace-out", str(tmp_path / "trace.jsonl"),
        ]
        assert cli_main(argv) == 0
