"""Tests for the counterfactual headroom estimators."""

import pytest

from helpers import cdn_chunk, cdn_session, make_dataset, player_chunk, player_session, tcp_snap
from repro.core.whatif import (
    all_headrooms,
    no_downloadstack_headroom,
    perfect_caching_headroom,
)
from repro.telemetry.dataset import Dataset


def dataset_with_miss_startup():
    """Two sessions: a RAM-hit start and a miss start 90 ms slower."""
    dataset = Dataset()
    for sid, status, extra in (("hit", "hit_ram", 0.0), ("miss", "miss", 90.0)):
        dataset.player_sessions.append(player_session(session=sid))
        dataset.cdn_sessions.append(cdn_session(session=sid))
        dataset.player_chunks.append(
            player_chunk(session=sid, chunk=0, dfb_ms=100.0 + extra)
        )
        dataset.cdn_chunks.append(
            cdn_chunk(
                session=sid,
                chunk=0,
                cache_status=status,
                d_be_ms=extra,
            )
        )
        dataset.tcp_snapshots.append(tcp_snap(session=sid, chunk=0))
    return dataset


class TestPerfectCaching:
    def test_headroom_matches_injected_miss_cost(self):
        report = perfect_caching_headroom(dataset_with_miss_startup())
        assert report is not None
        assert report.affected_session_fraction == pytest.approx(0.5)
        # median over two sessions moves by half the 90 ms miss penalty
        assert report.median_improvement_ms == pytest.approx(45.0, abs=1.0)

    def test_no_ram_hits_returns_none(self):
        dataset = make_dataset(1)
        dataset.cdn_chunks[0] = cdn_chunk(cache_status="miss", d_be_ms=80.0)
        assert perfect_caching_headroom(dataset) is None

    def test_all_hits_no_headroom(self):
        report = perfect_caching_headroom(make_dataset(2))
        assert report is not None
        assert report.median_improvement_ms == pytest.approx(0.0, abs=0.5)
        assert report.affected_session_fraction == 0.0


class TestNoDownloadStack:
    def test_headroom_from_eq5_bound(self):
        dataset = make_dataset(2)
        # chunk 1 has 900 ms of stack latency above the RTO bound
        dataset.player_chunks[1] = player_chunk(chunk=1, dfb_ms=1400.0)
        report = no_downloadstack_headroom(dataset)
        assert report is not None
        assert report.affected_session_fraction == 1.0
        assert report.median_improvement_ms > 100.0

    def test_clean_dataset_no_headroom(self):
        report = no_downloadstack_headroom(make_dataset(3))
        assert report is not None
        assert report.median_improvement_ms == pytest.approx(0.0, abs=0.5)

    def test_empty_dataset(self):
        assert no_downloadstack_headroom(Dataset()) is None


class TestAllHeadrooms:
    def test_collects_available_reports(self):
        reports = all_headrooms(dataset_with_miss_startup())
        assert "perfect-first-chunk-caching" in reports
        assert "no-download-stack-latency" in reports
        for report in reports.values():
            assert str(report)  # renders

    def test_on_simulated_trace(self, small_dataset):
        reports = all_headrooms(small_dataset)
        caching = reports["perfect-first-chunk-caching"]
        stack = reports["no-download-stack-latency"]
        # caching headroom exists (some sessions start on a miss/disk)
        assert caching.median_improvement_ms >= 0.0
        assert 0.0 < caching.affected_session_fraction < 1.0
        # the DS bound is conservative: headroom is bounded by true DS
        assert 0.0 <= stack.relative_improvement < 0.5
