"""Tests for bottleneck localization — unit rules + ground-truth validation."""

import numpy as np
import pytest

from helpers import cdn_chunk, make_dataset, player_chunk, tcp_snap
from repro.core.localization import (
    Bottleneck,
    attribute_chunk,
    diagnose_dataset,
    diagnose_session,
)


def chunk_with(player_kwargs=None, cdn_kwargs=None, tcp_kwargs=None):
    """One joined chunk with overridden fields."""
    dataset = make_dataset(1)
    if player_kwargs:
        dataset.player_chunks[0] = player_chunk(**player_kwargs)
    if cdn_kwargs:
        dataset.cdn_chunks[0] = cdn_chunk(**cdn_kwargs)
    if tcp_kwargs:
        dataset.tcp_snapshots[0] = tcp_snap(**tcp_kwargs)
    return dataset.join_chunks()[0]


class TestAttributionRules:
    def test_healthy_chunk_is_none(self):
        attribution = attribute_chunk(chunk_with())
        assert attribution.bottleneck is Bottleneck.NONE

    def test_cache_miss_attributed_to_server(self):
        chunk = chunk_with(
            player_kwargs=dict(dfb_ms=200.0),
            cdn_kwargs=dict(cache_status="miss", d_be_ms=90.0, d_read_ms=11.0),
        )
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.SERVER
        assert attribution.detail == "miss"

    def test_disk_hit_attributed_to_server_when_dominant(self):
        chunk = chunk_with(
            player_kwargs=dict(dfb_ms=70.0),
            cdn_kwargs=dict(cache_status="hit_disk", d_read_ms=55.0),
            tcp_kwargs=dict(srtt_ms=8.0),
        )
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.SERVER
        assert attribution.detail == "disk"

    def test_slow_download_attributed_to_network_throughput(self):
        chunk = chunk_with(player_kwargs=dict(dfb_ms=200.0, dlb_ms=9000.0))
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.NETWORK_THROUGHPUT
        assert attribution.perf_score < 1.0

    def test_latency_dominated_bad_chunk(self):
        # cwnd large enough that the delivery rate is consistent with the
        # connection (no burst signature) — the problem is pure RTT.
        chunk = chunk_with(
            player_kwargs=dict(dfb_ms=5000.0, dlb_ms=2000.0),
            tcp_kwargs=dict(srtt_ms=2500.0, rttvar_ms=500.0, cwnd_segments=900),
        )
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.NETWORK_LATENCY

    def test_transient_flag_wins(self):
        chunk = chunk_with(player_kwargs=dict(dfb_ms=3000.0, dlb_ms=30.0))
        attribution = attribute_chunk(chunk, transient_flagged=True)
        assert attribution.bottleneck is Bottleneck.CLIENT_DOWNLOAD_STACK
        assert attribution.detail == "transient-burst"

    def test_burst_signature_detected_without_flag(self):
        # tiny D_LB -> TP_inst far above the connection's CWND/SRTT capability
        chunk = chunk_with(
            player_kwargs=dict(dfb_ms=2500.0, dlb_ms=20.0),
            tcp_kwargs=dict(cwnd_segments=40, srtt_ms=60.0),
        )
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.CLIENT_DOWNLOAD_STACK

    def test_persistent_stack_dominance(self):
        chunk = chunk_with(
            player_kwargs=dict(dfb_ms=1200.0, dlb_ms=900.0),
            tcp_kwargs=dict(srtt_ms=40.0, rttvar_ms=5.0, cwnd_segments=200),
        )
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.CLIENT_DOWNLOAD_STACK
        # the fixture chunk is a session's first chunk, so the stack
        # latency is labelled as setup cost
        assert attribution.detail == "first-chunk-setup"

    def test_rendering_problem_on_healthy_delivery(self):
        chunk = chunk_with(
            player_kwargs=dict(
                dfb_ms=100.0,
                dlb_ms=900.0,
                dropped_frames=90,
                total_frames=180,
            )
        )
        attribution = attribute_chunk(chunk)
        assert attribution.bottleneck is Bottleneck.CLIENT_RENDERING

    def test_hidden_player_drops_not_blamed(self):
        chunk = chunk_with(
            player_kwargs=dict(
                dfb_ms=100.0,
                dlb_ms=900.0,
                dropped_frames=170,
                total_frames=180,
                visible=False,
            )
        )
        assert attribute_chunk(chunk).bottleneck is Bottleneck.NONE

    def test_hw_rendered_drops_not_blamed(self):
        chunk = chunk_with(
            player_kwargs=dict(
                dfb_ms=100.0,
                dlb_ms=900.0,
                dropped_frames=90,
                total_frames=180,
                hw_rendered=True,
            )
        )
        assert attribute_chunk(chunk).bottleneck is Bottleneck.NONE


class TestSessionDiagnosis:
    def test_healthy_session(self):
        dataset = make_dataset(3)
        diagnosis = diagnose_session(dataset.sessions()[0])
        assert diagnosis.dominant is Bottleneck.NONE
        assert diagnosis.problem_fraction == 0.0

    def test_dominant_reflects_majority_problem(self):
        dataset = make_dataset(4)
        for i in (1, 2):
            dataset.player_chunks[i] = player_chunk(
                chunk=i, dfb_ms=200.0, dlb_ms=9000.0
            )
        diagnosis = diagnose_session(dataset.sessions()[0])
        assert diagnosis.dominant is Bottleneck.NETWORK_THROUGHPUT
        assert diagnosis.problem_fraction == pytest.approx(0.5)


class TestDatasetDiagnosis:
    def test_fractions_sum_to_one(self, medium_dataset):
        fractions = diagnose_dataset(medium_dataset)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["none"] > 0.5  # most chunks are healthy

    def test_all_locations_observed(self, medium_dataset):
        fractions = diagnose_dataset(medium_dataset)
        for key in ("server", "network-throughput", "client-download-stack"):
            assert fractions[key] > 0.0, f"expected some {key} chunks"

    def test_ground_truth_transients_localized_to_client(self, medium_dataset):
        """Chunks the simulator made download-stack bursts must be
        attributed to the client, not the network."""
        truth = {
            (t.session_id, t.chunk_id)
            for t in medium_dataset.ground_truth
            if t.transient_ds
        }
        hits = 0
        total = 0
        for session in medium_dataset.sessions():
            diagnosis = diagnose_session(session)
            for attribution in diagnosis.attributions:
                if (attribution.session_id, attribution.chunk_id) in truth:
                    total += 1
                    if attribution.bottleneck is Bottleneck.CLIENT_DOWNLOAD_STACK:
                        hits += 1
        assert total > 20
        assert hits / total > 0.6

    def test_miss_chunks_localized_to_server(self, medium_dataset):
        """Cache-miss chunks whose server latency dominates must come back
        as server problems."""
        server_hits = 0
        total = 0
        for session in medium_dataset.sessions():
            diagnosis = diagnose_session(session)
            for chunk, attribution in zip(session.chunks, diagnosis.attributions):
                if chunk.cdn.cache_status != "miss":
                    continue
                if chunk.cdn.total_server_ms < 50.0:
                    continue
                total += 1
                if attribution.bottleneck is Bottleneck.SERVER:
                    server_hits += 1
        assert total > 100
        assert server_hits / total > 0.5
