"""Columnar analysis read path: byte identity with the record path.

The contract under test (docs/PERFORMANCE.md, "The read path"): for every
dataset shape the pipeline produces — in-memory, single spill with many
sorted runs per kind, sharded spill, multi-period layout (including an
empty period), one session, no sessions at all — the vectorized
``repro.core.columnar_analysis`` pass returns *identical* results to the
record-object path: the same dicts in the same insertion order (asserted
via JSON serialization), the same ``FaultScoreReport`` structure down to
Counter key order and the formatted report text.

Also pins the ``analysis`` knob itself: ``auto`` resolution thresholds,
the ValueError on unknown names, the CLI choices, and the docs mentions
(mirroring the engine-registry lint in ``tests/test_docs_contract.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro._execution import (
    ANALYSIS_MODES,
    AUTO_COLUMNAR_MIN_SESSIONS,
    resolve_analysis,
)
from repro.api import run
from repro.core import columnar_analysis as ca
from repro.core.faultscore import score_fault_localization
from repro.core.localization import diagnose_dataset
from repro.core.qoe import summarize
from repro.core.streaming import (
    FaultScoreAccumulator,
    LocalizationAccumulator,
    QoeAccumulator,
    consume,
)
from repro.faults import FaultEvent, FaultSpec
from repro.obs.registry import MetricsRegistry
from repro.simulation.config import SimulationConfig
from repro.telemetry.spill import SpilledDataset, SpillWriter
from repro.telemetry.synth import synthesize_sharded, synthesize_spill

REPO_ROOT = Path(__file__).resolve().parent.parent


def _mixed_spec() -> FaultSpec:
    return FaultSpec(
        name="mixed",
        events=(
            FaultEvent("deg", "server-degraded", 0.0, 1e12, 8.0, server_fraction=0.5),
            FaultEvent("lat", "network-latency", 0.0, 1e12, 5.0, orgs=("Comcast",)),
            FaultEvent("rend", "client-render", 0.0, 1e12, 0.5, platforms=("Windows",)),
        ),
    )


@pytest.fixture(scope="module")
def faulted_dataset():
    """A simulated in-memory dataset with ground-truth labels of all layers."""
    config = SimulationConfig(n_sessions=150, warmup_sessions=50, seed=11)
    return run(config, faults=_mixed_spec()).dataset.sorted()


def _assert_reports_identical(columnar, records) -> None:
    # dataclass equality covers counts, per-class tallies, confusion values
    assert columnar == records
    # ...but dict equality ignores insertion order, which is part of the
    # serialization contract — pin it explicitly, Counter keys included
    assert list(columnar.classes) == list(records.classes)
    assert list(columnar.confusion) == list(records.confusion)
    for category in records.confusion:
        assert list(columnar.confusion[category]) == list(
            records.confusion[category]
        ), category
    assert columnar.format_report() == records.format_report()


def _assert_paths_identical(dataset) -> None:
    """Record path (streaming consume) vs one columnar pass: identical."""
    q_rec, loc_rec, fs_rec = consume(
        dataset, QoeAccumulator(), LocalizationAccumulator(), FaultScoreAccumulator()
    )
    out = ca.analyze_dataset(dataset)
    assert json.dumps(out["qoe"]) == json.dumps(q_rec)
    assert json.dumps(out["localization"]) == json.dumps(loc_rec)
    _assert_reports_identical(out["faultscore"], fs_rec)


class TestByteIdentity:
    def test_in_memory_faulted(self, faulted_dataset):
        _assert_paths_identical(faulted_dataset)
        # the public knob reaches the same results through each entry point
        q_rec = summarize(faulted_dataset, analysis="records")
        assert json.dumps(summarize(faulted_dataset, analysis="columnar")) == (
            json.dumps(q_rec)
        )
        loc_rec = diagnose_dataset(faulted_dataset, analysis="records")
        assert json.dumps(diagnose_dataset(faulted_dataset, analysis="columnar")) == (
            json.dumps(loc_rec)
        )
        _assert_reports_identical(
            score_fault_localization(faulted_dataset, analysis="columnar"),
            score_fault_localization(faulted_dataset, analysis="records"),
        )

    def test_spilled_multi_run(self, tmp_path):
        # >4096 sessions => several sorted runs per kind, exercising the
        # merge-order reconstruction of the blockwise planner
        spilled = synthesize_spill(
            tmp_path / "s", 10_000, seed=5, threshold_rows=2048
        )
        assert len(spilled.run_arrays("player_chunks")) >= 3
        _assert_paths_identical(spilled)

    def test_sharded_spill(self, tmp_path):
        spilled = synthesize_sharded(
            tmp_path / "sh", 600, 2, seed=9, threshold_rows=256
        )
        assert len(spilled.directories) == 2
        _assert_paths_identical(spilled)

    def test_multi_period_with_empty_period(self, tmp_path):
        synthesize_spill(tmp_path / "period-a", 300, seed=3, threshold_rows=256)
        SpillWriter(tmp_path / "period-b", threshold_rows=128).finalize()
        spilled = SpilledDataset([tmp_path / "period-a", tmp_path / "period-b"])
        _assert_paths_identical(spilled)

    def test_single_session(self, tmp_path):
        spilled = synthesize_spill(tmp_path / "one", 1, seed=2)
        _assert_paths_identical(spilled)

    def test_empty_spill(self, tmp_path):
        SpillWriter(tmp_path / "empty", threshold_rows=128).finalize()
        spilled = SpilledDataset(tmp_path / "empty")
        out = ca.analyze_dataset(spilled)
        assert out["qoe"] == {"n_sessions": 0}
        assert out["localization"] == {}
        assert out["faultscore"].n_chunks == 0
        _assert_paths_identical(spilled)

    def test_forced_small_blocks(self, tmp_path, monkeypatch):
        # shrink the block budget so the 600-session spill needs many
        # blocks; identity must not depend on where block cuts fall
        spilled = synthesize_spill(tmp_path / "s", 600, seed=6, threshold_rows=512)
        monkeypatch.setattr(ca, "ITER_BLOCK_ROWS", 97)
        registry = MetricsRegistry()
        out = ca.analyze_dataset(spilled, metrics=registry)
        counters = registry.execution_snapshot()["counters"]
        assert counters["analysis.blocks_total"] > 5
        assert counters["analysis.sessions_total"] == 600
        q_rec, loc_rec, fs_rec = consume(
            spilled,
            QoeAccumulator(),
            LocalizationAccumulator(),
            FaultScoreAccumulator(),
        )
        assert json.dumps(out["qoe"]) == json.dumps(q_rec)
        assert json.dumps(out["localization"]) == json.dumps(loc_rec)
        _assert_reports_identical(out["faultscore"], fs_rec)


class TestResolveAnalysis:
    def test_auto_prefers_columnar_for_spills(self):
        assert resolve_analysis("auto", n_sessions=1, spilled=True) == "columnar"

    def test_auto_threshold_on_session_count(self):
        at = AUTO_COLUMNAR_MIN_SESSIONS
        assert resolve_analysis("auto", n_sessions=at) == "columnar"
        assert resolve_analysis("auto", n_sessions=at - 1) == "records"

    def test_explicit_modes_pass_through(self):
        for mode in ("records", "columnar"):
            assert resolve_analysis(mode, n_sessions=0) == mode
            assert resolve_analysis(mode, n_sessions=10**6, spilled=True) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis"):
            resolve_analysis("vectorized", n_sessions=100)

    def test_duck_typed_dataset_stays_on_records(self):
        class FakeDataset:
            n_sessions = 10**6

        assert ca.resolve_analysis_mode(FakeDataset(), "auto") == "records"

    def test_spilled_dataset_resolves_columnar(self, tmp_path):
        spilled = synthesize_spill(tmp_path / "s", 10, seed=1)
        assert ca.resolve_analysis_mode(spilled, "auto") == "columnar"

    def test_unknown_analysis_kind_rejected(self, tmp_path):
        spilled = synthesize_spill(tmp_path / "s", 10, seed=1)
        with pytest.raises(ValueError, match="unknown analys"):
            ca.analyze_dataset(spilled, analyses=("qoe", "bogus"))


class TestAnalysisKnobContractSync:
    """The analysis knob is user-facing API: names must stay documented."""

    def test_every_mode_documented(self):
        performance = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text(
            encoding="utf-8"
        )
        for name in ANALYSIS_MODES:
            assert f'"{name}"' in performance or f"`{name}`" in performance, (
                f"analysis mode {name!r} not documented in docs/PERFORMANCE.md"
            )

    def test_cli_analysis_choices_match(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in (["analyze", "x"], ["faultscore", "x"]):
            args = parser.parse_args(command)
            assert args.analysis == "auto"
            for name in ANALYSIS_MODES:
                parsed = parser.parse_args(command + ["--analysis", name])
                assert parsed.analysis == name
